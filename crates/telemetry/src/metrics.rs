//! Named counters and log-linear-bucket histograms with a snapshot API.
//!
//! Metrics are recorded into per-thread hash maps (no locks, no
//! contention on the hot path) and bulk-merged into the process-wide
//! [`Collector`](crate::Collector) when a thread flushes or exits, keyed
//! by [`MetricKey`] — a `(scope, name, index)` triple of interned
//! (`&'static str`) strings so the hot path never allocates. Histograms use
//! log-linear buckets: four linear sub-buckets per power of two, giving a
//! worst-case relative error of 1/8 across the full `u64` range with a fixed
//! 252-slot table.

use std::collections::BTreeMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Number of linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 4;

/// Total number of histogram buckets: 4 exact buckets for values `0..4`,
/// then 4 sub-buckets for each of the 62 octaves `[2^2, 2^64)`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 62 * SUB_BUCKETS;

/// Identifies one counter or histogram series.
///
/// `scope` is typically the mechanism name a worker thread is running under
/// (empty outside any scope), `name` the instrumentation-site label (e.g.
/// `"verify.replay"`), and `index` distinguishes per-entity series such as
/// per-worker counters (zero otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Enclosing scope label (usually a mechanism name), `""` if none.
    pub scope: &'static str,
    /// Instrumentation-site name.
    pub name: &'static str,
    /// Per-entity index (e.g. worker id); zero for scalar series.
    pub index: u32,
}

impl MetricKey {
    /// A key with no scope and index zero.
    pub fn plain(name: &'static str) -> Self {
        Self {
            scope: "",
            name,
            index: 0,
        }
    }
}

/// FNV-1a, the hasher for the per-thread metric maps: metric keys are a
/// few dozen bytes of `&'static str` content, where FNV beats SipHash by
/// a wide margin and the hot path has no adversarial inputs to defend
/// against.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into a `HashMap`.
pub(crate) type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Maps a value to its log-linear bucket index.
///
/// Values `0..4` get exact buckets; beyond that, each power-of-two octave is
/// split into four equal-width sub-buckets.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 2 here
    let sub = ((value >> (msb - 2)) & 0x3) as usize;
    SUB_BUCKETS + (msb - 2) * SUB_BUCKETS + sub
}

/// Returns the inclusive `(lower, upper)` value range covered by a bucket.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1u64 << octave;
    let lower = (1u64 << (octave + 2)) + sub * width;
    (lower, lower + (width - 1))
}

/// A log-linear-bucket histogram with exact count, sum, min, and max.
///
/// Mutation happens under the collector's metrics lock, so the histogram
/// itself needs no atomics; buckets are allocated lazily on first record.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation of `other` into `self` (the flush-side
    /// merge of a thread's local histogram into the collector's).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self.buckets.clone(),
        }
    }
}

/// An immutable copy of a [`Histogram`] supporting quantile estimation and
/// snapshot subtraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the buckets.
    ///
    /// Returns the upper bound of the bucket containing the target rank,
    /// clamped to the exact observed `max` — so the worst-case relative
    /// error is the sub-bucket width (1/8).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_bounds(i).1.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded since `earlier` was taken.
    ///
    /// Counts, sums, and buckets subtract exactly. `min`/`max` cannot be
    /// recovered from two cumulative snapshots, so the delta keeps the
    /// later snapshot's values — a conservative over-approximation.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets.clone();
        for (b, &e) in buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(e);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }

    /// The non-empty buckets as `(bucket_lower_bound, count)` pairs, in
    /// ascending value order — the sparse form used by the JSONL exporter.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bounds(i).0, n))
            .collect()
    }
}

/// A point-in-time copy of every counter and histogram in the collector.
///
/// Keys iterate in `MetricKey` order, so exports derived from a snapshot are
/// deterministic given identical recorded values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: BTreeMap<MetricKey, u64>,
    /// All histograms.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Returns `true` when no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value under `scope` (0 when absent, index 0).
    pub fn counter(&self, scope: &'static str, name: &'static str) -> u64 {
        self.counters
            .get(&MetricKey {
                scope,
                name,
                index: 0,
            })
            .copied()
            .unwrap_or(0)
    }

    /// Sums a counter across every scope and index it appears under.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// A histogram under `scope` (index 0), if it was recorded.
    pub fn histogram(&self, scope: &'static str, name: &'static str) -> Option<&HistogramSnapshot> {
        self.histograms.get(&MetricKey {
            scope,
            name,
            index: 0,
        })
    }

    /// Everything recorded since `earlier` was taken. Series absent from
    /// `earlier` pass through unchanged; series whose delta is zero are
    /// dropped entirely.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (key, &value) in &self.counters {
            let before = earlier.counters.get(key).copied().unwrap_or(0);
            let delta = value.saturating_sub(before);
            if delta > 0 {
                counters.insert(*key, delta);
            }
        }
        let mut histograms = BTreeMap::new();
        for (key, hist) in &self.histograms {
            let delta = match earlier.histograms.get(key) {
                Some(before) => hist.delta_since(before),
                None => hist.clone(),
            };
            if delta.count > 0 {
                histograms.insert(*key, delta);
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_four() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_round_trip() {
        // Every bucket's bounds must map back to that bucket, cover the
        // whole range contiguously, and never overlap.
        let mut expected_lower = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "bucket {i} not contiguous");
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            expected_lower = hi.wrapping_add(1);
        }
        // The last bucket ends exactly at u64::MAX.
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_boundaries_at_octave_transitions() {
        // 4..8 is the first octave: width-1 sub-buckets (still exact).
        assert_eq!(bucket_bounds(4), (4, 4));
        assert_eq!(bucket_bounds(7), (7, 7));
        // 8..16: width-2 sub-buckets.
        assert_eq!(bucket_bounds(8), (8, 9));
        assert_eq!(bucket_bounds(11), (14, 15));
        // 16..32: width-4 sub-buckets.
        assert_eq!(bucket_bounds(12), (16, 19));
        // Relative error of a bucket is at most 1/8 of its lower bound.
        for v in [100u64, 1_000, 65_536, 1 << 40, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            assert!((hi - lo) as f64 <= lo as f64 / 4.0 + 1.0);
        }
    }

    #[test]
    fn histogram_records_exact_scalars_and_approx_quantiles() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
        // p50 of 1..=100 is 50; bucket upper bound may overshoot by <= 1/8.
        let p50 = snap.quantile(0.5);
        assert!((50..=57).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.quantile(1.0), 100);
        assert_eq!(snap.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_delta_subtracts_buckets() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(30);
        h.record(40);
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 70);
        let buckets = delta.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), 2);
    }

    #[test]
    fn metrics_snapshot_delta_drops_unchanged_series() {
        let mut before = MetricsSnapshot::default();
        before.counters.insert(MetricKey::plain("a"), 5);
        before.counters.insert(MetricKey::plain("b"), 2);
        let mut after = before.clone();
        after.counters.insert(MetricKey::plain("a"), 9);
        after.counters.insert(MetricKey::plain("c"), 1);
        let delta = after.delta_since(&before);
        assert_eq!(delta.counter("", "a"), 4);
        assert_eq!(delta.counter("", "b"), 0);
        assert_eq!(delta.counter("", "c"), 1);
        assert_eq!(delta.counters.len(), 2);
    }

    #[test]
    fn counter_total_sums_scopes_and_indices() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert(
            MetricKey {
                scope: "protocol",
                name: "hits",
                index: 0,
            },
            3,
        );
        snap.counters.insert(
            MetricKey {
                scope: "traces",
                name: "hits",
                index: 1,
            },
            4,
        );
        assert_eq!(snap.counter_total("hits"), 7);
    }
}
