//! Exporters: Chrome `trace_event` JSON and a metrics JSONL stream.
//!
//! Both formats are written with a tiny hand-rolled JSON emitter (the
//! telemetry crate depends on nothing but the `parking_lot` shim). The
//! Chrome trace output is the array form understood by `chrome://tracing`
//! and Perfetto's legacy-trace importer; the metrics stream is one JSON
//! object per line, one line per counter or histogram series.

use crate::metrics::MetricsSnapshot;
use crate::span::TraceEvent;

/// Escapes a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Renders trace events as a Chrome `trace_event` JSON array.
///
/// Complete spans become `"ph":"X"` events with microsecond `ts`/`dur`
/// (fractional, so sub-microsecond spans survive); instants become
/// thread-scoped `"ph":"i"` events. The telemetry scope rides along as
/// `args.scope`, making per-mechanism lanes filterable in Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{");
        push_str_field(&mut out, "name", &event.name);
        out.push(',');
        push_str_field(&mut out, "cat", event.cat);
        out.push_str(&format!(
            ",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            event.tid,
            event.ts_ns as f64 / 1_000.0
        ));
        match event.dur_ns {
            Some(dur_ns) => {
                out.push_str(&format!(
                    ",\"ph\":\"X\",\"dur\":{:.3}",
                    dur_ns as f64 / 1_000.0
                ));
            }
            None => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        out.push_str(",\"args\":{");
        push_str_field(&mut out, "scope", event.scope);
        for (key, value) in &event.args {
            out.push(',');
            push_str_field(&mut out, key, value);
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Renders a metrics snapshot as JSONL: one JSON object per line.
///
/// Counter lines look like
/// `{"type":"counter","scope":"protocol","name":"pipeline.cache_hit","index":0,"value":12}`;
/// histogram lines add `count`/`sum`/`min`/`max`, approximate `p50`/`p90`/`p99`,
/// and the sparse `buckets` array of `[bucket_lower_bound, count]` pairs.
/// Values are raw units — nanoseconds for duration histograms.
pub fn metrics_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, value) in &snapshot.counters {
        out.push('{');
        push_str_field(&mut out, "type", "counter");
        out.push(',');
        push_str_field(&mut out, "scope", key.scope);
        out.push(',');
        push_str_field(&mut out, "name", key.name);
        out.push_str(&format!(",\"index\":{},\"value\":{}}}\n", key.index, value));
    }
    for (key, hist) in &snapshot.histograms {
        out.push('{');
        push_str_field(&mut out, "type", "histogram");
        out.push(',');
        push_str_field(&mut out, "scope", key.scope);
        out.push(',');
        push_str_field(&mut out, "name", key.name);
        out.push_str(&format!(
            ",\"index\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            key.index,
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            hist.quantile(0.5),
            hist.quantile(0.9),
            hist.quantile(0.99),
        ));
        for (i, (lower, count)) in hist.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lower},{count}]"));
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricKey};
    use std::borrow::Cow;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: Cow::Borrowed("verify.replay"),
                cat: "pipeline",
                scope: "protocol",
                tid: 2,
                ts_ns: 1_500,
                dur_ns: Some(42_000),
                args: vec![("steps", "17".to_string())],
            },
            TraceEvent {
                name: Cow::Owned("note \"quoted\"\n".to_string()),
                cat: "platform",
                scope: "",
                tid: 1,
                ts_ns: 2_000,
                dur_ns: None,
                args: vec![],
            },
        ]
    }

    #[test]
    fn chrome_trace_shape_and_escaping() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":42.000"));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"scope\":\"protocol\""));
        assert!(json.contains("\"steps\":\"17\""));
        // The quote and newline must be escaped.
        assert!(json.contains("note \\\"quoted\\\"\\n"));
    }

    #[test]
    fn empty_trace_is_a_valid_empty_array() {
        assert_eq!(chrome_trace_json(&[]), "[\n]\n");
    }

    #[test]
    fn metrics_jsonl_lines_parse_independently() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert(
            MetricKey {
                scope: "traces",
                name: "pipeline.cache_hit",
                index: 0,
            },
            7,
        );
        let mut h = Histogram::default();
        h.record(100);
        h.record(200_000);
        snap.histograms.insert(
            MetricKey {
                scope: "traces",
                name: "verify.replay",
                index: 0,
            },
            h.snapshot(),
        );
        let text = metrics_jsonl(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[0].contains("\"value\":7"));
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"count\":2"));
        assert!(lines[1].contains("\"sum\":200100"));
        assert!(lines[1].contains("\"buckets\":[["));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
