//! Property-based tests for the bigint crate: ring axioms, division
//! invariants, conversion round-trips, modular arithmetic laws, and the
//! equivalence of the Montgomery / fixed-base fast paths with the
//! schoolbook reference operations.

use std::sync::Arc;

use proptest::prelude::*;
use refstate_bigint::{FixedBase, Montgomery, Uint};

/// Strategy: an arbitrary Uint up to ~256 bits built from raw bytes.
fn uint() -> impl Strategy<Value = Uint> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|bytes| Uint::from_be_bytes(&bytes))
}

/// Strategy: a non-zero Uint.
fn uint_nonzero() -> impl Strategy<Value = Uint> {
    uint().prop_map(|v| if v.is_zero() { Uint::one() } else { v })
}

/// Strategy: a Uint >= 2 (usable as a modulus).
fn modulus() -> impl Strategy<Value = Uint> {
    uint().prop_map(|v| {
        if v < Uint::from(2u64) {
            Uint::from(2u64)
        } else {
            v
        }
    })
}

proptest! {
    #[test]
    fn add_commutative(a in uint(), b in uint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in uint(), b in uint(), c in uint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_identity(a in uint()) {
        prop_assert_eq!(&a + &Uint::zero(), a);
    }

    #[test]
    fn mul_commutative(a in uint(), b in uint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associative(a in uint(), b in uint(), c in uint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes_over_add(a in uint(), b in uint(), c in uint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn mul_identity_and_zero(a in uint()) {
        prop_assert_eq!(&a * &Uint::one(), a.clone());
        prop_assert_eq!(&a * &Uint::zero(), Uint::zero());
    }

    #[test]
    fn sub_inverts_add(a in uint(), b in uint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn checked_sub_consistent_with_ord(a in uint(), b in uint()) {
        prop_assert_eq!(a.checked_sub(&b).is_some(), a >= b);
    }

    #[test]
    fn division_invariant(a in uint(), b in uint_nonzero()) {
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn division_by_one(a in uint()) {
        let (q, r) = a.divrem(&Uint::one());
        prop_assert_eq!(q, a);
        prop_assert!(r.is_zero());
    }

    #[test]
    fn division_self(a in uint_nonzero()) {
        let (q, r) = a.divrem(&a);
        prop_assert_eq!(q, Uint::one());
        prop_assert!(r.is_zero());
    }

    #[test]
    fn shift_round_trip(a in uint(), bits in 0usize..200) {
        prop_assert_eq!(&(&a << bits) >> bits, a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in uint(), bits in 0usize..63) {
        prop_assert_eq!(&a << bits, &a * &Uint::from(1u64 << bits));
    }

    #[test]
    fn bytes_round_trip(a in uint()) {
        prop_assert_eq!(Uint::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn hex_round_trip(a in uint()) {
        prop_assert_eq!(Uint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_round_trip(a in uint()) {
        prop_assert_eq!(Uint::from_decimal(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn u128_agreement_add(a in any::<u64>(), b in any::<u64>()) {
        let expect = a as u128 + b as u128;
        prop_assert_eq!(&Uint::from(a) + &Uint::from(b), Uint::from(expect));
    }

    #[test]
    fn u128_agreement_mul(a in any::<u64>(), b in any::<u64>()) {
        let expect = a as u128 * b as u128;
        prop_assert_eq!(&Uint::from(a) * &Uint::from(b), Uint::from(expect));
    }

    #[test]
    fn u128_agreement_div(a in any::<u128>(), b in 1u128..) {
        let q = Uint::from(a).divrem(&Uint::from(b));
        prop_assert_eq!(q.0, Uint::from(a / b));
        prop_assert_eq!(q.1, Uint::from(a % b));
    }

    #[test]
    fn mod_reduction_bounded(a in uint(), m in modulus()) {
        prop_assert!(a.rem(&m) < m);
    }

    #[test]
    fn mul_mod_matches_definition(a in uint(), b in uint(), m in modulus()) {
        prop_assert_eq!(a.mul_mod(&b, &m), (&a * &b).rem(&m));
    }

    #[test]
    fn pow_mod_small_exponents(a in uint(), m in modulus()) {
        prop_assert_eq!(a.pow_mod(&Uint::zero(), &m), if m.is_one() { Uint::zero() } else { Uint::one() });
        prop_assert_eq!(a.pow_mod(&Uint::one(), &m), a.rem(&m));
        prop_assert_eq!(a.pow_mod(&Uint::from(2u64), &m), a.mul_mod(&a, &m));
    }

    #[test]
    fn pow_mod_adds_exponents(a in uint(), e1 in 0u64..50, e2 in 0u64..50, m in modulus()) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let lhs = a.pow_mod(&Uint::from(e1 + e2), &m);
        let rhs = a.pow_mod(&Uint::from(e1), &m).mul_mod(&a.pow_mod(&Uint::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_divides_both(a in uint_nonzero(), b in uint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gcd_commutative(a in uint(), b in uint()) {
        prop_assert_eq!(a.gcd(&b), b.gcd(&a));
    }

    #[test]
    fn inv_mod_is_inverse(a in uint_nonzero(), m in modulus()) {
        if let Some(inv) = a.inv_mod(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m), Uint::one());
            prop_assert!(inv < m);
        } else {
            // No inverse implies non-trivial gcd.
            prop_assert!(!a.gcd(&m).is_one() || a.rem(&m).is_zero());
        }
    }

    #[test]
    fn sub_mod_is_additive_inverse(a in uint(), b in uint(), m in modulus()) {
        let d = a.sub_mod(&b, &m);
        prop_assert_eq!(d.add_mod(&b.rem(&m), &m), a.rem(&m));
    }

    #[test]
    fn ordering_total(a in uint(), b in uint()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert!(b > a),
            Ordering::Greater => prop_assert!(a > b),
            Ordering::Equal => prop_assert_eq!(&a, &b),
        }
    }

    #[test]
    fn bit_len_consistent(a in uint_nonzero()) {
        let n = a.bit_len();
        prop_assert!(a.bit(n - 1));
        prop_assert!(!a.bit(n));
        // 2^(n-1) <= a < 2^n
        prop_assert!(a >= &Uint::one() << (n - 1));
        prop_assert!(a < &Uint::one() << n);
    }
}

/// Strategy: a Uint of up to 1024 bits (exactly 128 raw bytes drawn, so
/// values concentrate near full width).
fn uint_1024() -> impl Strategy<Value = Uint> {
    proptest::collection::vec(any::<u8>(), 128).prop_map(|bytes| Uint::from_be_bytes(&bytes))
}

/// Strategy: an odd modulus of up to 1024 bits, at least 3.
fn odd_modulus_1024() -> impl Strategy<Value = Uint> {
    uint_1024().prop_map(|v| {
        let v = if v < Uint::from(3u64) {
            Uint::from(3u64)
        } else {
            v
        };
        if v.is_even() {
            &v + &Uint::one()
        } else {
            v
        }
    })
}

proptest! {
    // 1024-bit operands make every case a full-width workout; a handful
    // of cases per property keeps the (deliberately slow) schoolbook
    // oracle affordable in debug builds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The binary (division-free) modular inverse actually inverts on
    /// random 1024-bit operands and odd moduli, and reports `None`
    /// exactly when no inverse exists.
    #[test]
    fn inv_mod_inverts_at_1024_bits(a in uint_1024(), m in odd_modulus_1024()) {
        match a.inv_mod(&m) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert_eq!(a.mul_mod(&inv, &m), Uint::one());
            }
            None => prop_assert_ne!(a.gcd(&m), Uint::one()),
        }
    }

    /// Montgomery `mul_mod` agrees with the schoolbook `Uint::mul_mod`
    /// on random 1024-bit operands and odd moduli.
    #[test]
    fn montgomery_mul_matches_schoolbook(a in uint_1024(), b in uint_1024(), m in odd_modulus_1024()) {
        let ctx = Montgomery::new(&m).expect("modulus is odd and >= 3");
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    /// Montgomery sliding-window `pow_mod` agrees with the schoolbook
    /// `Uint::pow_mod` on random 1024-bit bases, exponents, and moduli.
    #[test]
    fn montgomery_pow_matches_schoolbook(base in uint_1024(), exp in uint_1024(), m in odd_modulus_1024()) {
        let ctx = Montgomery::new(&m).expect("modulus is odd and >= 3");
        prop_assert_eq!(ctx.pow_mod(&base, &exp), base.pow_mod(&exp, &m));
    }

    /// Fixed-base table exponentiation agrees with the schoolbook
    /// `Uint::pow_mod` on random 1024-bit operands, both inside the
    /// table's sized range and through the oversized-exponent fallback.
    #[test]
    fn fixed_base_matches_schoolbook(base in uint_1024(), exp in uint_1024(), m in odd_modulus_1024()) {
        let ctx = Arc::new(Montgomery::new(&m).expect("modulus is odd and >= 3"));
        let table = FixedBase::new(Arc::clone(&ctx), &base, 1024);
        prop_assert_eq!(table.pow_mod(&exp), base.pow_mod(&exp, &m));
        // A table sized below the exponent exercises the fallback ladder.
        let small = FixedBase::new(ctx, &base, 64);
        prop_assert_eq!(small.pow_mod(&exp), base.pow_mod(&exp, &m));
    }

    /// Montgomery round-trip: to_mont/from_mont is the identity on
    /// reduced values, and mont_mul composes like mul_mod.
    #[test]
    fn montgomery_domain_round_trip(a in uint_1024(), b in uint_1024(), m in odd_modulus_1024()) {
        let ctx = Montgomery::new(&m).expect("modulus is odd and >= 3");
        let ar = a.rem(&m);
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&ar)), ar);
        let fused = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(fused, a.mul_mod(&b, &m));
    }

    /// The in-domain inverse agrees with `Uint::inv_mod` on random
    /// 1024-bit operands and odd moduli: same invertibility verdict,
    /// and `Montgomery::inv` returns the *residue* of the inverse, so
    /// in-domain products with it land on the identity.
    #[test]
    fn montgomery_inv_matches_uint_inv_mod(a in uint_1024(), m in odd_modulus_1024()) {
        let ctx = Montgomery::new(&m).expect("modulus is odd and >= 3");
        let plain = a.inv_mod(&m);
        let residue = ctx.inv(&ctx.to_mont(&a));
        prop_assert_eq!(ctx.inv_mod(&a), plain.clone());
        match (plain, residue) {
            (None, None) => {}
            (Some(plain), Some(residue)) => {
                prop_assert_eq!(ctx.from_mont(&residue), plain);
                prop_assert_eq!(
                    ctx.mont_mul(&ctx.to_mont(&a), &residue),
                    ctx.one_mont()
                );
            }
            (plain, residue) => prop_assert!(
                false,
                "invertibility disagreement: inv_mod {:?} vs Montgomery::inv {:?}",
                plain.is_some(),
                residue.is_some()
            ),
        }
    }

    /// The DSA verify shape in-domain — w = s⁻¹ mod q feeding u1 = z·w
    /// and u2 = r·w without leaving the domain — agrees with the
    /// out-of-domain schoolbook route.
    #[test]
    fn montgomery_inv_product_chain_matches_schoolbook(
        s in uint_1024(), z in uint_1024(), r in uint_1024(), q in odd_modulus_1024()
    ) {
        let ctx = Montgomery::new(&q).expect("modulus is odd and >= 3");
        if let Some(w) = ctx.inv(&ctx.to_mont(&s)) {
            let w_plain = s.inv_mod(&q).expect("same invertibility verdict");
            let u1 = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&z), &w));
            let u2 = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&r), &w));
            prop_assert_eq!(u1, z.mul_mod(&w_plain, &q));
            prop_assert_eq!(u2, r.mul_mod(&w_plain, &q));
        }
    }
}

/// Strategy: a Uint of exactly `bytes` random bytes (top byte forced
/// non-zero so the operand really has the intended width).
fn uint_exact(bytes: usize) -> impl Strategy<Value = Uint> {
    proptest::collection::vec(any::<u8>(), bytes).prop_map(|mut v| {
        if let Some(first) = v.first_mut() {
            *first |= 0x80;
        }
        Uint::from_be_bytes(&v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Karatsuba dispatch (`*` at >= 32 limbs) agrees with the pinned
    /// schoolbook oracle on full-width 2048-bit operands.
    #[test]
    fn karatsuba_matches_schoolbook_2048(a in uint_exact(256), b in uint_exact(256)) {
        prop_assert_eq!(&a * &b, a.schoolbook_mul(&b));
    }

    /// Same at 4096 bits (two recursion levels), including the uneven
    /// split where one operand is half the other's width.
    #[test]
    fn karatsuba_matches_schoolbook_4096(a in uint_exact(512), b in uint_exact(512), c in uint_exact(256)) {
        prop_assert_eq!(&a * &b, a.schoolbook_mul(&b));
        prop_assert_eq!(&a * &c, a.schoolbook_mul(&c));
        prop_assert_eq!(&c * &b, c.schoolbook_mul(&b));
    }
}
