//! Error types for parsing and conversion.

use std::error::Error;
use std::fmt;

/// Error returned when parsing or converting a [`crate::Uint`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUintError {
    kind: ErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    Empty,
    InvalidDigit,
    Overflow,
}

impl ParseUintError {
    pub(crate) fn empty() -> Self {
        ParseUintError {
            kind: ErrorKind::Empty,
        }
    }

    pub(crate) fn invalid_digit() -> Self {
        ParseUintError {
            kind: ErrorKind::InvalidDigit,
        }
    }

    pub(crate) fn overflow() -> Self {
        ParseUintError {
            kind: ErrorKind::Overflow,
        }
    }
}

impl fmt::Display for ParseUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ErrorKind::Empty => f.write_str("cannot parse integer from empty string"),
            ErrorKind::InvalidDigit => f.write_str("invalid digit found in string"),
            ErrorKind::Overflow => f.write_str("value too large for the target type"),
        }
    }
}

impl Error for ParseUintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ParseUintError::empty().to_string(),
            "cannot parse integer from empty string"
        );
        assert_eq!(
            ParseUintError::invalid_digit().to_string(),
            "invalid digit found in string"
        );
        assert_eq!(
            ParseUintError::overflow().to_string(),
            "value too large for the target type"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseUintError>();
    }
}
