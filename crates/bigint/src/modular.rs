//! Modular arithmetic: `mul_mod`, `pow_mod`, `inv_mod`, `gcd`.
//!
//! These are the *schoolbook* operations: every reduction is a full
//! multi-precision division (Knuth Algorithm D), which makes them simple,
//! obviously correct, and modulus-agnostic — they accept any non-zero
//! modulus, even or odd, and operands of any size. They double as the
//! reference oracle the property tests compare the fast paths against.
//!
//! When many operations share one **odd** modulus, build a
//! [`Montgomery`](crate::Montgomery) context instead (division-free REDC
//! reduction, sliding-window exponentiation); when additionally the *base*
//! is fixed across exponentiations, layer a
//! [`FixedBase`](crate::FixedBase) table on top. Both agree with the
//! operations here on every input, by proptest.

use std::cmp::Ordering;

use crate::signed::Int;
use crate::uint::Uint;

/// In-place little-endian limb helpers backing the binary modular
/// inverse: the hot loop runs thousands of shift/add/sub steps per
/// inversion, so none of them may allocate.
fn ls_is_zero(x: &[u64]) -> bool {
    x.iter().all(|&l| l == 0)
}

fn ls_is_one(x: &[u64]) -> bool {
    x[0] == 1 && x[1..].iter().all(|&l| l == 0)
}

/// Numeric comparison; lengths may differ (missing high limbs are zero).
fn ls_cmp(x: &[u64], y: &[u64]) -> Ordering {
    let top = x.len().max(y.len());
    for i in (0..top).rev() {
        let xi = x.get(i).copied().unwrap_or(0);
        let yi = y.get(i).copied().unwrap_or(0);
        match xi.cmp(&yi) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// `x >>= 1` in place.
fn ls_shr1(x: &mut [u64]) {
    let mut carry = 0u64;
    for l in x.iter_mut().rev() {
        let next = *l << 63;
        *l = (*l >> 1) | carry;
        carry = next;
    }
}

/// `x += y` in place; the caller sizes `x` so the sum fits.
fn ls_add(x: &mut [u64], y: &[u64]) {
    let mut carry = 0u64;
    for (i, xi) in x.iter_mut().enumerate() {
        let yv = y.get(i).copied().unwrap_or(0);
        let (s1, c1) = xi.overflowing_add(yv);
        let (s2, c2) = s1.overflowing_add(carry);
        *xi = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    debug_assert_eq!(carry, 0, "ls_add overflowed the buffer");
}

/// `x -= y` in place; requires `x >= y`.
fn ls_sub(x: &mut [u64], y: &[u64]) {
    let mut borrow = 0u64;
    for (i, xi) in x.iter_mut().enumerate() {
        let yv = y.get(i).copied().unwrap_or(0);
        let (d1, b1) = xi.overflowing_sub(yv);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *xi = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "ls_sub underflowed");
}

impl Uint {
    /// Computes `(self * other) mod modulus` by full multiplication
    /// followed by one Algorithm D reduction.
    ///
    /// Operands need not be reduced; the result always is. Cost is
    /// `O(a·b)` limb products plus an `O((a+b)·m)` division — for repeated
    /// multiplications modulo one odd modulus,
    /// [`Montgomery::mul_mod`](crate::Montgomery::mul_mod) amortizes
    /// better.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let r = Uint::from(7u64).mul_mod(&Uint::from(8u64), &Uint::from(10u64));
    /// assert_eq!(r, Uint::from(6u64));
    /// ```
    pub fn mul_mod(&self, other: &Uint, modulus: &Uint) -> Uint {
        (self * other).rem(modulus)
    }

    /// Computes `(self + other) mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn add_mod(&self, other: &Uint, modulus: &Uint) -> Uint {
        (self + other).rem(modulus)
    }

    /// Computes `(self - other) mod modulus`, wrapping into `[0, modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn sub_mod(&self, other: &Uint, modulus: &Uint) -> Uint {
        let a = self.rem(modulus);
        let b = other.rem(modulus);
        if a >= b {
            (&a - &b).rem(modulus)
        } else {
            &(&a + modulus) - &b
        }
    }

    /// Computes `self ^ exponent mod modulus` by left-to-right binary
    /// square-and-multiply: one squaring per exponent bit plus one
    /// multiplication per *set* bit, every product reduced by a full
    /// division.
    ///
    /// This is the schoolbook reference. For odd moduli,
    /// [`Montgomery::pow_mod`](crate::Montgomery::pow_mod) computes the
    /// same function several times faster (division-free inner loop,
    /// sliding window), and [`FixedBase`](crate::FixedBase) drops the
    /// squarings entirely when the base recurs; both are property-tested
    /// to agree with this method.
    ///
    /// Edge cases follow the usual conventions: `x^0 mod m = 1` for any
    /// `x` (including 0), and any power modulo 1 is 0.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let base = Uint::from(4u64);
    /// let exp = Uint::from(13u64);
    /// let m = Uint::from(497u64);
    /// assert_eq!(base.pow_mod(&exp, &m), Uint::from(445u64));
    /// ```
    pub fn pow_mod(&self, exponent: &Uint, modulus: &Uint) -> Uint {
        assert!(!modulus.is_zero(), "pow_mod modulus must be non-zero");
        if modulus.is_one() {
            return Uint::zero();
        }
        if exponent.is_zero() {
            return Uint::one();
        }
        let base = self.rem(modulus);
        let mut acc = Uint::one();
        let bits = exponent.bit_len();
        for i in (0..bits).rev() {
            acc = acc.mul_mod(&acc, modulus);
            if exponent.bit(i) {
                acc = acc.mul_mod(&base, modulus);
            }
        }
        acc
    }

    /// Computes the greatest common divisor by the Euclidean algorithm.
    ///
    /// `gcd(0, 0)` is defined as `0`.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// assert_eq!(Uint::from(48u64).gcd(&Uint::from(18u64)), Uint::from(6u64));
    /// ```
    pub fn gcd(&self, other: &Uint) -> Uint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Computes the multiplicative inverse of `self` modulo `modulus`,
    /// returning `None` when `gcd(self, modulus) != 1` (no inverse exists)
    /// or when `modulus < 2`.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let inv = Uint::from(3u64).inv_mod(&Uint::from(11u64)).unwrap();
    /// assert_eq!(inv, Uint::from(4u64)); // 3*4 = 12 ≡ 1 (mod 11)
    /// assert!(Uint::from(4u64).inv_mod(&Uint::from(8u64)).is_none());
    /// ```
    pub fn inv_mod(&self, modulus: &Uint) -> Option<Uint> {
        if modulus < &Uint::from(2u64) {
            return None;
        }
        if !modulus.is_even() {
            // The overwhelmingly common case (prime moduli: DSA's q, p)
            // takes the division-free binary algorithm — an order of
            // magnitude faster than extended Euclid at crypto sizes, and
            // directly on the signing/verification hot path (`k⁻¹`,
            // `s⁻¹`).
            return self.inv_mod_odd(modulus);
        }
        // General fallback: extended Euclid on (modulus, self mod
        // modulus), tracking only the Bezout coefficient of `self`.
        let mut r_prev = modulus.clone();
        let mut r = self.rem(modulus);
        let mut t_prev = Int::zero();
        let mut t = Int::one();
        while !r.is_zero() {
            let (q, rem) = r_prev.divrem(&r);
            let t_next = t_prev.sub(&Int::from_uint(q).mul(&t));
            r_prev = r;
            r = rem;
            t_prev = t;
            t = t_next;
        }
        if !r_prev.is_one() {
            return None;
        }
        Some(t_prev.rem_euclid(modulus))
    }

    /// Binary extended GCD inverse for **odd** moduli: shift/subtract
    /// only, no multi-precision division (HAC Algorithm 14.61
    /// specialized to odd `m`), working in place on fixed limb buffers so
    /// the loop allocates nothing.
    fn inv_mod_odd(&self, modulus: &Uint) -> Option<Uint> {
        debug_assert!(!modulus.is_even() && modulus >= &Uint::from(3u64));
        let a = self.rem(modulus);
        if a.is_zero() {
            return None;
        }
        let m = modulus.limbs();
        let width = m.len();
        // Working values u, v in `width` limbs; Bezout coefficients x1,
        // x2 in `width + 1` limbs (x + m overflows `width` transiently
        // before the halving). Invariants: x1·a ≡ u, x2·a ≡ v (mod m),
        // x1 and x2 in [0, m) at loop boundaries.
        let mut u = vec![0u64; width];
        u[..a.limbs().len()].copy_from_slice(a.limbs());
        let mut v = m.to_vec();
        let mut x1 = vec![0u64; width + 1];
        x1[0] = 1;
        let mut x2 = vec![0u64; width + 1];

        // (x + m) / 2 when x is odd, x / 2 otherwise — stays in [0, m).
        fn halve(x: &mut [u64], m: &[u64]) {
            if x[0] & 1 == 1 {
                ls_add(x, m);
            }
            ls_shr1(x);
        }
        // x ← x - y (mod m), both in [0, m).
        fn sub_mod_in_place(x: &mut [u64], y: &[u64], m: &[u64]) {
            if ls_cmp(x, y) == Ordering::Less {
                ls_add(x, m);
            }
            ls_sub(x, y);
        }

        while !ls_is_one(&u) && !ls_is_one(&v) {
            while u[0] & 1 == 0 {
                ls_shr1(&mut u);
                halve(&mut x1, m);
            }
            while v[0] & 1 == 0 {
                ls_shr1(&mut v);
                halve(&mut x2, m);
            }
            if ls_cmp(&u, &v) != Ordering::Less {
                ls_sub(&mut u, &v);
                sub_mod_in_place(&mut x1, &x2, m);
                if ls_is_zero(&u) {
                    // gcd(a, m) = v, and the loop guard says v != 1: no
                    // inverse exists.
                    return None;
                }
            } else {
                ls_sub(&mut v, &u);
                sub_mod_in_place(&mut x2, &x1, m);
            }
        }
        // gcd(a, m) = 1 landed in whichever variable reached 1.
        let x = if ls_is_one(&u) { x1 } else { x2 };
        Some(Uint::from_limbs(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from(v)
    }

    #[test]
    fn pow_mod_small() {
        assert_eq!(u(2).pow_mod(&u(10), &u(1000)), u(24));
        assert_eq!(u(2).pow_mod(&u(0), &u(1000)), u(1));
        assert_eq!(u(0).pow_mod(&u(5), &u(7)), u(0));
        assert_eq!(u(5).pow_mod(&u(1), &u(7)), u(5));
        assert_eq!(u(5).pow_mod(&u(100), &u(1)), u(0));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p, a not
        // divisible by p.
        let p = u(1_000_000_007);
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(u(a).pow_mod(&(&p - &Uint::one()), &p), Uint::one());
        }
    }

    #[test]
    fn pow_mod_large() {
        // 2^128 mod (2^61 - 1): 2^128 = 2^(61*2+6) => 2^6 = 64.
        let m = &(Uint::from(1u128 << 61)) - &Uint::one();
        let e = u(128);
        assert_eq!(u(2).pow_mod(&e, &m), u(64));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn pow_mod_zero_modulus_panics() {
        let _ = u(2).pow_mod(&u(2), &Uint::zero());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(u(48).gcd(&u(18)), u(6));
        assert_eq!(u(17).gcd(&u(5)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
        assert_eq!(Uint::zero().gcd(&Uint::zero()), Uint::zero());
    }

    #[test]
    fn inv_mod_cases() {
        assert_eq!(u(3).inv_mod(&u(11)), Some(u(4)));
        assert_eq!(u(10).inv_mod(&u(17)), Some(u(12))); // 10*12=120=7*17+1
        assert!(u(4).inv_mod(&u(8)).is_none());
        assert!(u(0).inv_mod(&u(7)).is_none());
        assert!(u(3).inv_mod(&u(1)).is_none());
        assert!(u(3).inv_mod(&Uint::zero()).is_none());
        // Odd modulus without an inverse exercises the binary path's
        // gcd-detection (not just the even-modulus Euclid fallback).
        assert!(u(3).inv_mod(&u(9)).is_none());
        assert!(u(15).inv_mod(&u(25)).is_none());
        assert!(u(9).inv_mod(&u(9)).is_none());
        // Self-inverse and unit edge cases on the binary path.
        assert_eq!(u(1).inv_mod(&u(9)), Some(u(1)));
        assert_eq!(u(8).inv_mod(&u(9)), Some(u(8))); // (-1)^2 = 1
    }

    #[test]
    fn inv_mod_binary_matches_euclid_on_odd_moduli() {
        // The division-free binary inverse must agree with the general
        // extended-Euclid fallback wherever both are defined.
        for m in [3u64, 9, 11, 15, 21, 101, 1_000_000_007] {
            for a in 0..200u64 {
                let modulus = u(m);
                let binary = u(a).inv_mod(&modulus);
                // Force the Euclid path by checking the defining property
                // instead (the fallback is only reachable for even m).
                match binary {
                    Some(inv) => {
                        assert!(inv < modulus);
                        assert_eq!(u(a).mul_mod(&inv, &modulus), Uint::one(), "a={a} m={m}");
                    }
                    None => {
                        assert_ne!(u(a).gcd(&modulus), Uint::one(), "a={a} m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn inv_mod_verifies() {
        let m = u(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            let inv = u(a).inv_mod(&m).unwrap();
            assert_eq!(u(a).mul_mod(&inv, &m), Uint::one());
        }
    }

    #[test]
    fn inv_mod_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = &Uint::from(1u128 << 127) - &Uint::one();
        let a = Uint::from(0x1234_5678_9abc_def0u64);
        let inv = a.inv_mod(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), Uint::one());
    }

    #[test]
    fn sub_mod_wraps() {
        assert_eq!(u(3).sub_mod(&u(5), &u(7)), u(5));
        assert_eq!(u(5).sub_mod(&u(3), &u(7)), u(2));
        assert_eq!(u(5).sub_mod(&u(5), &u(7)), u(0));
        assert_eq!(u(12).sub_mod(&u(20), &u(7)), u(6)); // 5 - 6 mod 7
    }

    #[test]
    fn add_mod_and_mul_mod() {
        assert_eq!(u(5).add_mod(&u(5), &u(7)), u(3));
        assert_eq!(u(5).mul_mod(&u(5), &u(7)), u(4));
    }
}
