//! A minimal signed integer used internally by the extended Euclidean
//! algorithm. Not exported: the public API of this crate is unsigned.

use std::cmp::Ordering;

use crate::uint::Uint;

/// Sign-magnitude integer. Zero is always `negative: false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Int {
    pub(crate) negative: bool,
    pub(crate) magnitude: Uint,
}

impl Int {
    pub(crate) fn zero() -> Self {
        Int {
            negative: false,
            magnitude: Uint::zero(),
        }
    }

    pub(crate) fn one() -> Self {
        Int {
            negative: false,
            magnitude: Uint::one(),
        }
    }

    pub(crate) fn from_uint(u: Uint) -> Self {
        Int {
            negative: false,
            magnitude: u,
        }
    }

    fn normalized(negative: bool, magnitude: Uint) -> Self {
        if magnitude.is_zero() {
            Int::zero()
        } else {
            Int {
                negative,
                magnitude,
            }
        }
    }

    pub(crate) fn neg(&self) -> Self {
        Int::normalized(!self.negative, self.magnitude.clone())
    }

    pub(crate) fn add(&self, other: &Int) -> Self {
        match (self.negative, other.negative) {
            (false, false) | (true, true) => {
                Int::normalized(self.negative, &self.magnitude + &other.magnitude)
            }
            _ => {
                // Differing signs: subtract the smaller magnitude.
                match self.magnitude.cmp(&other.magnitude) {
                    Ordering::Equal => Int::zero(),
                    Ordering::Greater => Int::normalized(
                        self.negative,
                        self.magnitude
                            .checked_sub(&other.magnitude)
                            .expect("greater"),
                    ),
                    Ordering::Less => Int::normalized(
                        other.negative,
                        other
                            .magnitude
                            .checked_sub(&self.magnitude)
                            .expect("greater"),
                    ),
                }
            }
        }
    }

    pub(crate) fn sub(&self, other: &Int) -> Self {
        self.add(&other.neg())
    }

    pub(crate) fn mul(&self, other: &Int) -> Self {
        Int::normalized(
            self.negative != other.negative,
            &self.magnitude * &other.magnitude,
        )
    }

    /// Reduces into the range `[0, modulus)`.
    pub(crate) fn rem_euclid(&self, modulus: &Uint) -> Uint {
        let m = self.magnitude.rem(modulus);
        if self.negative && !m.is_zero() {
            modulus.checked_sub(&m).expect("m < modulus")
        } else {
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(v: u64) -> Int {
        Int::from_uint(Uint::from(v))
    }

    fn neg(v: u64) -> Int {
        pos(v).neg()
    }

    #[test]
    fn add_signs() {
        assert_eq!(pos(5).add(&pos(3)), pos(8));
        assert_eq!(pos(5).add(&neg(3)), pos(2));
        assert_eq!(pos(3).add(&neg(5)), neg(2));
        assert_eq!(neg(3).add(&neg(5)), neg(8));
        assert_eq!(pos(5).add(&neg(5)), Int::zero());
    }

    #[test]
    fn sub_and_mul() {
        assert_eq!(pos(5).sub(&pos(8)), neg(3));
        assert_eq!(neg(5).mul(&neg(3)), pos(15));
        assert_eq!(neg(5).mul(&pos(3)), neg(15));
        assert_eq!(pos(0).mul(&neg(3)), Int::zero());
    }

    #[test]
    fn zero_never_negative() {
        assert!(!neg(5).add(&pos(5)).negative);
        assert!(!pos(0).neg().negative);
    }

    #[test]
    fn rem_euclid_wraps_negatives() {
        let m = Uint::from(7u64);
        assert_eq!(pos(10).rem_euclid(&m), Uint::from(3u64));
        assert_eq!(neg(10).rem_euclid(&m), Uint::from(4u64));
        assert_eq!(neg(7).rem_euclid(&m), Uint::zero());
        assert_eq!(neg(1).rem_euclid(&m), Uint::from(6u64));
    }
}
