//! Addition, subtraction, multiplication, shifts, and ordering for [`Uint`].

use std::cmp::Ordering;
use std::ops::{Add, Mul, Shl, Shr, Sub};

use crate::uint::Uint;

/// Limb count (per operand) above which `*` switches from schoolbook to
/// Karatsuba multiplication: 32 limbs = 2048 bits, the smallest size at
/// which the three-multiplies recursion reliably beats the tight
/// schoolbook inner loop on 64-bit hosts.
pub const KARATSUBA_THRESHOLD: usize = 32;

impl Uint {
    /// Adds two values.
    pub(crate) fn add_impl(&self, other: &Uint) -> Uint {
        let (long, short) = if self.limbs().len() >= other.limbs().len() {
            (self.limbs(), other.limbs())
        } else {
            (other.limbs(), self.limbs())
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Uint::from_limbs(out)
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let a = Uint::from(10u64);
    /// let b = Uint::from(3u64);
    /// assert_eq!(a.checked_sub(&b), Some(Uint::from(7u64)));
    /// assert_eq!(b.checked_sub(&a), None);
    /// ```
    pub fn checked_sub(&self, other: &Uint) -> Option<Uint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs().len());
        let mut borrow = 0u64;
        for i in 0..self.limbs().len() {
            let b = other.limbs().get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs()[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0, "ordering check above rules out underflow");
        Some(Uint::from_limbs(out))
    }

    /// Multiplies two values, dispatching between schoolbook and
    /// Karatsuba by operand size.
    pub(crate) fn mul_impl(&self, other: &Uint) -> Uint {
        if self.limbs().len().min(other.limbs().len()) >= KARATSUBA_THRESHOLD {
            return self.karatsuba_mul(other);
        }
        self.schoolbook_mul(other)
    }

    /// Multiplies two values with the schoolbook algorithm, regardless of
    /// size.
    ///
    /// This is the pinned reference oracle for multiplication (the same
    /// idiom as `DsaPublicKey::verify` staying schoolbook): property tests
    /// pin `karatsuba == schoolbook` on 2048/4096-bit operands against it,
    /// and `*` dispatches to it below [`KARATSUBA_THRESHOLD`] limbs where
    /// the recursion's extra additions cost more than they save.
    pub fn schoolbook_mul(&self, other: &Uint) -> Uint {
        if self.is_zero() || other.is_zero() {
            return Uint::zero();
        }
        let a = self.limbs();
        let b = other.limbs();
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Uint::from_limbs(out)
    }

    /// Karatsuba multiplication: splits both operands at half the longer
    /// operand's limb count and recurses with three half-size products
    /// instead of four.
    ///
    /// With `a = a1·B^m + a0`, `b = b1·B^m + b0` (B = 2^64):
    ///
    /// ```text
    /// a·b = z2·B^2m + z1·B^m + z0
    /// z0 = a0·b0, z2 = a1·b1, z1 = (a0+a1)(b0+b1) − z0 − z2
    /// ```
    ///
    /// Recursion bottoms out in [`Uint::schoolbook_mul`] once either
    /// operand drops below [`KARATSUBA_THRESHOLD`] limbs.
    fn karatsuba_mul(&self, other: &Uint) -> Uint {
        let a = self.limbs();
        let b = other.limbs();
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return self.schoolbook_mul(other);
        }
        let m = a.len().max(b.len()).div_ceil(2);
        let (a0, a1) = self.split_at_limb(m);
        let (b0, b1) = other.split_at_limb(m);

        let z0 = a0.mul_impl(&b0);
        let z2 = a1.mul_impl(&b1);
        let z1 = (a0.add_impl(&a1))
            .mul_impl(&b0.add_impl(&b1))
            .checked_sub(&z0)
            .and_then(|mid| mid.checked_sub(&z2))
            .expect("(a0+a1)(b0+b1) >= a0*b0 + a1*b1");

        let shift = m * Self::LIMB_BITS;
        z2.shl_impl(2 * shift)
            .add_impl(&z1.shl_impl(shift))
            .add_impl(&z0)
    }

    /// Splits into `(low m limbs, remaining high limbs)`.
    fn split_at_limb(&self, m: usize) -> (Uint, Uint) {
        let limbs = self.limbs();
        if limbs.len() <= m {
            return (Uint::from_limbs(limbs.to_vec()), Uint::zero());
        }
        (
            Uint::from_limbs(limbs[..m].to_vec()),
            Uint::from_limbs(limbs[m..].to_vec()),
        )
    }

    /// Left-shifts by `bits`.
    pub(crate) fn shl_impl(&self, bits: usize) -> Uint {
        if self.is_zero() || bits == 0 {
            return Uint::from_limbs(self.limbs().to_vec());
        }
        let limb_shift = bits / Self::LIMB_BITS;
        let bit_shift = bits % Self::LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(self.limbs());
        } else {
            let mut carry = 0u64;
            for &limb in self.limbs() {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Uint::from_limbs(out)
    }

    /// Right-shifts by `bits`.
    pub(crate) fn shr_impl(&self, bits: usize) -> Uint {
        let limb_shift = bits / Self::LIMB_BITS;
        if limb_shift >= self.limbs().len() {
            return Uint::zero();
        }
        let bit_shift = bits % Self::LIMB_BITS;
        let src = &self.limbs()[limb_shift..];
        if bit_shift == 0 {
            return Uint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).map_or(0, |&next| next << (64 - bit_shift));
            out.push(lo | hi);
        }
        Uint::from_limbs(out)
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.limbs();
        let b = other.limbs();
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Uint {
    type Output = Uint;
    fn add(self, rhs: &Uint) -> Uint {
        self.add_impl(rhs)
    }
}

impl Add for Uint {
    type Output = Uint;
    fn add(self, rhs: Uint) -> Uint {
        self.add_impl(&rhs)
    }
}

impl Sub for &Uint {
    type Output = Uint;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`Uint::checked_sub`] to handle underflow.
    fn sub(self, rhs: &Uint) -> Uint {
        self.checked_sub(rhs)
            .expect("Uint subtraction underflow; use checked_sub")
    }
}

impl Sub for Uint {
    type Output = Uint;
    fn sub(self, rhs: Uint) -> Uint {
        (&self) - (&rhs)
    }
}

impl Mul for &Uint {
    type Output = Uint;
    fn mul(self, rhs: &Uint) -> Uint {
        self.mul_impl(rhs)
    }
}

impl Mul for Uint {
    type Output = Uint;
    fn mul(self, rhs: Uint) -> Uint {
        self.mul_impl(&rhs)
    }
}

impl Shl<usize> for &Uint {
    type Output = Uint;
    fn shl(self, bits: usize) -> Uint {
        self.shl_impl(bits)
    }
}

impl Shr<usize> for &Uint {
    type Output = Uint;
    fn shr(self, bits: usize) -> Uint {
        self.shr_impl(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> Uint {
        Uint::from(v)
    }

    #[test]
    fn add_small() {
        assert_eq!(&u(2) + &u(3), u(5));
        assert_eq!(&u(0) + &u(7), u(7));
        assert_eq!(&u(u64::MAX as u128) + &u(1), u(1u128 << 64));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Uint::from(u128::MAX);
        let one = Uint::one();
        let sum = &a + &one;
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.to_hex(), "100000000000000000000000000000000");
    }

    #[test]
    fn sub_small() {
        assert_eq!(&u(5) - &u(3), u(2));
        assert_eq!(&u(5) - &u(5), u(0));
        assert!(u(3).checked_sub(&u(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &u(1) - &u(2);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let big = Uint::from(1u128 << 64);
        assert_eq!(&big - &Uint::one(), Uint::from(u64::MAX as u128));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&u(6) * &u(7), u(42));
        assert_eq!(&u(0) * &u(7), u(0));
        assert_eq!(&u(1) * &u(7), u(7));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xcafe_babe_8765_4321u64;
        let expect = (a as u128) * (b as u128);
        assert_eq!(&Uint::from(a) * &Uint::from(b), Uint::from(expect));
    }

    #[test]
    fn mul_multi_limb() {
        // (2^64 + 1)^2 = 2^128 + 2^65 + 1
        let v = &Uint::from(1u128 << 64) + &Uint::one();
        let sq = &v * &v;
        let expect = &(&Uint::from_hex("100000000000000000000000000000000").unwrap()
            + &Uint::from(1u128 << 65))
            + &Uint::one();
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        let v = u(0b1011);
        assert_eq!(&v << 1, u(0b10110));
        assert_eq!(&v << 64, Uint::from_limbs(vec![0, 0b1011]));
        assert_eq!(&v << 65, Uint::from_limbs(vec![0, 0b10110]));
        assert_eq!(&v >> 1, u(0b101));
        assert_eq!(&v >> 4, u(0));
        assert_eq!(&(&v << 100) >> 100, v);
        assert_eq!(&Uint::zero() << 5, Uint::zero());
    }

    #[test]
    fn karatsuba_boundary_matches_schoolbook() {
        // Deterministic operands straddling the dispatch threshold,
        // including heavily unbalanced splits.
        let limbs = |n: usize, salt: u64| -> Uint {
            Uint::from_limbs(
                (0..n as u64)
                    .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt ^ u64::MAX)
                    .collect(),
            )
        };
        for (la, lb) in [
            (KARATSUBA_THRESHOLD, KARATSUBA_THRESHOLD),
            (KARATSUBA_THRESHOLD + 1, KARATSUBA_THRESHOLD),
            (2 * KARATSUBA_THRESHOLD + 3, KARATSUBA_THRESHOLD),
            (4 * KARATSUBA_THRESHOLD, 4 * KARATSUBA_THRESHOLD - 7),
        ] {
            let a = limbs(la, 0xabcd);
            let b = limbs(lb, 0x1234);
            assert_eq!(&a * &b, a.schoolbook_mul(&b), "{la}x{lb} limbs");
        }
        // Below the threshold the dispatch is schoolbook by definition.
        let small = limbs(KARATSUBA_THRESHOLD - 1, 7);
        assert_eq!(&small * &small, small.schoolbook_mul(&small));
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(u(2) > u(1));
        assert!(Uint::from_limbs(vec![0, 1]) > u(u64::MAX as u128));
        assert!(Uint::from_limbs(vec![5, 1]) > Uint::from_limbs(vec![9, 0, 0]));
        assert_eq!(u(7).cmp(&u(7)), std::cmp::Ordering::Equal);
    }
}
