//! Montgomery arithmetic: a precomputed reduction context for a fixed odd
//! modulus.
//!
//! Every [`Uint::mul_mod`](crate::Uint::mul_mod) pays a full Knuth
//! Algorithm D division to reduce the double-width product. When many
//! multiplications share one modulus — a modular exponentiation performs
//! hundreds — that division dominates. Montgomery's method trades the
//! per-product division for limb-level shifts: numbers are mapped into the
//! *Montgomery domain* (`a ↦ a·R mod n` with `R = 2^(64·k)`, `k` the limb
//! count of `n`), where the product of two residues can be reduced with
//! word-by-word eliminations (REDC) instead of trial quotients. The map is
//! a ring isomorphism, so whole exponentiations run inside the domain and
//! convert back once.
//!
//! The word-level algorithm is CIOS (coarsely integrated operand
//! scanning, Koç–Acar–Kaliski): interleaving multiplication and reduction
//! keeps the intermediate at `k + 2` limbs instead of `2k`.
//!
//! Two entry levels are exposed:
//!
//! * **`Uint` domain** — [`Montgomery::mul_mod`] / [`Montgomery::pow_mod`]
//!   take and return ordinary integers; the context handles conversions.
//! * **Montgomery domain** — [`Montgomery::to_mont`] /
//!   [`Montgomery::mont_mul`] / [`Montgomery::mont_pow`] /
//!   [`Montgomery::from_mont`] operate on [`MontInt`] residues, letting
//!   callers (fixed-base tables, fused double exponentiation) stay inside
//!   the domain across several operations and pay conversion only at the
//!   edges.
//!
//! # Invariants
//!
//! * The modulus must be **odd** and `≥ 3` ([`Montgomery::new`] returns
//!   `None` otherwise — REDC needs `gcd(n, 2^64) = 1`).
//! * A [`MontInt`] is only meaningful with the context that produced it;
//!   mixing contexts of different limb widths panics, mixing same-width
//!   contexts silently computes garbage (documented, not checked — the
//!   residues are plain limb vectors).
//!
//! # Examples
//!
//! ```
//! use refstate_bigint::{Montgomery, Uint};
//!
//! let n = Uint::from(497u64); // odd modulus
//! let ctx = Montgomery::new(&n).unwrap();
//! let base = Uint::from(4u64);
//! let exp = Uint::from(13u64);
//! assert_eq!(ctx.pow_mod(&base, &exp), base.pow_mod(&exp, &n));
//! ```

use crate::uint::Uint;

/// A residue in the Montgomery domain: the value `a·R mod n` stored as
/// exactly `k` little-endian limbs, where `k` and `n` belong to the
/// [`Montgomery`] context that produced it.
///
/// Opaque on purpose: the only useful operations are the context's
/// [`mont_mul`](Montgomery::mont_mul) / [`mont_pow`](Montgomery::mont_pow)
/// and the conversion back via [`from_mont`](Montgomery::from_mont).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontInt {
    limbs: Vec<u64>,
}

/// A Montgomery reduction context for one fixed odd modulus.
///
/// Construction performs the one-time precomputation (`-n⁻¹ mod 2^64` by
/// Newton iteration, `R mod n` and `R² mod n` by one wide division each);
/// afterwards every modular multiplication costs one CIOS pass —
/// `O(k²)` single-word multiplications and **no division**.
#[derive(Debug, Clone)]
pub struct Montgomery {
    /// The modulus `n` (odd, ≥ 3).
    n: Uint,
    /// `n` as exactly `k` limbs.
    n_limbs: Vec<u64>,
    /// `-n⁻¹ mod 2^64`.
    n0: u64,
    /// `R² mod n` (`k` limbs): multiplying by it converts into the domain.
    r2: Vec<u64>,
    /// `R mod n` (`k` limbs): the Montgomery form of 1.
    one: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for `modulus`, or `None` if the modulus is even or
    /// below 3 (REDC requires the modulus to be coprime to the limb base).
    ///
    /// ```
    /// use refstate_bigint::{Montgomery, Uint};
    /// assert!(Montgomery::new(&Uint::from(15u64)).is_some());
    /// assert!(Montgomery::new(&Uint::from(16u64)).is_none());
    /// assert!(Montgomery::new(&Uint::from(1u64)).is_none());
    /// ```
    pub fn new(modulus: &Uint) -> Option<Self> {
        if modulus.is_even() || modulus < &Uint::from(3u64) {
            return None;
        }
        let k = modulus.limb_len();
        let mut n_limbs = modulus.limbs().to_vec();
        n_limbs.resize(k, 0);

        // Newton–Hensel: for odd x, x ≡ x⁻¹ (mod 8); each step doubles
        // the number of correct low bits, so six steps exceed 64.
        let x = n_limbs[0];
        let mut inv = x;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
        }
        debug_assert_eq!(x.wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();

        let r_mod_n = (&Uint::one() << (64 * k)).rem(modulus);
        let r2_mod_n = (&Uint::one() << (128 * k)).rem(modulus);
        Some(Montgomery {
            n: modulus.clone(),
            n_limbs,
            n0,
            r2: to_fixed_limbs(&r2_mod_n, k),
            one: to_fixed_limbs(&r_mod_n, k),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Uint {
        &self.n
    }

    /// Converts `value` into the Montgomery domain (reducing it modulo `n`
    /// first if necessary).
    pub fn to_mont(&self, value: &Uint) -> MontInt {
        let k = self.n_limbs.len();
        let reduced = if value < &self.n {
            value.clone()
        } else {
            value.rem(&self.n)
        };
        MontInt {
            limbs: self.cios(&to_fixed_limbs(&reduced, k), &self.r2),
        }
    }

    /// Converts a Montgomery residue back to an ordinary integer in
    /// `[0, n)`.
    pub fn from_mont(&self, value: &MontInt) -> Uint {
        self.check_width(value);
        let one = to_fixed_limbs(&Uint::one(), self.n_limbs.len());
        Uint::from_limbs(self.cios(&value.limbs, &one))
    }

    /// The Montgomery form of 1 (the multiplicative identity of the
    /// domain) — the natural accumulator seed for product chains.
    pub fn one_mont(&self) -> MontInt {
        MontInt {
            limbs: self.one.clone(),
        }
    }

    /// Multiplies two Montgomery residues: one CIOS pass, no division.
    ///
    /// # Panics
    ///
    /// Panics if either operand came from a context with a different limb
    /// width (same-width foreign residues are *not* detectable).
    pub fn mont_mul(&self, a: &MontInt, b: &MontInt) -> MontInt {
        self.check_width(a);
        self.check_width(b);
        MontInt {
            limbs: self.cios(&a.limbs, &b.limbs),
        }
    }

    /// Raises a Montgomery residue to `exponent` by left-to-right
    /// sliding-window exponentiation, staying in the domain.
    ///
    /// Cost: `bits` squarings plus roughly `bits / (w + 1)` multiplies
    /// plus `2^(w-1)` table entries, with the window width `w` chosen from
    /// the exponent size (3–5 bits). `exponent == 0` yields
    /// [`Montgomery::one_mont`].
    pub fn mont_pow(&self, base: &MontInt, exponent: &Uint) -> MontInt {
        self.check_width(base);
        let bits = exponent.bit_len();
        if bits == 0 {
            return self.one_mont();
        }
        let window = window_width(bits);
        // Odd powers base^1, base^3, …, base^(2^w - 1).
        let base_sq = self.cios(&base.limbs, &base.limbs);
        let mut odd_powers = Vec::with_capacity(1 << (window - 1));
        odd_powers.push(base.limbs.clone());
        for i in 1..(1 << (window - 1)) {
            let next = self.cios(&odd_powers[i - 1], &base_sq);
            odd_powers.push(next);
        }

        let mut acc = self.one.clone();
        let mut i = bits; // scan position: next unprocessed bit is i - 1
        while i > 0 {
            if !exponent.bit(i - 1) {
                acc = self.cios(&acc, &acc);
                i -= 1;
                continue;
            }
            // Take a window [j, i) ending on a set bit so its value is odd.
            let mut j = i.saturating_sub(window);
            while !exponent.bit(j) {
                j += 1;
            }
            let mut value = 0usize;
            for b in (j..i).rev() {
                acc = self.cios(&acc, &acc);
                value = (value << 1) | exponent.bit(b) as usize;
            }
            debug_assert!(value % 2 == 1);
            acc = self.cios(&acc, &odd_powers[value / 2]);
            i = j;
        }
        MontInt { limbs: acc }
    }

    /// Inverts a Montgomery residue **in-domain**: given `â = a·R mod n`,
    /// returns `a⁻¹·R mod n`, or `None` when `gcd(a, n) ≠ 1` (including
    /// `a = 0`).
    ///
    /// The residue is inverted with the division-free binary extended GCD
    /// ([`Uint::inv_mod`] — always on the odd-modulus path, since a
    /// Montgomery modulus is odd by construction), then mapped back into
    /// the domain with two REDC multiplications by `R²`:
    /// `(a·R)⁻¹ = a⁻¹·R⁻¹ ──·R²·R⁻¹──▶ a⁻¹ ──·R²·R⁻¹──▶ a⁻¹·R`.
    /// No trial division anywhere, and callers chaining an inverse into
    /// further products (DSA's `w = s⁻¹` feeding `u1 = z·w`, `u2 = r·w`)
    /// never leave the domain.
    ///
    /// ```
    /// use refstate_bigint::{Montgomery, Uint};
    /// let n = Uint::from(497u64);
    /// let ctx = Montgomery::new(&n).unwrap();
    /// let a = Uint::from(123u64);
    /// let inv = ctx.inv(&ctx.to_mont(&a)).unwrap();
    /// assert_eq!(
    ///     ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &inv)),
    ///     Uint::one()
    /// );
    /// ```
    pub fn inv(&self, a: &MontInt) -> Option<MontInt> {
        self.check_width(a);
        let plain = Uint::from_limbs(a.limbs.clone()).inv_mod(&self.n)?;
        let k = self.n_limbs.len();
        let unmapped = self.cios(&to_fixed_limbs(&plain, k), &self.r2);
        Some(MontInt {
            limbs: self.cios(&unmapped, &self.r2),
        })
    }

    /// Computes `a⁻¹ mod n` through the domain (reduce in, [`Montgomery::inv`],
    /// convert out); `None` when `a` is not invertible. Agrees with
    /// [`Uint::inv_mod`] for every input (property-tested).
    pub fn inv_mod(&self, a: &Uint) -> Option<Uint> {
        Some(self.from_mont(&self.inv(&self.to_mont(a))?))
    }

    /// Computes `(a * b) mod n` through the domain: two conversions in,
    /// one CIOS multiply, one conversion out.
    ///
    /// For a *single* product this is slower than
    /// [`Uint::mul_mod`](crate::Uint::mul_mod); the win appears when the
    /// context (and its conversions) amortize over many operations, as in
    /// [`Montgomery::pow_mod`].
    ///
    /// ```
    /// use refstate_bigint::{Montgomery, Uint};
    /// let n = Uint::from(10_000_000_019u64);
    /// let ctx = Montgomery::new(&n).unwrap();
    /// let a = Uint::from(123_456_789u64);
    /// let b = Uint::from(987_654_321u64);
    /// assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &n));
    /// ```
    pub fn mul_mod(&self, a: &Uint, b: &Uint) -> Uint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Computes `base ^ exponent mod n` entirely inside the Montgomery
    /// domain: one conversion in, sliding-window ladder, one conversion
    /// out. Agrees with the schoolbook
    /// [`Uint::pow_mod`](crate::Uint::pow_mod) for every input
    /// (property-tested) at a fraction of its cost for multi-limb moduli.
    ///
    /// ```
    /// use refstate_bigint::{Montgomery, Uint};
    /// let p = &(Uint::from(1u128 << 127)) - &Uint::one(); // Mersenne prime
    /// let ctx = Montgomery::new(&p).unwrap();
    /// let g = Uint::from(3u64);
    /// let e = Uint::from(0xdead_beefu64);
    /// assert_eq!(ctx.pow_mod(&g, &e), g.pow_mod(&e, &p));
    /// ```
    pub fn pow_mod(&self, base: &Uint, exponent: &Uint) -> Uint {
        let bm = self.to_mont(base);
        self.from_mont(&self.mont_pow(&bm, exponent))
    }

    fn check_width(&self, value: &MontInt) {
        assert_eq!(
            value.limbs.len(),
            self.n_limbs.len(),
            "MontInt used with a foreign Montgomery context"
        );
    }

    /// One CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n` as `k`
    /// limbs. Operands must be `k` limbs and represent values `< n`.
    fn cios(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n_limbs.len();
        let n = &self.n_limbs;
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u64 = 0;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry as u128;
                t[j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[k] as u128 + carry as u128;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // Eliminate the low word: t += m·n with m ≡ -t[0]/n[0], then
            // shift one word right (the low word is zero by construction).
            let m = t[0].wrapping_mul(self.n0);
            let cur = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = (cur >> 64) as u64;
            debug_assert_eq!(cur as u64, 0);
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry as u128;
                t[j - 1] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[k] as u128 + carry as u128;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1] + ((cur >> 64) as u64);
        }

        // Conditional final subtraction into [0, n).
        let needs_sub = t[k] != 0 || ge_limbs(&t[..k], n);
        let mut out = Vec::with_capacity(k);
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out.push(d2);
                borrow = (b1 as u64) + (b2 as u64);
            }
            debug_assert_eq!(borrow, t[k]);
        } else {
            out.extend_from_slice(&t[..k]);
        }
        out
    }
}

/// `a >= b` for equal-length little-endian limb slices.
fn ge_limbs(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for j in (0..a.len()).rev() {
        if a[j] != b[j] {
            return a[j] > b[j];
        }
    }
    true
}

/// Copies `value` into exactly `k` limbs (the value must fit).
fn to_fixed_limbs(value: &Uint, k: usize) -> Vec<u64> {
    let mut limbs = value.limbs().to_vec();
    debug_assert!(limbs.len() <= k);
    limbs.resize(k, 0);
    limbs
}

/// Window width for sliding-window exponentiation, by exponent size.
pub(crate) fn window_width(bits: usize) -> usize {
    match bits {
        0..=23 => 1,
        24..=79 => 3,
        80..=511 => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from(v)
    }

    #[test]
    fn rejects_even_and_tiny_moduli() {
        assert!(Montgomery::new(&Uint::zero()).is_none());
        assert!(Montgomery::new(&Uint::one()).is_none());
        assert!(Montgomery::new(&u(2)).is_none());
        assert!(Montgomery::new(&u(1024)).is_none());
        assert!(Montgomery::new(&u(3)).is_some());
    }

    #[test]
    fn round_trip_through_domain() {
        let n = u(1_000_000_007);
        let ctx = Montgomery::new(&n).unwrap();
        for v in [0u64, 1, 2, 999_999_999, 1_000_000_006] {
            let m = ctx.to_mont(&u(v));
            assert_eq!(ctx.from_mont(&m), u(v));
        }
        // Values above n reduce on the way in.
        let m = ctx.to_mont(&u(3_000_000_021));
        assert_eq!(ctx.from_mont(&m), u(0));
    }

    #[test]
    fn mul_matches_schoolbook_small() {
        let n = u(497);
        let ctx = Montgomery::new(&n).unwrap();
        for a in [0u64, 1, 7, 123, 496] {
            for b in [0u64, 1, 13, 400, 496] {
                assert_eq!(ctx.mul_mod(&u(a), &u(b)), u(a).mul_mod(&u(b), &n));
            }
        }
    }

    #[test]
    fn mul_matches_schoolbook_multi_limb() {
        // 2^127 - 1 (two limbs) and a 256-bit odd composite.
        let p = &Uint::from(1u128 << 127) - &Uint::one();
        let big =
            Uint::from_hex("f0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdf")
                .unwrap();
        for n in [p, big] {
            let ctx = Montgomery::new(&n).unwrap();
            let a = Uint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
            let b = Uint::from_hex("ffffffffffffffff1111111111111111").unwrap();
            assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &n));
        }
    }

    #[test]
    fn pow_matches_schoolbook() {
        let n = u(1_000_000_007);
        let ctx = Montgomery::new(&n).unwrap();
        for (b, e) in [(2u64, 10u64), (4, 13), (7, 0), (0, 5), (999, 999_999)] {
            assert_eq!(
                ctx.pow_mod(&u(b), &u(e)),
                u(b).pow_mod(&u(e), &n),
                "{b}^{e}"
            );
        }
    }

    #[test]
    fn pow_fermat_large() {
        // a^(p-1) ≡ 1 mod p across window-width regimes.
        let p = &Uint::from(1u128 << 127) - &Uint::one();
        let ctx = Montgomery::new(&p).unwrap();
        let e = &p - &Uint::one();
        for a in [2u64, 3, 65537] {
            assert_eq!(ctx.pow_mod(&u(a), &e), Uint::one());
        }
    }

    #[test]
    fn mont_domain_product_chains() {
        // g^x · h^y computed in-domain equals the schoolbook composite.
        let n = u(1_000_000_007);
        let ctx = Montgomery::new(&n).unwrap();
        let (g, x, h, y) = (u(5), u(1234), u(11), u(5678));
        let gm = ctx.mont_pow(&ctx.to_mont(&g), &x);
        let hm = ctx.mont_pow(&ctx.to_mont(&h), &y);
        let fused = ctx.from_mont(&ctx.mont_mul(&gm, &hm));
        let split = g.pow_mod(&x, &n).mul_mod(&h.pow_mod(&y, &n), &n);
        assert_eq!(fused, split);
    }

    #[test]
    fn inv_is_in_domain_and_matches_uint_inv_mod() {
        let n = u(497); // 7 · 71: plenty of non-invertible residues
        let ctx = Montgomery::new(&n).unwrap();
        for a in 0u64..497 {
            let au = u(a);
            let expect = au.inv_mod(&n);
            let got = ctx.inv(&ctx.to_mont(&au));
            match (expect, got) {
                (None, None) => {}
                (Some(plain), Some(residue)) => {
                    // In-domain: the residue IS inv·R, so from_mont agrees
                    // with the plain inverse and a·â⁻¹ is the identity.
                    assert_eq!(ctx.from_mont(&residue), plain, "a={a}");
                    assert_eq!(
                        ctx.mont_mul(&ctx.to_mont(&au), &residue),
                        ctx.one_mont(),
                        "a={a}"
                    );
                }
                (e, g) => panic!("a={a}: inv_mod says {e:?}, Montgomery::inv says {g:?}"),
            }
        }
    }

    #[test]
    fn inv_mod_multi_limb_matches_uint() {
        let p = &Uint::from(1u128 << 127) - &Uint::one();
        let ctx = Montgomery::new(&p).unwrap();
        let a = Uint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(ctx.inv_mod(&a), a.inv_mod(&p));
        assert_eq!(ctx.inv_mod(&Uint::zero()), None);
    }

    #[test]
    fn inv_chains_without_leaving_the_domain() {
        // The DSA shape: w = s⁻¹, then u1 = z·w and u2 = r·w, all in-domain.
        let q = u(99991);
        let ctx = Montgomery::new(&q).unwrap();
        let (s, z, r) = (u(1234), u(4321), u(77777));
        let w = ctx.inv(&ctx.to_mont(&s)).unwrap();
        let u1 = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&z), &w));
        let u2 = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&r), &w));
        let w_plain = s.inv_mod(&q).unwrap();
        assert_eq!(u1, z.mul_mod(&w_plain, &q));
        assert_eq!(u2, r.mul_mod(&w_plain, &q));
    }

    #[test]
    fn one_mont_is_identity() {
        let n = u(99991);
        let ctx = Montgomery::new(&n).unwrap();
        let a = ctx.to_mont(&u(12345));
        assert_eq!(ctx.mont_mul(&a, &ctx.one_mont()), a);
        assert_eq!(ctx.from_mont(&ctx.one_mont()), Uint::one());
    }

    #[test]
    #[should_panic(expected = "foreign Montgomery context")]
    fn foreign_width_residue_panics() {
        let small = Montgomery::new(&u(497)).unwrap();
        let wide = Montgomery::new(&(&Uint::from(1u128 << 127) - &Uint::one())).unwrap();
        let residue = wide.to_mont(&u(42));
        let _ = small.from_mont(&residue);
    }

    #[test]
    fn window_width_monotone() {
        assert_eq!(window_width(1), 1);
        assert_eq!(window_width(48), 3);
        assert_eq!(window_width(160), 4);
        assert_eq!(window_width(1024), 5);
    }
}
