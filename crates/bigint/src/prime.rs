//! Probabilistic primality testing and prime generation.

use rand::RngCore;

use crate::montgomery::Montgomery;
use crate::random::{random_exact_bits, random_in_unit_range};
use crate::uint::Uint;

/// The primes below 1000, used for cheap trial division before Miller–Rabin.
pub const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Tests `n` for primality with trial division followed by `rounds` rounds of
/// Miller–Rabin with random bases.
///
/// A composite passes with probability at most `4^-rounds`; 40 rounds is
/// standard for cryptographic use. Every candidate that survives trial
/// division is odd, so the witness exponentiations run through one shared
/// [`Montgomery`] context — the whole round stays in the Montgomery
/// domain, division-free.
///
/// ```
/// use rand::SeedableRng;
/// use refstate_bigint::{is_probable_prime, Uint};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(is_probable_prime(&Uint::from(65537u64), 20, &mut rng));
/// assert!(!is_probable_prime(&Uint::from(65536u64), 20, &mut rng));
/// ```
pub fn is_probable_prime(n: &Uint, rounds: u32, rng: &mut dyn RngCore) -> bool {
    if n < &Uint::from(2u64) {
        return false;
    }
    for &p in SMALL_PRIMES.iter() {
        let p = Uint::from(p);
        if n == &p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = Uint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n >= 2");
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = &d >> 1;
        s += 1;
    }

    // Trial division caught every even candidate (and n == 2), so n is
    // odd here and the context always exists.
    let ctx = Montgomery::new(n).expect("candidates surviving trial division are odd and > 2");
    let one_m = ctx.one_mont();
    let n_minus_1_m = ctx.to_mont(&n_minus_1);

    'witness: for _ in 0..rounds {
        let a = random_in_unit_range(rng, &n_minus_1);
        if a.is_one() {
            continue;
        }
        let mut x = ctx.mont_pow(&ctx.to_mont(&a), &d);
        if x == one_m || x == n_minus_1_m {
            continue;
        }
        for _ in 0..s - 1 {
            x = ctx.mont_mul(&x, &x);
            if x == n_minus_1_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The candidate stream is random odd numbers with the top bit forced, so the
/// result always has full bit length.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime(bits: usize, rounds: u32, rng: &mut dyn RngCore) -> Uint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_exact_bits(rng, bits);
        if candidate.is_even() {
            candidate = &candidate + &Uint::one();
            if candidate.bit_len() != bits {
                continue; // overflowed to bits+1 (candidate was 2^bits - 1 + 1)
            }
        }
        if is_probable_prime(&candidate, rounds, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 997, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&Uint::from(p), 20, &mut rng), "{p}");
        }
    }

    #[test]
    fn composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u64, 1, 4, 9, 561, 1105, 1729, 65536, 1_000_000_000] {
            assert!(!is_probable_prime(&Uint::from(c), 20, &mut rng), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&Uint::from(c), 20, &mut rng), "{c}");
        }
    }

    #[test]
    fn mersenne_prime_127() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = &Uint::from(1u128 << 127) - &Uint::one();
        assert!(is_probable_prime(&p, 16, &mut rng));
    }

    #[test]
    fn product_of_primes_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        // Product of two 64-bit primes: definitely composite, no small factors.
        let p = Uint::from(18446744073709551557u64); // largest 64-bit prime
        let q = Uint::from(18446744073709551533u64); // second largest
        assert!(!is_probable_prime(&(&p * &q), 16, &mut rng));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(6);
        for bits in [8usize, 16, 32, 64] {
            let p = gen_prime(bits, 16, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn gen_prime_128_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = gen_prime(128, 12, &mut rng);
        assert_eq!(p.bit_len(), 128);
        assert!(!p.is_even());
    }
}
