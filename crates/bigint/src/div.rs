//! Division with remainder: short division and Knuth Algorithm D.

use crate::uint::Uint;

impl Uint {
    /// Divides `self` by `divisor`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero; use [`Uint::checked_divrem`] for a
    /// fallible variant.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let (q, r) = Uint::from(17u64).divrem(&Uint::from(5u64));
    /// assert_eq!((q, r), (Uint::from(3u64), Uint::from(2u64)));
    /// ```
    pub fn divrem(&self, divisor: &Uint) -> (Uint, Uint) {
        self.checked_divrem(divisor)
            .expect("division by zero Uint; use checked_divrem")
    }

    /// Divides `self` by `divisor`, returning `None` if `divisor` is zero.
    pub fn checked_divrem(&self, divisor: &Uint) -> Option<(Uint, Uint)> {
        if divisor.is_zero() {
            return None;
        }
        if self < divisor {
            return Some((Uint::zero(), self.clone()));
        }
        if divisor.limb_len() == 1 {
            let (q, r) = self.div_by_limb(divisor.limbs()[0]);
            return Some((q, Uint::from(r)));
        }
        Some(self.div_knuth(divisor))
    }

    /// Computes `self % modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &Uint) -> Uint {
        self.divrem(modulus).1
    }

    /// Short division by a single non-zero limb.
    fn div_by_limb(&self, d: u64) -> (Uint, u64) {
        debug_assert!(d != 0);
        let mut out = vec![0u64; self.limb_len()];
        let mut rem: u128 = 0;
        for (i, &limb) in self.limbs().iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Uint::from_limbs(out), rem as u64)
    }

    /// Knuth TAOCP Vol. 2, Algorithm 4.3.1 D, for divisors of two or more
    /// limbs. Requires `self >= divisor` and `divisor.limb_len() >= 2`.
    fn div_knuth(&self, divisor: &Uint) -> (Uint, Uint) {
        let n = divisor.limb_len();
        let m = self.limb_len() - n;
        debug_assert!(n >= 2);

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs()[n - 1].leading_zeros() as usize;
        let vn = divisor.shl_impl(shift);
        let un_val = self.shl_impl(shift);
        let v = vn.limbs().to_vec();
        // u gets one extra high limb (possibly zero) for the algorithm.
        let mut u = un_val.limbs().to_vec();
        u.resize(self.limb_len() + 1, 0);

        let mut q = vec![0u64; m + 1];
        let b: u128 = 1 << 64;

        // D2..D7: loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two limbs of the current window.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            // Correct qhat: at most two adjustments (Knuth Theorem B).
            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let prod = qhat * v[i] as u128 + carry;
                carry = prod >> 64;
                let sub = (u[j + i] as i128) - (prod as u64 as i128) + borrow;
                u[j + i] = sub as u64; // wraps mod 2^64 as intended
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            // D5/D6: if we subtracted too much, add one divisor back.
            if borrow < 0 {
                qhat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let sum = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u[j + n] = (u[j + n] as u128 + carry) as u64;
            }
            q[j] = qhat as u64;
        }

        // D8: denormalize the remainder.
        let rem = Uint::from_limbs(u[..n].to_vec()).shr_impl(shift);
        (Uint::from_limbs(q), rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &Uint, b: &Uint) {
        let (q, r) = a.divrem(b);
        assert!(r < *b, "remainder {r:?} >= divisor {b:?}");
        assert_eq!(&(&q * b) + &r, *a, "q*b + r != a for a={a:?} b={b:?}");
    }

    #[test]
    fn div_small() {
        let (q, r) = Uint::from(100u64).divrem(&Uint::from(7u64));
        assert_eq!(q, Uint::from(14u64));
        assert_eq!(r, Uint::from(2u64));
    }

    #[test]
    fn div_by_larger_is_zero() {
        let (q, r) = Uint::from(3u64).divrem(&Uint::from(10u64));
        assert_eq!(q, Uint::zero());
        assert_eq!(r, Uint::from(3u64));
    }

    #[test]
    fn div_by_zero_checked() {
        assert!(Uint::from(3u64).checked_divrem(&Uint::zero()).is_none());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Uint::from(3u64).divrem(&Uint::zero());
    }

    #[test]
    fn div_exact() {
        let a = Uint::from_hex("100000000000000000000000000000000").unwrap();
        let b = Uint::from(1u128 << 64);
        let (q, r) = a.divrem(&b);
        assert_eq!(q, Uint::from(1u128 << 64));
        assert!(r.is_zero());
    }

    #[test]
    fn div_matches_u128() {
        let pairs: [(u128, u128); 6] = [
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX - 1, (1u128 << 64) + 1),
            (123_456_789_012_345_678_901_234_567_890u128, 987_654_321u128),
            (1u128 << 127, (1u128 << 64) - 1),
            (u128::MAX, u128::MAX - 5),
        ];
        for (a, b) in pairs {
            let (q, r) = Uint::from(a).divrem(&Uint::from(b));
            assert_eq!(q, Uint::from(a / b));
            assert_eq!(r, Uint::from(a % b));
        }
    }

    #[test]
    fn div_multi_limb_invariant() {
        // Deterministic pseudo-random pattern without an RNG dependency.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for limbs_a in 1..6usize {
            for limbs_b in 1..5usize {
                let a = Uint::from_limbs((0..limbs_a).map(|_| next()).collect());
                let b = Uint::from_limbs((0..limbs_b).map(|_| next() | 1).collect());
                if !b.is_zero() {
                    check(&a, &b);
                }
            }
        }
    }

    #[test]
    fn div_knuth_add_back_case() {
        // Crafted to exercise the rare D6 "add back" branch: divisor with
        // high limb pattern that forces qhat overestimation.
        let a = Uint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let b = Uint::from_limbs(vec![1, 0, 0x8000_0000_0000_0000]);
        check(&a, &b);
        let a2 = Uint::from_limbs(vec![0, u64::MAX, u64::MAX - 1]);
        let b2 = Uint::from_limbs(vec![u64::MAX, u64::MAX]);
        check(&a2, &b2);
    }

    #[test]
    fn rem_helper() {
        assert_eq!(Uint::from(17u64).rem(&Uint::from(5u64)), Uint::from(2u64));
    }
}
