//! Fixed-base exponentiation: a precomputed radix-`2^w` digit table for
//! one base that recurs across many exponentiations.
//!
//! A generic modular exponentiation squares its way along the exponent —
//! `bits` squarings plus a multiply every few bits. When the *base* is
//! fixed (a group generator `g`, a public key `y`) the squarings can be
//! precomputed once: write the exponent in base `2^w` digits
//! `e = Σ eᵢ·2^(w·i)` and store `base^(j·2^(w·i))` for every digit
//! position `i` and digit value `j`. An exponentiation is then just one
//! Montgomery multiplication per **non-zero digit** — for a 160-bit
//! exponent and `w = 4`, at most 40 multiplications where the generic
//! ladder pays ~160 squarings plus ~40 multiplications.
//!
//! The table lives in the Montgomery domain of a shared [`Montgomery`]
//! context, so several tables over the same modulus (a generator table and
//! per-key tables) compose: `g^u1 · y^u2 mod p` is two table walks and a
//! single [`Montgomery::mont_mul`], never leaving the domain.
//!
//! # Invariants
//!
//! * The table is sized for exponents up to `max_exp_bits`; larger
//!   exponents transparently fall back to the context's generic
//!   sliding-window ladder ([`Montgomery::mont_pow`]) — correct, just not
//!   table-accelerated.
//! * Memory: `ceil(max_exp_bits / w) · (2^w - 1)` Montgomery residues of
//!   modulus width (≈ 38 KiB for a 1024-bit modulus, 160-bit exponents,
//!   `w = 4`).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use refstate_bigint::{FixedBase, Montgomery, Uint};
//!
//! let p = Uint::from(1_000_000_007u64);
//! let ctx = Arc::new(Montgomery::new(&p).unwrap());
//! let g = Uint::from(5u64);
//! let table = FixedBase::new(ctx, &g, 64);
//! let e = Uint::from(0xfeed_beefu64);
//! assert_eq!(table.pow_mod(&e), g.pow_mod(&e, &p));
//! ```

use std::sync::Arc;

use crate::montgomery::{MontInt, Montgomery};
use crate::uint::Uint;

/// Default digit width: 16-entry rows, one multiplication per 4 exponent
/// bits. The sweet spot for the 160-bit DSA exponents this workspace
/// signs and verifies with (table build cost amortizes within ~15
/// exponentiations).
const DEFAULT_WINDOW: usize = 4;

/// A precomputed fixed-base exponentiator over one [`Montgomery`] context:
/// write the exponent in radix-`2^w` digits and pay one Montgomery
/// multiplication per non-zero digit — no squarings (algorithm and cost
/// model at the top of this file).
#[derive(Debug, Clone)]
pub struct FixedBase {
    mont: Arc<Montgomery>,
    /// The base in Montgomery form (fallback path for oversized exponents).
    base: MontInt,
    /// Digit width `w` in bits (1..=8).
    window: usize,
    /// Number of digit positions covered by the table.
    digits: usize,
    /// Row-major: entry `i·(2^w - 1) + (j - 1)` is `base^(j·2^(w·i))` in
    /// Montgomery form, `j` in `1..2^w`.
    table: Vec<MontInt>,
}

impl FixedBase {
    /// Precomputes a table for `base` modulo the context's modulus,
    /// covering exponents of up to `max_exp_bits` bits, with the default
    /// digit width.
    pub fn new(mont: Arc<Montgomery>, base: &Uint, max_exp_bits: usize) -> Self {
        Self::with_window(mont, base, max_exp_bits, DEFAULT_WINDOW)
    }

    /// [`FixedBase::new`] with an explicit digit width `window` (clamped
    /// to `1..=8`).
    pub fn with_window(
        mont: Arc<Montgomery>,
        base: &Uint,
        max_exp_bits: usize,
        window: usize,
    ) -> Self {
        let window = window.clamp(1, 8);
        let digits = max_exp_bits.div_ceil(window).max(1);
        let row = (1usize << window) - 1;
        let base_mont = mont.to_mont(base);

        let mut table = Vec::with_capacity(digits * row);
        // `position` walks base^(2^(w·i)); each row holds its powers 1..2^w.
        let mut position = base_mont.clone();
        for _ in 0..digits {
            let mut power = position.clone();
            table.push(power.clone());
            for _ in 2..=row {
                power = mont.mont_mul(&power, &position);
                table.push(power.clone());
            }
            // base^(2^(w·(i+1))) = base^((2^w - 1)·2^(w·i)) · base^(2^(w·i)).
            position = mont.mont_mul(&power, &position);
        }
        FixedBase {
            mont,
            base: base_mont,
            window,
            digits,
            table,
        }
    }

    /// The context whose domain the table's entries live in.
    pub fn context(&self) -> &Arc<Montgomery> {
        &self.mont
    }

    /// Raises the fixed base to `exponent`, returning the result in the
    /// Montgomery domain (one multiplication per non-zero digit).
    ///
    /// Stays in the domain so callers can fuse several fixed-base results
    /// (`g^u1 · y^u2`) with [`Montgomery::mont_mul`] before converting out
    /// once.
    pub fn pow(&self, exponent: &Uint) -> MontInt {
        let bits = exponent.bit_len();
        if bits > self.digits * self.window {
            // Oversized exponent: correct generic fallback.
            return self.mont.mont_pow(&self.base, exponent);
        }
        let row = (1usize << self.window) - 1;
        let mut acc = self.mont.one_mont();
        let used_digits = bits.div_ceil(self.window);
        for i in 0..used_digits {
            let mut digit = 0usize;
            for b in (0..self.window).rev() {
                digit = (digit << 1) | exponent.bit(i * self.window + b) as usize;
            }
            if digit != 0 {
                acc = self.mont.mont_mul(&acc, &self.table[i * row + digit - 1]);
            }
        }
        acc
    }

    /// Raises the fixed base to `exponent`, returning an ordinary integer
    /// in `[0, modulus)`.
    ///
    /// Agrees with the schoolbook `base.pow_mod(exponent, modulus)` for
    /// every exponent (property-tested).
    pub fn pow_mod(&self, exponent: &Uint) -> Uint {
        self.mont.from_mont(&self.pow(exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u64) -> Arc<Montgomery> {
        Arc::new(Montgomery::new(&Uint::from(n)).unwrap())
    }

    #[test]
    fn matches_schoolbook_across_exponents() {
        let m = ctx(1_000_000_007);
        let g = Uint::from(5u64);
        let table = FixedBase::new(m, &g, 64);
        for e in [0u64, 1, 2, 15, 16, 17, 255, 1 << 40, u64::MAX] {
            let e = Uint::from(e);
            assert_eq!(
                table.pow_mod(&e),
                g.pow_mod(&e, &Uint::from(1_000_000_007u64)),
                "exponent {e}"
            );
        }
    }

    #[test]
    fn all_window_widths_agree() {
        let n = Uint::from(99991u64);
        let g = Uint::from(7u64);
        let e = Uint::from(0x1234_5678_9abcu64);
        let reference = g.pow_mod(&e, &n);
        for w in 1..=8 {
            let m = Arc::new(Montgomery::new(&n).unwrap());
            let table = FixedBase::with_window(m, &g, 48, w);
            assert_eq!(table.pow_mod(&e), reference, "window {w}");
        }
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let m = ctx(1_000_000_007);
        let g = Uint::from(3u64);
        // Table sized for 16-bit exponents; drive a 64-bit one through it.
        let table = FixedBase::new(m, &g, 16);
        let e = Uint::from(u64::MAX);
        assert_eq!(
            table.pow_mod(&e),
            g.pow_mod(&e, &Uint::from(1_000_000_007u64))
        );
    }

    #[test]
    fn zero_exponent_is_one() {
        let m = ctx(497);
        let table = FixedBase::new(m, &Uint::from(4u64), 16);
        assert_eq!(table.pow_mod(&Uint::zero()), Uint::one());
    }

    #[test]
    fn fused_double_exponentiation_in_domain() {
        // g^x · h^y through two tables and one mont_mul.
        let n = Uint::from(1_000_000_007u64);
        let m = Arc::new(Montgomery::new(&n).unwrap());
        let (g, h) = (Uint::from(5u64), Uint::from(11u64));
        let gt = FixedBase::new(m.clone(), &g, 64);
        let ht = FixedBase::new(m.clone(), &h, 64);
        let (x, y) = (Uint::from(123_456u64), Uint::from(654_321u64));
        let fused = m.from_mont(&m.mont_mul(&gt.pow(&x), &ht.pow(&y)));
        let split = g.pow_mod(&x, &n).mul_mod(&h.pow_mod(&y, &n), &n);
        assert_eq!(fused, split);
    }

    #[test]
    fn reducible_base_is_reduced() {
        let m = ctx(497);
        let big_base = Uint::from(497u64 * 3 + 4);
        let table = FixedBase::new(m, &big_base, 16);
        let e = Uint::from(13u64);
        assert_eq!(
            table.pow_mod(&e),
            Uint::from(4u64).pow_mod(&e, &Uint::from(497u64))
        );
    }
}
