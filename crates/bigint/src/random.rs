//! Random [`Uint`] generation helpers.

use rand::RngCore;

use crate::uint::Uint;

/// Generates a uniformly random value with *at most* `bits` bits.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let v = refstate_bigint::random_bits(&mut rng, 128);
/// assert!(v.bit_len() <= 128);
/// ```
pub fn random_bits(rng: &mut dyn RngCore, bits: usize) -> Uint {
    if bits == 0 {
        return Uint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut raw: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    let top_bits = bits % 64;
    if top_bits != 0 {
        let mask = (1u64 << top_bits) - 1;
        let last = raw.len() - 1;
        raw[last] &= mask;
    }
    Uint::from_limbs(raw)
}

/// Generates a uniformly random value with *exactly* `bits` bits, i.e. the
/// top bit is always set.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn random_exact_bits(rng: &mut dyn RngCore, bits: usize) -> Uint {
    assert!(bits > 0, "cannot generate an exact zero-bit value");
    let below = random_bits(rng, bits - 1);
    let top = Uint::one().shl_impl(bits - 1);
    &top + &below
}

/// Generates a uniformly random value in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below(rng: &mut dyn RngCore, bound: &Uint) -> Uint {
    assert!(!bound.is_zero(), "random_below bound must be positive");
    let bits = bound.bit_len();
    loop {
        let candidate = random_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Generates a uniformly random value in `[1, bound)`.
///
/// # Panics
///
/// Panics if `bound <= 1`.
pub fn random_in_unit_range(rng: &mut dyn RngCore, bound: &Uint) -> Uint {
    assert!(bound > &Uint::one(), "range [1, bound) must be non-empty");
    loop {
        let candidate = random_below(rng, bound);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_respects_bound() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [1usize, 7, 63, 64, 65, 100, 512] {
            for _ in 0..20 {
                let v = random_bits(&mut rng, bits);
                assert!(v.bit_len() <= bits, "bits={bits} got {}", v.bit_len());
            }
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_exact_bits_sets_top_bit() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 2, 64, 65, 160, 512] {
            for _ in 0..10 {
                let v = random_exact_bits(&mut rng, bits);
                assert_eq!(v.bit_len(), bits);
            }
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(99);
        let bound = Uint::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
        // bound = 1 always yields zero
        assert!(random_below(&mut rng, &Uint::one()).is_zero());
    }

    #[test]
    fn random_in_unit_range_nonzero() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = Uint::from(3u64);
        for _ in 0..50 {
            let v = random_in_unit_range(&mut rng, &bound);
            assert!(!v.is_zero() && v < bound);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        assert_eq!(random_bits(&mut a, 256), random_bits(&mut b, 256));
    }
}
