//! The [`Uint`] type: representation, construction, conversion, formatting.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseUintError;

/// An arbitrary-precision unsigned integer.
///
/// The value is stored as little-endian `u64` limbs with the invariant that
/// the most significant limb is non-zero (the canonical representation of
/// zero is the empty limb vector). All public constructors and operations
/// preserve this invariant.
///
/// # Examples
///
/// ```
/// use refstate_bigint::Uint;
///
/// let a = Uint::from_hex("ffffffffffffffff").unwrap();
/// let b = Uint::from(1u64);
/// assert_eq!((&a + &b).to_hex(), "10000000000000000");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Uint {
    limbs: Vec<u64>,
}

impl Uint {
    /// The number of bits per limb.
    pub(crate) const LIMB_BITS: usize = 64;

    /// Returns the canonical zero value.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// assert!(Uint::zero().is_zero());
    /// ```
    pub const fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// Returns the value one.
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Creates a `Uint` from raw little-endian limbs, normalizing trailing
    /// zero limbs away.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Uint { limbs }
    }

    /// Exposes the little-endian limbs (no trailing zeros).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the value is even. Zero counts as even.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// assert!(Uint::from(42u64).is_even());
    /// assert!(!Uint::from(7u64).is_even());
    /// ```
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns the number of significant bits (`0` for zero).
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// assert_eq!(Uint::from(255u64).bit_len(), 8);
    /// assert_eq!(Uint::zero().bit_len(), 0);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * Self::LIMB_BITS + (64 - top.leading_zeros() as usize)
            }
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the top bit.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / Self::LIMB_BITS;
        let off = i % Self::LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Interprets big-endian bytes as an unsigned integer.
    ///
    /// Leading zero bytes are permitted and ignored.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// assert_eq!(Uint::from_be_bytes(&[0x01, 0x00]), Uint::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0usize;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        Uint::from_limbs(limbs)
    }

    /// Returns the minimal big-endian byte representation.
    ///
    /// Zero encodes as a single `0x00` byte so the output is never empty.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Returns the big-endian byte representation left-padded with zeros to
    /// exactly `len` bytes, or `None` if the value does not fit.
    ///
    /// This is the encoding used for fixed-width signature components.
    ///
    /// ```
    /// use refstate_bigint::Uint;
    /// let b = Uint::from(513u64).to_be_bytes_padded(4).unwrap();
    /// assert_eq!(b, vec![0, 0, 2, 1]);
    /// ```
    pub fn to_be_bytes_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_be_bytes();
        let raw = if raw == [0] { Vec::new() } else { raw };
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parses a (case-insensitive) hexadecimal string, with or without a
    /// leading `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUintError`] if the string is empty or contains a
    /// non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, ParseUintError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let s: String = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .collect();
        if s.is_empty() {
            return Err(ParseUintError::empty());
        }
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut pos = bytes.len();
        while pos > 0 {
            let start = pos.saturating_sub(16);
            let chunk = std::str::from_utf8(&bytes[start..pos]).expect("ascii hex");
            let limb =
                u64::from_str_radix(chunk, 16).map_err(|_| ParseUintError::invalid_digit())?;
            limbs.push(limb);
            pos = start;
        }
        Ok(Uint::from_limbs(limbs))
    }

    /// Returns the lowercase hexadecimal representation without a prefix.
    ///
    /// Zero renders as `"0"`.
    pub fn to_hex(&self) -> String {
        format!("{self:x}")
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUintError`] if the string is empty or contains a
    /// non-decimal character.
    pub fn from_decimal(s: &str) -> Result<Self, ParseUintError> {
        if s.is_empty() {
            return Err(ParseUintError::empty());
        }
        let mut acc = Uint::zero();
        // Process in chunks of up to 19 digits (10^19 < 2^64).
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let take = (bytes.len() - pos).min(19);
            let chunk = std::str::from_utf8(&bytes[pos..pos + take]).expect("ascii decimal");
            let val: u64 = chunk.parse().map_err(|_| ParseUintError::invalid_digit())?;
            let scale = 10u64
                .pow(take as u32 - 1) // avoid overflow for take == 19? 10^18 fits
                .checked_mul(10)
                .unwrap_or(10_000_000_000_000_000_000);
            acc = &(&acc * &Uint::from(scale)) + &Uint::from(val);
            pos += take;
        }
        Ok(acc)
    }

    /// Returns the number of limbs (zero for the value zero).
    pub(crate) fn limb_len(&self) -> usize {
        self.limbs.len()
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Uint::zero()
        } else {
            Uint { limbs: vec![v] }
        }
    }
}

impl From<u32> for Uint {
    fn from(v: u32) -> Self {
        Uint::from(v as u64)
    }
}

impl From<u128> for Uint {
    fn from(v: u128) -> Self {
        Uint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl TryFrom<&Uint> for u64 {
    type Error = ParseUintError;

    fn try_from(v: &Uint) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0]),
            _ => Err(ParseUintError::overflow()),
        }
    }
}

impl TryFrom<&Uint> for u128 {
    type Error = ParseUintError;

    fn try_from(v: &Uint) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0] as u128),
            2 => Ok(v.limbs[0] as u128 | (v.limbs[1] as u128) << 64),
            _ => Err(ParseUintError::overflow()),
        }
    }
}

impl FromStr for Uint {
    type Err = ParseUintError;

    /// Parses decimal by default; a `0x` prefix selects hexadecimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            Uint::from_hex(s)
        } else {
            Uint::from_decimal(s)
        }
    }
}

impl fmt::Display for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeatedly divide by 10^19 and emit chunks.
        let chunk_base = Uint::from(10_000_000_000_000_000_000u64);
        let mut rest = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.divrem(&chunk_base);
            chunks.push(u64::try_from(&r).expect("remainder below 10^19"));
            rest = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:019}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x{self:x})")
    }
}

impl fmt::LowerHex for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::UpperHex for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        f.write_str(&lower.to_uppercase())
    }
}

impl fmt::Binary for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:b}"));
            } else {
                s.push_str(&format!("{limb:064b}"));
            }
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical() {
        assert!(Uint::zero().is_zero());
        assert_eq!(Uint::zero(), Uint::from(0u64));
        assert_eq!(Uint::from_limbs(vec![0, 0, 0]), Uint::zero());
        assert_eq!(Uint::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_and_bit() {
        let v = Uint::from(0b1011u64);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64));
        let big = Uint::from_limbs(vec![0, 1]);
        assert_eq!(big.bit_len(), 65);
        assert!(big.bit(64));
    }

    #[test]
    fn byte_round_trip() {
        let v = Uint::from_hex("0123456789abcdef00ff").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(Uint::from_be_bytes(&bytes), v);
        assert_eq!(bytes[0], 0x01);
    }

    #[test]
    fn byte_padding() {
        let v = Uint::from(0x0102u64);
        assert_eq!(v.to_be_bytes_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert_eq!(v.to_be_bytes_padded(2).unwrap(), vec![1, 2]);
        assert!(v.to_be_bytes_padded(1).is_none());
        assert_eq!(Uint::zero().to_be_bytes_padded(3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn zero_bytes_never_empty() {
        assert_eq!(Uint::zero().to_be_bytes(), vec![0]);
        assert_eq!(Uint::from_be_bytes(&[]), Uint::zero());
        assert_eq!(Uint::from_be_bytes(&[0, 0]), Uint::zero());
    }

    #[test]
    fn hex_round_trip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = Uint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s);
        }
        assert!(Uint::from_hex("").is_err());
        assert!(Uint::from_hex("xyz").is_err());
        assert_eq!(Uint::from_hex("0x10").unwrap(), Uint::from(16u64));
        assert_eq!(Uint::from_hex("00ff").unwrap(), Uint::from(255u64));
        assert_eq!(
            Uint::from_hex("DE AD_be ef").unwrap(),
            Uint::from(0xdeadbeefu64)
        );
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v = Uint::from_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(Uint::from_decimal("").is_err());
        assert!(Uint::from_decimal("12a").is_err());
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        assert_eq!("0x10".parse::<Uint>().unwrap(), Uint::from(16u64));
        assert_eq!("10".parse::<Uint>().unwrap(), Uint::from(10u64));
    }

    #[test]
    fn u128_round_trip() {
        let v = Uint::from(u128::MAX);
        assert_eq!(u128::try_from(&v).unwrap(), u128::MAX);
        let big = &v + &Uint::one();
        assert!(u128::try_from(&big).is_err());
        assert!(u64::try_from(&v).is_err());
        assert_eq!(u64::try_from(&Uint::from(7u64)).unwrap(), 7);
    }

    #[test]
    fn formatting() {
        let v = Uint::from(255u64);
        assert_eq!(format!("{v:x}"), "ff");
        assert_eq!(format!("{v:X}"), "FF");
        assert_eq!(format!("{v:b}"), "11111111");
        assert_eq!(format!("{v}"), "255");
        assert_eq!(format!("{v:?}"), "Uint(0xff)");
        assert_eq!(format!("{:x}", Uint::zero()), "0");
        assert_eq!(format!("{:b}", Uint::zero()), "0");
    }

    #[test]
    fn display_large_multi_chunk() {
        // 2^128 = 340282366920938463463374607431768211456 (39 digits, needs chunking)
        let v = Uint::from_hex("100000000000000000000000000000000").unwrap();
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn is_even() {
        assert!(Uint::zero().is_even());
        assert!(Uint::from(2u64).is_even());
        assert!(!Uint::one().is_even());
    }
}
