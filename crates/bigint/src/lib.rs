//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for the `refstate` workspace: the
//! reference-state protocols of Hohl (2000) authenticate agent states with
//! DSA signatures, and DSA needs multi-precision modular arithmetic. No
//! big-integer crate is available in the sanctioned offline dependency set,
//! so this crate implements one from scratch:
//!
//! * [`Uint`] — a little-endian `u64`-limb unsigned integer with schoolbook
//!   multiplication and Knuth Algorithm D division,
//! * modular arithmetic ([`Uint::pow_mod`], [`Uint::inv_mod`],
//!   [`Uint::mul_mod`]),
//! * a Montgomery reduction context ([`Montgomery`]) with sliding-window
//!   exponentiation, and a fixed-base precomputed-table exponentiator
//!   ([`FixedBase`]) for bases that recur across many exponentiations,
//! * probabilistic primality testing and prime generation
//!   ([`is_probable_prime`], [`gen_prime`]).
//!
//! All operations are portable Rust (no assembly, no SIMD). The schoolbook
//! [`Uint`] operations favour clarity and serve as the reference oracle;
//! the [`Montgomery`]/[`FixedBase`] layer is the performance path the DSA
//! hot loops run on, property-tested to agree with the schoolbook results
//! on every input.
//!
//! # Examples
//!
//! ```
//! use refstate_bigint::Uint;
//!
//! let p = Uint::from(101u64);
//! let g = Uint::from(7u64);
//! let x = Uint::from(13u64);
//! let y = g.pow_mod(&x, &p);
//! assert_eq!(y, Uint::from(75u64)); // 7^13 mod 101
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod div;
mod error;
mod modular;
mod montgomery;
mod prime;
mod random;
mod signed;
mod uint;
mod window;

pub use arith::KARATSUBA_THRESHOLD;
pub use error::ParseUintError;
pub use montgomery::{MontInt, Montgomery};
pub use prime::{gen_prime, is_probable_prime, SMALL_PRIMES};
pub use random::{random_below, random_bits, random_exact_bits, random_in_unit_range};
pub use uint::Uint;
pub use window::FixedBase;
