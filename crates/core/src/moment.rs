//! The moment-of-checking axis (§3.5).

use std::fmt;

/// When reference-state checks run.
///
/// The paper argues (§3.5) that intervals smaller than a session prove
/// nothing — a host can run a correct shadow copy purely to produce checking
/// output — so a session is the finest useful granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckMoment {
    /// Check after every execution session, as the first action on the
    /// next host (`checkAfterSession` in the paper's framework). Catches
    /// attackers before the compromised agent does more work.
    #[default]
    AfterSession,
    /// Check once, after the agent has finished its task
    /// (`checkAfterTask`), typically at the home host. Cheaper, but a
    /// compromised agent keeps running until the end, and the route plus
    /// per-session reference data must be retained to identify the
    /// attacker.
    AfterTask,
}

impl CheckMoment {
    /// Whether this moment requires retaining per-session reference data
    /// for the whole journey (true for [`CheckMoment::AfterTask`], per
    /// §3.5: "the used reference data has to be stored for every of the
    /// execution sessions").
    pub fn retains_journey_data(&self) -> bool {
        matches!(self, CheckMoment::AfterTask)
    }
}

impl fmt::Display for CheckMoment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckMoment::AfterSession => f.write_str("after every session"),
            CheckMoment::AfterTask => f.write_str("after the task"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_after_session() {
        assert_eq!(CheckMoment::default(), CheckMoment::AfterSession);
    }

    #[test]
    fn retention_requirement() {
        assert!(!CheckMoment::AfterSession.retains_journey_data());
        assert!(CheckMoment::AfterTask.retains_journey_data());
    }

    #[test]
    fn display() {
        assert_eq!(CheckMoment::AfterSession.to_string(), "after every session");
        assert_eq!(CheckMoment::AfterTask.to_string(), "after the task");
    }
}
