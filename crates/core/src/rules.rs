//! A non-Turing-complete rule language for state appraisal.
//!
//! The paper's "rules" checking algorithm (§3.5) covers "simple (i.e. non
//! turing complete) rule mechanisms that allow to check e.g. postconditions
//! in form of first order logic (e.g. `moneySpent + moneyRest =
//! moneyInitial`)". This module is exactly that: arithmetic/comparison
//! expression trees over the initial and resulting state, with no loops,
//! recursion, or unbounded iteration — evaluation cost is linear in the
//! rule size by construction.

use std::fmt;

use refstate_vm::{DataState, Value};

/// An arithmetic expression over agent states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A variable of the *resulting* state.
    Var(String),
    /// A variable of the *initial* state.
    InitialVar(String),
    /// Sum of two int expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two int expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two int expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Length of a list or string expression.
    Len(Box<Expr>),
}

impl Expr {
    /// Convenience: an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Convenience: a resulting-state variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: an initial-state variable.
    pub fn initial(name: impl Into<String>) -> Expr {
        Expr::InitialVar(name.into())
    }

    /// Evaluates against the two states.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] for missing variables or type mismatches.
    pub fn eval(&self, initial: &DataState, resulting: &DataState) -> Result<Value, RuleError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => {
                resulting
                    .get(name)
                    .cloned()
                    .ok_or_else(|| RuleError::UnknownVariable {
                        name: name.clone(),
                        scope: "result",
                    })
            }
            Expr::InitialVar(name) => {
                initial
                    .get(name)
                    .cloned()
                    .ok_or_else(|| RuleError::UnknownVariable {
                        name: name.clone(),
                        scope: "initial",
                    })
            }
            Expr::Add(a, b) => Self::int_op(a, b, initial, resulting, i64::wrapping_add),
            Expr::Sub(a, b) => Self::int_op(a, b, initial, resulting, i64::wrapping_sub),
            Expr::Mul(a, b) => Self::int_op(a, b, initial, resulting, i64::wrapping_mul),
            Expr::Len(e) => match e.eval(initial, resulting)? {
                Value::List(items) => Ok(Value::Int(items.len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(RuleError::TypeMismatch {
                    expected: "list or str",
                    found: other.type_name(),
                }),
            },
        }
    }

    fn int_op(
        a: &Expr,
        b: &Expr,
        initial: &DataState,
        resulting: &DataState,
        f: impl FnOnce(i64, i64) -> i64,
    ) -> Result<Value, RuleError> {
        let av = a.eval(initial, resulting)?;
        let bv = b.eval(initial, resulting)?;
        match (av.as_int(), bv.as_int()) {
            (Some(x), Some(y)) => Ok(Value::Int(f(x, y))),
            _ => Err(RuleError::TypeMismatch {
                expected: "int",
                found: if av.as_int().is_none() {
                    av.type_name()
                } else {
                    bv.type_name()
                },
            }),
        }
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (ints and strings).
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A first-order predicate over agent states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Comparison of two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// The resulting state defines this variable.
    Defined(String),
    /// Always true (neutral element).
    True,
}

impl Pred {
    /// Convenience constructor for comparisons.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Pred {
        Pred::Cmp(op, a, b)
    }

    /// `a && b`.
    pub fn and(a: Pred, b: Pred) -> Pred {
        Pred::And(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: Pred, b: Pred) -> Pred {
        Pred::Or(Box::new(a), Box::new(b))
    }

    /// `!a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Pred) -> Pred {
        Pred::Not(Box::new(a))
    }

    /// Evaluates against the two states.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] for missing variables, type mismatches, or
    /// incomparable values.
    pub fn eval(&self, initial: &DataState, resulting: &DataState) -> Result<bool, RuleError> {
        match self {
            Pred::True => Ok(true),
            Pred::Defined(name) => Ok(resulting.contains(name)),
            Pred::Not(p) => Ok(!p.eval(initial, resulting)?),
            Pred::And(a, b) => Ok(a.eval(initial, resulting)? && b.eval(initial, resulting)?),
            Pred::Or(a, b) => Ok(a.eval(initial, resulting)? || b.eval(initial, resulting)?),
            Pred::Cmp(op, ea, eb) => {
                let a = ea.eval(initial, resulting)?;
                let b = eb.eval(initial, resulting)?;
                match op {
                    CmpOp::Eq => return Ok(a == b),
                    CmpOp::Ne => return Ok(a != b),
                    _ => {}
                }
                let ord = match (&a, &b) {
                    (Value::Int(x), Value::Int(y)) => x.cmp(y),
                    (Value::Str(x), Value::Str(y)) => x.cmp(y),
                    _ => {
                        return Err(RuleError::TypeMismatch {
                            expected: "comparable pair",
                            found: a.type_name(),
                        })
                    }
                };
                Ok(match op {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
                })
            }
        }
    }
}

/// An evaluation error inside a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A referenced variable does not exist.
    UnknownVariable {
        /// The variable name.
        name: String,
        /// `"initial"` or `"result"`.
        scope: &'static str,
    },
    /// An operand had the wrong type.
    TypeMismatch {
        /// What the operator needed.
        expected: &'static str,
        /// What it got.
        found: &'static str,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::UnknownVariable { name, scope } => {
                write!(f, "unknown {scope}-state variable {name:?}")
            }
            RuleError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// A named collection of rules — the reference data "structured as a set of
/// rules … formulated by the programmer who stated relations between
/// certain elements of the state" (§3.1).
///
/// # Examples
///
/// The paper's canonical example, `moneySpent + moneyRest = moneyInitial`:
///
/// ```
/// use refstate_core::{CmpOp, Expr, Pred, RuleSet};
/// use refstate_vm::{DataState, Value};
///
/// let rules = RuleSet::new().rule(
///     "money-conserved",
///     Pred::cmp(
///         CmpOp::Eq,
///         Expr::Add(Box::new(Expr::var("moneySpent")), Box::new(Expr::var("moneyRest"))),
///         Expr::initial("money"),
///     ),
/// );
/// let mut initial = DataState::new();
/// initial.set("money", Value::Int(100));
/// let mut result = DataState::new();
/// result.set("moneySpent", Value::Int(30));
/// result.set("moneyRest", Value::Int(70));
/// assert!(rules.evaluate(&initial, &result).passed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<(String, Pred)>,
}

/// The result of evaluating a rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleReport {
    /// Rules that failed or errored: `(name, explanation)`.
    pub violations: Vec<(String, String)>,
    /// Total rules evaluated.
    pub evaluated: usize,
}

impl RuleReport {
    /// Returns `true` if every rule held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl RuleSet {
    /// An empty rule set (which passes trivially).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named rule.
    pub fn rule(mut self, name: impl Into<String>, pred: Pred) -> Self {
        self.rules.push((name.into(), pred));
        self
    }

    /// The number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if no rules are defined.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule; evaluation errors count as violations (a rule
    /// that cannot be evaluated cannot vouch for the state).
    pub fn evaluate(&self, initial: &DataState, resulting: &DataState) -> RuleReport {
        let mut violations = Vec::new();
        for (name, pred) in &self.rules {
            match pred.eval(initial, resulting) {
                Ok(true) => {}
                Ok(false) => violations.push((name.clone(), "predicate is false".to_owned())),
                Err(e) => violations.push((name.clone(), e.to_string())),
            }
        }
        RuleReport {
            violations,
            evaluated: self.rules.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states() -> (DataState, DataState) {
        let mut initial = DataState::new();
        initial.set("money", Value::Int(100));
        let mut result = DataState::new();
        result.set("moneySpent", Value::Int(30));
        result.set("moneyRest", Value::Int(70));
        result.set("name", Value::Str("alice".into()));
        result.set("items", Value::List(vec![Value::Int(1), Value::Int(2)]));
        (initial, result)
    }

    #[test]
    fn money_conservation_example() {
        let (initial, result) = states();
        let pred = Pred::cmp(
            CmpOp::Eq,
            Expr::Add(
                Box::new(Expr::var("moneySpent")),
                Box::new(Expr::var("moneyRest")),
            ),
            Expr::initial("money"),
        );
        assert!(pred.eval(&initial, &result).unwrap());

        // A host that steals 10 units breaks the invariant.
        let mut tampered = result.clone();
        tampered.set("moneyRest", Value::Int(60));
        assert!(!pred.eval(&initial, &tampered).unwrap());
    }

    #[test]
    fn arithmetic_expressions() {
        let (initial, result) = states();
        let e = Expr::Mul(
            Box::new(Expr::Sub(Box::new(Expr::int(10)), Box::new(Expr::int(4)))),
            Box::new(Expr::int(7)),
        );
        assert_eq!(e.eval(&initial, &result).unwrap(), Value::Int(42));
    }

    #[test]
    fn len_on_lists_and_strings() {
        let (initial, result) = states();
        assert_eq!(
            Expr::Len(Box::new(Expr::var("items")))
                .eval(&initial, &result)
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            Expr::Len(Box::new(Expr::var("name")))
                .eval(&initial, &result)
                .unwrap(),
            Value::Int(5)
        );
        assert!(Expr::Len(Box::new(Expr::int(1)))
            .eval(&initial, &result)
            .is_err());
    }

    #[test]
    fn logic_connectives() {
        let (initial, result) = states();
        let t = Pred::cmp(CmpOp::Gt, Expr::var("moneyRest"), Expr::int(0));
        let f = Pred::cmp(CmpOp::Lt, Expr::var("moneyRest"), Expr::int(0));
        assert!(Pred::and(t.clone(), Pred::not(f.clone()))
            .eval(&initial, &result)
            .unwrap());
        assert!(Pred::or(f.clone(), t.clone())
            .eval(&initial, &result)
            .unwrap());
        assert!(!Pred::and(t, f).eval(&initial, &result).unwrap());
        assert!(Pred::True.eval(&initial, &result).unwrap());
    }

    #[test]
    fn defined_predicate() {
        let (initial, result) = states();
        assert!(Pred::Defined("moneyRest".into())
            .eval(&initial, &result)
            .unwrap());
        assert!(!Pred::Defined("ghost".into())
            .eval(&initial, &result)
            .unwrap());
    }

    #[test]
    fn string_comparison() {
        let (initial, result) = states();
        let p = Pred::cmp(
            CmpOp::Lt,
            Expr::var("name"),
            Expr::Const(Value::Str("bob".into())),
        );
        assert!(p.eval(&initial, &result).unwrap());
    }

    #[test]
    fn errors_reported() {
        let (initial, result) = states();
        let missing = Expr::var("ghost").eval(&initial, &result).unwrap_err();
        assert!(missing.to_string().contains("ghost"));
        let missing_init = Expr::initial("ghost").eval(&initial, &result).unwrap_err();
        assert!(missing_init.to_string().contains("initial"));
        let type_err = Pred::cmp(CmpOp::Lt, Expr::var("items"), Expr::int(1))
            .eval(&initial, &result)
            .unwrap_err();
        assert!(type_err.to_string().contains("type mismatch"));
    }

    #[test]
    fn rule_set_reports_violations() {
        let (initial, result) = states();
        let rules = RuleSet::new()
            .rule(
                "ok",
                Pred::cmp(CmpOp::Gt, Expr::var("moneyRest"), Expr::int(0)),
            )
            .rule(
                "fails",
                Pred::cmp(CmpOp::Gt, Expr::var("moneyRest"), Expr::int(1000)),
            )
            .rule(
                "errors",
                Pred::cmp(CmpOp::Eq, Expr::var("ghost"), Expr::int(0)),
            );
        let report = rules.evaluate(&initial, &result);
        assert!(!report.passed());
        assert_eq!(report.evaluated, 3);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.violations[0].0, "fails");
        assert!(report.violations[1].1.contains("ghost"));
    }

    #[test]
    fn empty_rule_set_passes() {
        let (initial, result) = states();
        assert!(RuleSet::new().evaluate(&initial, &result).passed());
        assert!(RuleSet::new().is_empty());
        assert_eq!(RuleSet::new().rule("r", Pred::True).len(), 1);
    }

    #[test]
    fn eq_ne_work_on_any_type() {
        let (initial, result) = states();
        let p = Pred::cmp(
            CmpOp::Eq,
            Expr::var("items"),
            Expr::Const(Value::List(vec![Value::Int(1), Value::Int(2)])),
        );
        assert!(p.eval(&initial, &result).unwrap());
        let p = Pred::cmp(
            CmpOp::Ne,
            Expr::var("items"),
            Expr::Const(Value::Bool(true)),
        );
        assert!(p.eval(&initial, &result).unwrap());
    }
}
