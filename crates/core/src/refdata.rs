//! The reference-data axis: what a checking algorithm may consult.
//!
//! The paper's framework declares data needs through marker interfaces
//! (`InitialStateRequester`, `ResultingStateRequester`, `InputRequester`,
//! `ExecutionLogRequester`, `ResourceRequester`, Fig. 4) and the host
//! provides matching getters (`getInitialState()` …, Fig. 5). In Rust the
//! request side is a value — [`ReferenceDataRequest`] — returned by
//! [`crate::CheckingAlgorithm::required_data`], and the host side is
//! [`HostFacilities`], which assembles a [`ReferenceData`] container from a
//! session record.

use std::fmt;

use refstate_platform::SessionRecord;
use refstate_vm::{DataState, InputLog, Trace, Value};

/// One kind of reference data (the paper's five requester interfaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReferenceDataKind {
    /// The agent state at session start (`InitalStateRequester`).
    InitialState,
    /// The agent state at session end (`ResultingStateRequester`).
    ResultingState,
    /// The complete session input (`InputRequester`).
    Input,
    /// The execution log / trace (`ExecutionLogRequester`).
    ExecutionLog,
    /// Replicated host resources appended to the agent
    /// (`ResourceRequester`).
    Resources,
}

impl ReferenceDataKind {
    /// All five kinds.
    pub const ALL: [ReferenceDataKind; 5] = [
        ReferenceDataKind::InitialState,
        ReferenceDataKind::ResultingState,
        ReferenceDataKind::Input,
        ReferenceDataKind::ExecutionLog,
        ReferenceDataKind::Resources,
    ];

    /// The paper's interface name for this kind.
    pub fn requester_interface(&self) -> &'static str {
        match self {
            ReferenceDataKind::InitialState => "InitalStateRequester",
            ReferenceDataKind::ResultingState => "ResultingStateRequester",
            ReferenceDataKind::Input => "InputRequester",
            ReferenceDataKind::ExecutionLog => "ExecutionLogRequester",
            ReferenceDataKind::Resources => "ResourceRequester",
        }
    }

    /// The paper's host-side getter name for this kind.
    pub fn host_getter(&self) -> &'static str {
        match self {
            ReferenceDataKind::InitialState => "getInitalState",
            ReferenceDataKind::ResultingState => "getResultingState",
            ReferenceDataKind::Input => "getInput",
            ReferenceDataKind::ExecutionLog => "getExecutionLog",
            ReferenceDataKind::Resources => "getResource",
        }
    }
}

impl fmt::Display for ReferenceDataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReferenceDataKind::InitialState => "initial state",
            ReferenceDataKind::ResultingState => "resulting state",
            ReferenceDataKind::Input => "input",
            ReferenceDataKind::ExecutionLog => "execution log",
            ReferenceDataKind::Resources => "resources",
        };
        f.write_str(name)
    }
}

/// A set of requested reference-data kinds.
///
/// # Examples
///
/// ```
/// use refstate_core::{ReferenceDataKind, ReferenceDataRequest};
///
/// let req = ReferenceDataRequest::new()
///     .with(ReferenceDataKind::InitialState)
///     .with(ReferenceDataKind::Input);
/// assert!(req.contains(ReferenceDataKind::Input));
/// assert!(!req.contains(ReferenceDataKind::Resources));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReferenceDataRequest {
    bits: u8,
}

impl ReferenceDataRequest {
    /// The empty request.
    pub fn new() -> Self {
        Self::default()
    }

    /// The request containing every kind.
    pub fn all() -> Self {
        ReferenceDataKind::ALL
            .iter()
            .fold(Self::new(), |req, &k| req.with(k))
    }

    fn bit(kind: ReferenceDataKind) -> u8 {
        match kind {
            ReferenceDataKind::InitialState => 1 << 0,
            ReferenceDataKind::ResultingState => 1 << 1,
            ReferenceDataKind::Input => 1 << 2,
            ReferenceDataKind::ExecutionLog => 1 << 3,
            ReferenceDataKind::Resources => 1 << 4,
        }
    }

    /// Adds a kind.
    pub fn with(mut self, kind: ReferenceDataKind) -> Self {
        self.bits |= Self::bit(kind);
        self
    }

    /// Tests membership.
    pub fn contains(&self, kind: ReferenceDataKind) -> bool {
        self.bits & Self::bit(kind) != 0
    }

    /// Iterates over the requested kinds.
    pub fn iter(&self) -> impl Iterator<Item = ReferenceDataKind> + '_ {
        ReferenceDataKind::ALL
            .into_iter()
            .filter(|&k| self.contains(k))
    }

    /// Union of two requests.
    pub fn union(&self, other: &Self) -> Self {
        ReferenceDataRequest {
            bits: self.bits | other.bits,
        }
    }

    /// Number of requested kinds.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if nothing is requested.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }
}

/// The reference data actually supplied to a check.
///
/// Fields are optional: a check receives only what it requested (and what
/// the transport carried). [`crate::CheckingAlgorithm`] implementations
/// report [`crate::FailureReason::MissingData`] when a required piece is
/// absent.
#[derive(Debug, Clone, Default)]
pub struct ReferenceData {
    /// The state the checked session started from.
    pub initial_state: Option<DataState>,
    /// The state the checked host claims the session produced.
    pub resulting_state: Option<DataState>,
    /// The recorded session input.
    pub input: Option<InputLog>,
    /// The recorded execution trace.
    pub execution_log: Option<Trace>,
    /// Replicated resources appended to the agent.
    pub resources: Option<Vec<Value>>,
    /// Where the checked session claims the agent went next (`None` for a
    /// halted agent). Carried alongside the classic five kinds so
    /// re-execution can also validate the migration decision.
    pub claimed_next: Option<Option<String>>,
}

impl ReferenceData {
    /// Which kinds are present.
    pub fn available(&self) -> ReferenceDataRequest {
        let mut req = ReferenceDataRequest::new();
        if self.initial_state.is_some() {
            req = req.with(ReferenceDataKind::InitialState);
        }
        if self.resulting_state.is_some() {
            req = req.with(ReferenceDataKind::ResultingState);
        }
        if self.input.is_some() {
            req = req.with(ReferenceDataKind::Input);
        }
        if self.execution_log.is_some() {
            req = req.with(ReferenceDataKind::ExecutionLog);
        }
        if self.resources.is_some() {
            req = req.with(ReferenceDataKind::Resources);
        }
        req
    }

    /// The first requested kind that is missing, if any.
    pub fn first_missing(&self, request: &ReferenceDataRequest) -> Option<ReferenceDataKind> {
        request.iter().find(|&k| !self.available().contains(k))
    }
}

/// The host-side provider: assembles [`ReferenceData`] from a session
/// record, honouring a request (the Fig. 5 getters).
#[derive(Debug)]
pub struct HostFacilities<'a> {
    record: &'a SessionRecord,
    resources: Option<&'a [Value]>,
}

impl<'a> HostFacilities<'a> {
    /// Wraps a session record.
    pub fn new(record: &'a SessionRecord) -> Self {
        HostFacilities {
            record,
            resources: None,
        }
    }

    /// Attaches replicated resources.
    pub fn with_resources(mut self, resources: &'a [Value]) -> Self {
        self.resources = Some(resources);
        self
    }

    /// `getInitalState()` (paper Fig. 5 — typo preserved in the name map).
    pub fn initial_state(&self) -> &DataState {
        &self.record.initial_state
    }

    /// `getResultingState()`.
    pub fn resulting_state(&self) -> &DataState {
        &self.record.outcome.state
    }

    /// `getInput()`.
    pub fn input(&self) -> &InputLog {
        &self.record.outcome.input_log
    }

    /// `getExecutionLog()`.
    pub fn execution_log(&self) -> &Trace {
        &self.record.outcome.trace
    }

    /// Builds the reference-data container for a request.
    pub fn provide(&self, request: &ReferenceDataRequest) -> ReferenceData {
        let claimed_next = match &self.record.outcome.end {
            refstate_vm::SessionEnd::Migrate(h) => Some(Some(h.clone())),
            refstate_vm::SessionEnd::Halt => Some(None),
        };
        ReferenceData {
            initial_state: request
                .contains(ReferenceDataKind::InitialState)
                .then(|| self.initial_state().clone()),
            resulting_state: request
                .contains(ReferenceDataKind::ResultingState)
                .then(|| self.resulting_state().clone()),
            input: request
                .contains(ReferenceDataKind::Input)
                .then(|| self.input().clone()),
            execution_log: request
                .contains(ReferenceDataKind::ExecutionLog)
                .then(|| self.execution_log().clone()),
            resources: request
                .contains(ReferenceDataKind::Resources)
                .then(|| self.resources.map(|r| r.to_vec()).unwrap_or_default()),
            claimed_next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_set_operations() {
        let a = ReferenceDataRequest::new().with(ReferenceDataKind::InitialState);
        let b = ReferenceDataRequest::new().with(ReferenceDataKind::Input);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.contains(ReferenceDataKind::InitialState));
        assert!(u.contains(ReferenceDataKind::Input));
        assert!(!u.contains(ReferenceDataKind::Resources));
        assert!(ReferenceDataRequest::new().is_empty());
        assert_eq!(ReferenceDataRequest::all().len(), 5);
    }

    #[test]
    fn request_iter_in_declaration_order() {
        let kinds: Vec<ReferenceDataKind> = ReferenceDataRequest::all().iter().collect();
        assert_eq!(kinds, ReferenceDataKind::ALL.to_vec());
    }

    #[test]
    fn paper_interface_names() {
        assert_eq!(
            ReferenceDataKind::InitialState.requester_interface(),
            "InitalStateRequester"
        );
        assert_eq!(ReferenceDataKind::Input.host_getter(), "getInput");
        assert_eq!(ReferenceDataKind::Resources.host_getter(), "getResource");
    }

    #[test]
    fn reference_data_availability() {
        let mut data = ReferenceData::default();
        assert!(data.available().is_empty());
        data.initial_state = Some(DataState::new());
        data.input = Some(InputLog::new());
        let avail = data.available();
        assert!(avail.contains(ReferenceDataKind::InitialState));
        assert!(avail.contains(ReferenceDataKind::Input));
        assert!(!avail.contains(ReferenceDataKind::ResultingState));

        let need = ReferenceDataRequest::new()
            .with(ReferenceDataKind::Input)
            .with(ReferenceDataKind::ResultingState);
        assert_eq!(
            data.first_missing(&need),
            Some(ReferenceDataKind::ResultingState)
        );
        let ok = ReferenceDataRequest::new().with(ReferenceDataKind::Input);
        assert_eq!(data.first_missing(&ok), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ReferenceDataKind::ExecutionLog.to_string(), "execution log");
    }
}
