//! The example mechanism (§5.1 / Hohl TR 09/99): every untrusted execution
//! session is checked *by the next host*, immediately, with signatures and
//! secure hashes authenticating every claim.
//!
//! Protocol sketch, for the migration of agent `A` from host `H_i` to
//! `H_{i+1}`:
//!
//! 1. `H_i` finishes session `i` and builds a [`SessionCertificate`]
//!    containing the session's initial state, resulting state, recorded
//!    input, and the claimed next hop; it signs the certificate and sends
//!    it (with the agent code) to `H_{i+1}`.
//! 2. `H_{i+1}` verifies the signature, then — unless `H_i` is trusted
//!    ("trusted hosts will not attack by definition") — **re-executes**
//!    session `i` from the certificate's initial state with the recorded
//!    input, comparing resulting state and migration target.
//! 3. `H_{i+1}` signs an [`InitCommitment`] binding itself to the initial
//!    state it accepted, and sends it back to `H_i`; together with `H_i`'s
//!    own signature this dual-signs the hand-off ("initial states have to
//!    be signed by both the checking host and the checked host"), so
//!    neither side can later claim a different state was transferred.
//! 4. On mismatch, `H_{i+1}` assembles [`FraudEvidence`] carrying the
//!    *complete* states (not just hashes) plus `H_i`'s signed false claim,
//!    and the journey stops.
//!
//! Collaboration of consecutive hosts defeats the scheme (the accomplice
//! simply skips step 2) — the paper accepts this trade-off for timeliness,
//! and the driver reproduces it faithfully.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use refstate_crypto::{sha256, Digest, KeyDirectory, Signed, VerificationQueue};
use refstate_platform::{AgentId, AgentImage, Event, EventLog, Host, HostId};
use refstate_vm::{DataState, ExecConfig, InputLog, Program, SessionEnd, VmError};
use refstate_wire::{from_wire, to_wire, Decode, Encode, Reader, WireError, Writer};

use crate::checker::{
    check_sessions_with, CheckContext, CheckOutcome, FailureReason, ReExecutionChecker,
};
use crate::pipeline::VerificationPipeline;
use crate::refdata::ReferenceData;
use crate::verdict::{CheckVerdict, FraudEvidence};

/// The signed claim a host makes about one execution session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCertificate {
    /// The agent.
    pub agent: AgentId,
    /// Session sequence number (0 = first session at the start host).
    pub seq: u64,
    /// The host that executed the session.
    pub executor: HostId,
    /// The state the session started from — "the system has to transport
    /// one more agent state plus the input at a host" (§4.1).
    pub initial_state: DataState,
    /// The state the executor claims the session produced.
    pub resulting_state: DataState,
    /// The complete recorded session input.
    pub input: InputLog,
    /// Where the agent goes next (`None` = the agent halted).
    pub next: Option<HostId>,
}

impl SessionCertificate {
    /// Digest of the claimed resulting state.
    pub fn resulting_digest(&self) -> Digest {
        sha256(&to_wire(&self.resulting_state))
    }

    /// Digest of the initial state.
    pub fn initial_digest(&self) -> Digest {
        sha256(&to_wire(&self.initial_state))
    }
}

impl Encode for SessionCertificate {
    fn encode(&self, w: &mut Writer) {
        self.agent.encode(w);
        w.put_u64(self.seq);
        self.executor.encode(w);
        self.initial_state.encode(w);
        self.resulting_state.encode(w);
        self.input.encode(w);
        match &self.next {
            Some(h) => {
                w.put_u8(1);
                h.encode(w);
            }
            None => w.put_u8(0),
        }
    }
}

impl Decode for SessionCertificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SessionCertificate {
            agent: AgentId::decode(r)?,
            seq: r.take_u64()?,
            executor: HostId::decode(r)?,
            initial_state: DataState::decode(r)?,
            resulting_state: DataState::decode(r)?,
            input: InputLog::decode(r)?,
            next: match r.take_u8()? {
                0 => None,
                1 => Some(HostId::decode(r)?),
                tag => {
                    return Err(WireError::InvalidTag {
                        context: "SessionCertificate.next",
                        tag,
                    })
                }
            },
        })
    }
}

/// The receiving host's counter-signature over the initial state it
/// accepted for session `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitCommitment {
    /// The agent.
    pub agent: AgentId,
    /// The session about to run on the committing host.
    pub seq: u64,
    /// The committing (receiving) host.
    pub receiver: HostId,
    /// Digest of the accepted initial state.
    pub initial_digest: Digest,
}

impl Encode for InitCommitment {
    fn encode(&self, w: &mut Writer) {
        self.agent.encode(w);
        w.put_u64(self.seq);
        self.receiver.encode(w);
        self.initial_digest.encode(w);
    }
}

impl Decode for InitCommitment {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InitCommitment {
            agent: AgentId::decode(r)?,
            seq: r.take_u64()?,
            receiver: HostId::decode(r)?,
            initial_digest: Digest::decode(r)?,
        })
    }
}

/// Configuration of the example protocol.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Execution limits for sessions and re-executions.
    pub exec: ExecConfig,
    /// Skip re-executing sessions of trusted hosts (the paper's
    /// optimization; on by default).
    pub skip_trusted: bool,
    /// Hop budget.
    pub max_hops: usize,
    /// The verification pipeline every re-execution of this journey runs
    /// through. Defaults to a private uncached pipeline; fleet drivers
    /// install an `Arc`-shared cached one so duplicate re-executions
    /// across journeys and mechanisms collapse into cache hits.
    pub pipeline: Arc<VerificationPipeline>,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            exec: ExecConfig::default(),
            skip_trusted: true,
            max_hops: 64,
            pipeline: Arc::new(VerificationPipeline::uncached()),
        }
    }
}

/// Timing breakdown of a protected journey, mirroring the cost categories
/// of the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolStats {
    /// Time spent computing and verifying signatures ("sign & verify").
    pub sign_verify: Duration,
    /// Time spent executing agent sessions in the VM ("cycle" work lives
    /// here for the generic measurement agent).
    pub execution: Duration,
    /// Time spent re-executing sessions for checking (the protocol's
    /// "computation is roughly doubled" cost).
    pub checking: Duration,
    /// Wall-clock total from journey start to finish.
    pub total: Duration,
    /// Number of signatures created.
    pub signatures: u32,
    /// Number of signatures verified.
    pub verifications: u32,
    /// Number of re-execution *checks* performed. With a shared replay
    /// cache on [`ProtocolConfig::pipeline`], a check may be answered
    /// from the cache without a fresh VM replay — actual replay counts
    /// live in the pipeline's
    /// [`snapshot`](crate::pipeline::VerificationPipeline::snapshot).
    pub reexecutions: u32,
}

impl ProtocolStats {
    /// Everything not attributed to signatures or VM work: protocol
    /// bookkeeping, hashing, state copying — the paper's "remainder".
    pub fn remainder(&self) -> Duration {
        self.total
            .saturating_sub(self.sign_verify)
            .saturating_sub(self.execution)
            .saturating_sub(self.checking)
    }
}

/// Errors from the protocol driver (infrastructure failures; a detected
/// fraud is a *successful* outcome, not an error).
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The agent migrated to an unregistered host.
    UnknownHost {
        /// The destination.
        host: HostId,
    },
    /// Hop budget exhausted.
    TooManyHops {
        /// The budget.
        limit: usize,
    },
    /// A session failed in the VM.
    Vm(VmError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownHost { host } => write!(f, "unknown migration target {host}"),
            ProtocolError::TooManyHops { limit } => write!(f, "journey exceeded {limit} hops"),
            ProtocolError::Vm(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for ProtocolError {
    fn from(e: VmError) -> Self {
        ProtocolError::Vm(e)
    }
}

/// The result of a protocol-protected journey.
#[derive(Debug)]
pub struct ProtocolOutcome {
    /// The agent's final data state (on fraud: the state as claimed by the
    /// culprit, kept as evidence).
    pub final_state: DataState,
    /// Hosts visited in order (on fraud: up to and including the detector).
    pub path: Vec<HostId>,
    /// Every check performed.
    pub verdicts: Vec<CheckVerdict>,
    /// Evidence for the detected fraud, if any.
    pub fraud: Option<FraudEvidence<SessionCertificate>>,
    /// Dual-signing commitments collected along the way.
    pub commitments: Vec<Signed<InitCommitment>>,
    /// Timing breakdown.
    pub stats: ProtocolStats,
}

impl ProtocolOutcome {
    /// Returns `true` when no fraud was detected and all checks passed.
    pub fn clean(&self) -> bool {
        self.fraud.is_none() && self.verdicts.iter().all(CheckVerdict::passed)
    }
}

/// Whether an executor's session gets re-executed by the receiver, honouring
/// both the trusted-host optimization and collusion between consecutive
/// hosts.
fn receiver_checks(config: &ProtocolConfig, executor: &Host, receiver_id: &HostId) -> bool {
    if config.skip_trusted && executor.is_trusted() {
        return false;
    }
    // Collusion: the executor's accomplice agreed to skip the check.
    if let Some(refstate_platform::Attack::CollaborateTamper { accomplice, .. }) =
        executor.behaviour().attack()
    {
        if accomplice == receiver_id {
            return false;
        }
    }
    true
}

/// Builds the key directory (the assumed PKI) for a host set.
///
/// Fleet-scale drivers that run many journeys over host sets with pooled
/// keys build this once and pass it to
/// [`run_protected_journey_with_directory`] instead of paying the
/// registration walk per journey.
pub fn host_directory(hosts: &[Host]) -> KeyDirectory {
    let mut directory = KeyDirectory::new();
    for host in hosts.iter() {
        directory.register(host.id().as_str(), host.public_key().clone());
    }
    directory
}

/// Runs the example protocol over a host path.
///
/// # Errors
///
/// See [`ProtocolError`]. Detected fraud is reported in the outcome, not
/// as an error.
pub fn run_protected_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    config: &ProtocolConfig,
    log: &EventLog,
) -> Result<ProtocolOutcome, ProtocolError> {
    let directory = host_directory(hosts);
    run_protected_journey_with_directory(hosts, start, agent, config, log, &directory)
}

/// [`run_protected_journey`] against a caller-supplied key directory.
///
/// The batch-friendly entry point: a scenario engine reusing one
/// [`ProtocolConfig`] and one PKI across thousands of journeys calls this
/// directly. The directory must cover every host in `hosts`; missing keys
/// surface as failed signature verifications (a detected fraud), exactly
/// as a broken PKI would.
///
/// # Errors
///
/// See [`ProtocolError`]. Detected fraud is reported in the outcome, not
/// as an error.
pub fn run_protected_journey_with_directory(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    config: &ProtocolConfig,
    log: &EventLog,
    directory: &KeyDirectory,
) -> Result<ProtocolOutcome, ProtocolError> {
    let agent_id = agent.id.clone();
    let (outcome, pending) =
        run_journey_inner(hosts, start.into(), agent, config, log, directory, None)?;
    let mut journeys = vec![DeferredJourney {
        outcome,
        pending,
        agent: agent_id,
        deferred: 0,
    }];
    // Nothing was deferred to a queue in eager mode; settling runs only
    // the owner's final check (if any).
    let mut empty = VerificationQueue::new();
    settle_deferred(&mut journeys, config, log, directory, &mut empty, 1);
    Ok(journeys.pop().expect("one journey in, one out").outcome)
}

/// One journey whose owner-side settlement is still outstanding.
///
/// Produced by [`run_protected_journey_deferred`]; resolved by
/// [`settle_deferred`]. Until settlement, `outcome` is missing the owner's
/// verdicts: the final-session re-execution check (carried in `pending`)
/// and any fraud surfaced by the deferred signature flush.
#[derive(Debug)]
pub struct DeferredJourney {
    /// The journey outcome so far (per-hop verdicts only).
    pub outcome: ProtocolOutcome,
    /// The owner's final re-execution check, if the halting host was not
    /// skipped as trusted.
    pub pending: Option<PendingFinalCheck>,
    /// The agent that ran the journey — the key used to attribute failed
    /// deferred signatures back to their journey at flush.
    pub agent: AgentId,
    /// How many signature checks this journey pushed onto the shared
    /// queue.
    pub deferred: usize,
}

/// The owner-side re-execution of a journey's final session, postponed so
/// a service can run many journeys' final checks in one
/// [`check_sessions_with`] pass.
#[derive(Debug)]
pub struct PendingFinalCheck {
    /// The agent's code, re-executed by the check.
    pub program: Program,
    /// The agent.
    pub agent: AgentId,
    /// The halting host whose session is being checked.
    pub executor: HostId,
    /// The final session's sequence number.
    pub seq: u64,
    /// The halting host's signed certificate — the claim under check, and
    /// the evidence's signed claim should it fail.
    pub signed_cert: Signed<SessionCertificate>,
}

/// Aggregate counters from one [`settle_deferred`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SettleStats {
    /// Owner-side final re-execution checks performed.
    pub final_checks: u32,
    /// Deferred signatures settled by the batch flush.
    pub flush_verifications: u32,
    /// Deferred signatures that failed the flush.
    pub flush_failures: u32,
    /// Failed deferred signatures whose certificate could not be mapped
    /// back to a journey (malformed bytes under multi-journey settlement).
    pub unattributed_failures: u32,
}

/// Runs a journey with *both* owner-side obligations deferred: per-hop
/// signature checks accumulate on `queue` (not flushed), and the final
/// owner re-execution check is returned as
/// [`pending`](DeferredJourney::pending) instead of running inline.
///
/// This is the resident-service seam: a service collects the
/// [`DeferredJourney`]s of a whole tick, then calls [`settle_deferred`]
/// once — one [`check_sessions_with`] pass over every pending final check
/// and one [`VerificationQueue::flush`] over every deferred signature,
/// instead of one of each per journey.
///
/// # Errors
///
/// See [`ProtocolError`]. Detected fraud is reported in the outcome, not
/// as an error.
pub fn run_protected_journey_deferred(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    config: &ProtocolConfig,
    log: &EventLog,
    directory: &KeyDirectory,
    queue: &mut VerificationQueue,
) -> Result<DeferredJourney, ProtocolError> {
    let agent_id = agent.id.clone();
    let before = queue.len();
    let (outcome, pending) = run_journey_inner(
        hosts,
        start.into(),
        agent,
        config,
        log,
        directory,
        Some(queue),
    )?;
    let deferred = queue.len() - before;
    Ok(DeferredJourney {
        outcome,
        pending,
        agent: agent_id,
        deferred,
    })
}

/// Settles a batch of [`DeferredJourney`]s: one bulk re-execution pass
/// over every pending final check (distributed over `workers` workers —
/// outcomes are applied in input order regardless of worker count, so the
/// verdict streams are worker-invariant), then one batch flush of `queue`
/// with per-journey fraud attribution.
///
/// Verdicts, fraud evidence, log events, and stats land on each journey's
/// [`outcome`](DeferredJourney::outcome), in the same order the
/// journey-at-a-time entry points produce them: the owner's final-check
/// verdict first, then (at most one) flush-failure verdict. A failed
/// deferred signature is attributed to its journey by the certificate's
/// agent id; fraud is recorded only if the journey has none yet (earlier
/// detections take precedence).
pub fn settle_deferred(
    journeys: &mut [DeferredJourney],
    config: &ProtocolConfig,
    log: &EventLog,
    directory: &KeyDirectory,
    queue: &mut VerificationQueue,
    workers: usize,
) -> SettleStats {
    let mut stats = SettleStats::default();

    // --- one bulk pass over every pending final check ---
    let work: Vec<(usize, ReferenceData)> = journeys
        .iter()
        .enumerate()
        .filter_map(|(i, j)| {
            let cert = j.pending.as_ref()?.signed_cert.payload();
            let data = ReferenceData {
                initial_state: Some(cert.initial_state.clone()),
                resulting_state: Some(cert.resulting_state.clone()),
                input: Some(cert.input.clone()),
                execution_log: None,
                resources: None,
                // State-only final check: the halt itself was the observed
                // session end, so there is no migration claim to
                // cross-check.
                claimed_next: None,
            };
            Some((i, data))
        })
        .collect();
    let checked = work.len() as u32;
    let t = Instant::now();
    let outcomes = {
        let contexts: Vec<CheckContext<'_>> = work
            .iter()
            .map(|(i, data)| CheckContext {
                program: &journeys[*i]
                    .pending
                    .as_ref()
                    .expect("work built from pending")
                    .program,
                data,
                exec: config.exec.clone(),
            })
            .collect();
        let checker = ReExecutionChecker::new().with_pipeline(config.pipeline.clone());
        check_sessions_with(&checker, &contexts, workers)
    };
    let check_share = if checked > 0 {
        t.elapsed() / checked
    } else {
        Duration::ZERO
    };
    stats.final_checks = checked;

    for ((i, _), outcome) in work.into_iter().zip(outcomes) {
        let journey = &mut journeys[i];
        let pending = journey.pending.take().expect("work built from pending");
        let failure = match outcome {
            CheckOutcome::Passed => None,
            CheckOutcome::Failed(reason) => Some(reason),
        };
        let passed = failure.is_none();
        log.record(Event::CheckPerformed {
            checker: pending.executor.clone(),
            checked: pending.executor.clone(),
            passed,
        });
        journey.outcome.verdicts.push(CheckVerdict {
            checked: pending.executor.clone(),
            checker: HostId::new("owner"),
            seq: pending.seq,
            failure: failure.clone(),
        });
        journey.outcome.stats.checking += check_share;
        journey.outcome.stats.total += check_share;
        journey.outcome.stats.reexecutions += 1;
        if let Some(reason) = failure {
            log.record(Event::FraudDetected {
                culprit: pending.executor.clone(),
                detector: HostId::new("owner"),
                reason: reason.to_string(),
            });
            // Fraud evidence carries the *complete* reference state; the
            // checker reports digests only, so the (rare) failure path
            // re-derives it with one extra, counted replay.
            let cert = pending.signed_cert.payload().clone();
            let reference_state = config.pipeline.reference_state(
                &pending.program,
                &cert.initial_state,
                &cert.input,
                &config.exec,
            );
            journey.outcome.stats.reexecutions += 1;
            if journey.outcome.fraud.is_none() {
                journey.outcome.fraud = Some(FraudEvidence {
                    culprit: pending.executor.clone(),
                    detector: HostId::new("owner"),
                    agent: pending.agent.clone(),
                    seq: pending.seq,
                    reason,
                    initial_state: cert.initial_state,
                    claimed_state: cert.resulting_state,
                    reference_state,
                    input: cert.input,
                    signed_claim: Some(pending.signed_cert),
                });
            }
        }
    }

    // --- one batch flush over every deferred signature ---
    if !queue.is_empty() {
        let t = Instant::now();
        let flushed = queue.flush(directory);
        let flush_elapsed = t.elapsed();
        stats.flush_verifications = flushed.len() as u32;
        let contributors = journeys.iter().filter(|j| j.deferred > 0).count() as u32;
        let flush_share = if contributors > 0 {
            flush_elapsed / contributors
        } else {
            Duration::ZERO
        };
        for journey in journeys.iter_mut() {
            if journey.deferred > 0 {
                journey.outcome.stats.verifications += journey.deferred as u32;
                journey.outcome.stats.sign_verify += flush_share;
                journey.outcome.stats.total += flush_share;
                journey.deferred = 0;
            }
        }
        let mut flagged = vec![false; journeys.len()];
        for (bad, _) in flushed.iter().filter(|(_, ok)| !ok) {
            stats.flush_failures += 1;
            // The deferred message bytes are the certificate's canonical
            // encoding; recover it to attribute the failure and carry the
            // full claimed states in the evidence.
            let cert = from_wire::<SessionCertificate>(&bad.message).ok();
            let target = match cert.as_ref() {
                Some(c) => journeys.iter().position(|j| j.agent == c.agent),
                // Undecodable bytes cannot name their journey; with a
                // single journey there is no ambiguity to resolve.
                None if journeys.len() == 1 => Some(0),
                None => None,
            };
            let owner = HostId::new("owner");
            let culprit = HostId::new(bad.signer.clone());
            let reason = FailureReason::ProgramRejected {
                detail: "session certificate signature invalid (deferred batch verification)"
                    .into(),
            };
            let Some(i) = target else {
                stats.unattributed_failures += 1;
                log.record(Event::FraudDetected {
                    culprit,
                    detector: owner,
                    reason: reason.to_string(),
                });
                continue;
            };
            if flagged[i] {
                continue;
            }
            flagged[i] = true;
            let journey = &mut journeys[i];
            log.record(Event::FraudDetected {
                culprit: culprit.clone(),
                detector: owner.clone(),
                reason: reason.to_string(),
            });
            let seq = cert.as_ref().map(|c| c.seq).unwrap_or(0);
            journey.outcome.verdicts.push(CheckVerdict {
                checked: culprit.clone(),
                checker: owner.clone(),
                seq,
                failure: Some(reason.clone()),
            });
            if journey.outcome.fraud.is_none() {
                journey.outcome.fraud = Some(FraudEvidence {
                    culprit,
                    detector: owner,
                    agent: cert
                        .as_ref()
                        .map(|c| c.agent.clone())
                        .unwrap_or_else(|| AgentId::new("unknown")),
                    seq,
                    reason,
                    initial_state: cert
                        .as_ref()
                        .map(|c| c.initial_state.clone())
                        .unwrap_or_default(),
                    claimed_state: cert
                        .as_ref()
                        .map(|c| c.resulting_state.clone())
                        .unwrap_or_default(),
                    reference_state: None,
                    input: cert.map(|c| c.input).unwrap_or_default(),
                    signed_claim: None,
                });
            }
        }
    }
    stats
}

/// [`run_protected_journey_with_directory`] with *deferred* signature
/// verification: every per-hop certificate check is pushed onto `queue`
/// instead of being verified on arrival, and the whole queue is settled in
/// one [`refstate_crypto::verify_batch`] pass when the journey ends.
///
/// This is the batch-verify entry point fleet-scale drivers use: the DSA
/// verifications that dominate the protected-journey p50 collapse from two
/// modexps per hop into one fused double exponentiation per hop, all run
/// back-to-back at journey end. The trade-off is timeliness of the
/// *authenticity* check only — re-execution checks still run per hop, so
/// state tampering is detected exactly as in the eager variant; a forged
/// signature is detected by the owner at journey end instead of by the
/// next host.
///
/// The queue is drained before returning. A deferred signature that fails
/// the batch check surfaces as owner-detected [`FraudEvidence`] (unless an
/// earlier per-hop check already detected a fraud, which takes precedence).
///
/// # Errors
///
/// See [`ProtocolError`]. Detected fraud is reported in the outcome, not
/// as an error.
pub fn run_protected_journey_batched(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    config: &ProtocolConfig,
    log: &EventLog,
    directory: &KeyDirectory,
    queue: &mut VerificationQueue,
) -> Result<ProtocolOutcome, ProtocolError> {
    // A batch of one: the journey-at-a-time entry point is the deferred
    // seam settled immediately, so both paths share one implementation.
    let journey =
        run_protected_journey_deferred(hosts, start, agent, config, log, directory, queue)?;
    let mut journeys = vec![journey];
    settle_deferred(&mut journeys, config, log, directory, queue, 1);
    Ok(journeys.pop().expect("one journey in, one out").outcome)
}

/// The journey loop. The owner's final re-execution check is never run
/// here — it is returned as a [`PendingFinalCheck`] (when due) and settled
/// by [`settle_deferred`], alone or amortized across a batch.
fn run_journey_inner(
    hosts: &mut [Host],
    start: HostId,
    agent: AgentImage,
    config: &ProtocolConfig,
    log: &EventLog,
    directory: &KeyDirectory,
    mut queue: Option<&mut VerificationQueue>,
) -> Result<(ProtocolOutcome, Option<PendingFinalCheck>), ProtocolError> {
    let journey_start = Instant::now();
    let mut stats = ProtocolStats::default();

    let mut current = start;
    log.record(Event::AgentCreated {
        agent: agent.id.clone(),
        home: current.clone(),
    });
    let mut path = vec![current.clone()];
    let mut verdicts = Vec::new();
    let mut commitments = Vec::new();

    let mut image = agent;
    // The certificate of the previous session, to be checked on arrival.
    let mut incoming: Option<Signed<SessionCertificate>> = None;
    let mut seq: u64 = 0;

    loop {
        if path.len() > config.max_hops {
            return Err(ProtocolError::TooManyHops {
                limit: config.max_hops,
            });
        }
        let host_index = hosts
            .iter()
            .position(|h| h.id() == &current)
            .ok_or_else(|| ProtocolError::UnknownHost {
                host: current.clone(),
            })?;

        // --- arrival: verify and (maybe) re-execute the previous session ---
        if let Some(signed_cert) = incoming.take() {
            let sig_ok = match queue.as_deref_mut() {
                // Deferred mode: authenticity settles in one batch at
                // journey end; accept the certificate provisionally.
                Some(queue) => {
                    queue.defer_signed(&signed_cert);
                    true
                }
                None => {
                    let t = Instant::now();
                    let ok = signed_cert.verify(directory).is_ok();
                    stats.sign_verify += t.elapsed();
                    stats.verifications += 1;
                    ok
                }
            };

            let cert = signed_cert.payload().clone();
            let executor_index = hosts
                .iter()
                .position(|h| h.id() == &cert.executor)
                .ok_or_else(|| ProtocolError::UnknownHost {
                    host: cert.executor.clone(),
                })?;

            let mut failure: Option<FailureReason> = None;
            let mut reference_state = None;

            if !sig_ok {
                failure = Some(FailureReason::ProgramRejected {
                    detail: "session certificate signature invalid".into(),
                });
            } else if receiver_checks(config, &hosts[executor_index], &current) {
                // checkAfterSession: re-execute the previous session —
                // through the shared verification pipeline, so an
                // identical re-execution performed by any other driver
                // (or the owner's audit later) is a cache hit.
                let t = Instant::now();
                let claimed_next = cert.next.as_ref().map(|h| h.as_str().to_owned());
                let (outcome, reference) = config.pipeline.verify_session_with_reference(
                    &image.program,
                    &cert.initial_state,
                    &cert.resulting_state,
                    &cert.input,
                    Some(&claimed_next),
                    &config.exec,
                );
                if let CheckOutcome::Failed(reason) = outcome {
                    failure = Some(reason);
                    // Fraud evidence carries the complete reference state;
                    // the check hands back the one it materialized while
                    // diffing, so the failure path costs no extra replay.
                    reference_state = reference;
                }
                stats.checking += t.elapsed();
                stats.reexecutions += 1;
                log.record(Event::CheckPerformed {
                    checker: current.clone(),
                    checked: cert.executor.clone(),
                    passed: failure.is_none(),
                });
            }

            match failure {
                None => {
                    verdicts.push(CheckVerdict {
                        checked: cert.executor.clone(),
                        checker: current.clone(),
                        seq: cert.seq,
                        failure: None,
                    });
                    // Dual-signing: commit to the accepted initial state of
                    // the session about to run here.
                    let t = Instant::now();
                    let commitment = InitCommitment {
                        agent: image.id.clone(),
                        seq,
                        receiver: current.clone(),
                        initial_digest: cert.resulting_digest(),
                    };
                    let signed = hosts[host_index].sign(commitment);
                    stats.sign_verify += t.elapsed();
                    stats.signatures += 1;
                    commitments.push(signed);
                }
                Some(reason) => {
                    log.record(Event::FraudDetected {
                        culprit: cert.executor.clone(),
                        detector: current.clone(),
                        reason: reason.to_string(),
                    });
                    verdicts.push(CheckVerdict {
                        checked: cert.executor.clone(),
                        checker: current.clone(),
                        seq: cert.seq,
                        failure: Some(reason.clone()),
                    });
                    stats.total = journey_start.elapsed();
                    let fraud = FraudEvidence {
                        culprit: cert.executor.clone(),
                        detector: current.clone(),
                        agent: image.id.clone(),
                        seq: cert.seq,
                        reason,
                        initial_state: cert.initial_state.clone(),
                        claimed_state: cert.resulting_state.clone(),
                        reference_state,
                        input: cert.input.clone(),
                        signed_claim: Some(signed_cert),
                    };
                    return Ok((
                        ProtocolOutcome {
                            final_state: cert.resulting_state,
                            path,
                            verdicts,
                            fraud: Some(fraud),
                            commitments,
                            stats,
                        },
                        None,
                    ));
                }
            }
        }

        // --- execute this host's session ---
        let host = &mut hosts[host_index];
        let t = Instant::now();
        let record = host.execute_session(&image, &config.exec, log)?;
        stats.execution += t.elapsed();

        image.state = record.outcome.state.clone();
        let next = match &record.outcome.end {
            SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
            SessionEnd::Halt => None,
        };

        // Build and sign this session's certificate.
        let cert = SessionCertificate {
            agent: image.id.clone(),
            seq,
            executor: current.clone(),
            initial_state: record.initial_state.clone(),
            resulting_state: record.outcome.state.clone(),
            input: record.outcome.input_log.clone(),
            next: next.clone(),
        };
        let t = Instant::now();
        let signed_cert = hosts[host_index].sign(cert);
        stats.sign_verify += t.elapsed();
        stats.signatures += 1;

        match next {
            Some(next_host) => {
                if !hosts.iter().any(|h| h.id() == &next_host) {
                    return Err(ProtocolError::UnknownHost { host: next_host });
                }
                let bytes = to_wire(&image).len() + to_wire(signed_cert.payload()).len();
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next_host.clone(),
                    agent: image.id.clone(),
                    bytes,
                });
                incoming = Some(signed_cert);
                path.push(next_host.clone());
                current = next_host;
                seq += 1;
            }
            None => {
                // Task complete. The final session is checked by the owner
                // (modelled as an owner-side verification pass when the
                // halting host is untrusted). The check itself is handed
                // back as a [`PendingFinalCheck`] and performed by
                // [`settle_deferred`]'s [`check_sessions_with`] bulk pass
                // — the single seam every owner-side `checkAfterTask`
                // verification funnels into, so batching and parallelism
                // work land in one place.
                let host_trusted = hosts[host_index].is_trusted();
                let pending = if config.skip_trusted && host_trusted {
                    None
                } else {
                    Some(PendingFinalCheck {
                        program: image.program.clone(),
                        agent: image.id.clone(),
                        executor: current.clone(),
                        seq,
                        signed_cert,
                    })
                };
                stats.total = journey_start.elapsed();
                return Ok((
                    ProtocolOutcome {
                        final_state: image.state,
                        path,
                        verdicts,
                        fraud: None,
                        commitments,
                        stats,
                    },
                    pending,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, Value};

    fn sum_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hops"
            push 1
            add
            store "hops"
            load "hops"
            push 1
            eq
            jnz to_h2
            load "hops"
            push 2
            eq
            jnz to_h3
            halt
        to_h2:
            push "h2"
            migrate
        to_h3:
            push "h3"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hops", Value::Int(0));
        AgentImage::new("summer", program, state)
    }

    fn build_hosts(h2_attack: Option<Attack>, h3_spec: Option<HostSpec>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(999);
        let params = DsaParams::test_group_256();
        let mut h2 = HostSpec::new("h2").with_input("n", Value::Int(20));
        if let Some(a) = h2_attack {
            h2 = h2.malicious(a);
        }
        let h3 = h3_spec.unwrap_or_else(|| {
            HostSpec::new("h3")
                .trusted()
                .with_input("n", Value::Int(30))
        });
        vec![
            Host::new(
                HostSpec::new("h1")
                    .trusted()
                    .with_input("n", Value::Int(10)),
                &params,
                &mut rng,
            ),
            Host::new(h2, &params, &mut rng),
            Host::new(h3, &params, &mut rng),
        ]
    }

    #[test]
    fn honest_journey_completes_clean() {
        let mut hosts = build_hosts(None, None);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        assert!(outcome.clean());
        assert_eq!(outcome.final_state.get_int("total"), Some(60));
        assert_eq!(outcome.path.len(), 3);
        // One re-execution: only h2 is untrusted.
        assert_eq!(outcome.stats.reexecutions, 1);
        // Each session signs one certificate; each accepted arrival signs a
        // commitment.
        assert_eq!(
            outcome.stats.signatures as usize,
            3 + outcome.commitments.len()
        );
        assert!(outcome.stats.verifications >= 2);
    }

    #[test]
    fn tampering_is_detected_with_full_evidence() {
        let mut hosts = build_hosts(
            Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(7),
            }),
            None,
        );
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        let fraud = outcome.fraud.expect("tampering detected");
        assert_eq!(fraud.culprit.as_str(), "h2");
        assert_eq!(fraud.detector.as_str(), "h3");
        // Full states, not hashes.
        assert_eq!(fraud.claimed_state.get_int("total"), Some(7));
        assert_eq!(
            fraud
                .reference_state
                .as_ref()
                .and_then(|s| s.get_int("total")),
            Some(30)
        );
        // The culprit's signed false claim is part of the evidence and
        // still verifies against its public key.
        let mut dir = KeyDirectory::new();
        for h in &hosts {
            dir.register(h.id().as_str(), h.public_key().clone());
        }
        let claim = fraud.signed_claim.as_ref().expect("signed claim kept");
        assert!(
            claim.verify(&dir).is_ok(),
            "the false claim is provably the culprit's"
        );
        assert_eq!(claim.payload().resulting_state.get_int("total"), Some(7));
    }

    #[test]
    fn redirected_migration_is_detected() {
        let mut hosts = build_hosts(
            Some(Attack::RedirectMigration {
                to: HostId::new("h1"),
            }),
            None,
        );
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        let fraud = outcome.fraud.expect("redirection detected");
        assert!(matches!(fraud.reason, FailureReason::EndMismatch { .. }));
    }

    #[test]
    fn collusion_of_consecutive_hosts_evades_detection() {
        // h2 tampers; h3 (the accomplice) skips the check — §5.1's stated
        // limitation.
        let accomplice = HostSpec::new("h3").with_input("n", Value::Int(30));
        let mut hosts = build_hosts(
            Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(7),
                accomplice: HostId::new("h3"),
            }),
            Some(accomplice),
        );
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        assert!(
            outcome.fraud.is_none(),
            "collaboration attacks of consecutive hosts cannot be detected"
        );
        // The corrupted value survived to the end.
        assert_eq!(outcome.final_state.get_int("total"), Some(37)); // 7 + 30
    }

    #[test]
    fn same_attack_without_collusion_is_caught() {
        // Identical tampering, but the next host does not cooperate.
        let mut hosts = build_hosts(
            Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(7),
                accomplice: HostId::new("someone-else"),
            }),
            None,
        );
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        assert!(outcome.fraud.is_some());
    }

    #[test]
    fn trusted_host_optimization_skips_reexecution() {
        let mut hosts = build_hosts(None, None);
        let log = EventLog::new();
        let strict = ProtocolConfig {
            skip_trusted: false,
            ..Default::default()
        };
        let outcome = run_protected_journey(&mut hosts, "h1", sum_agent(), &strict, &log).unwrap();
        assert!(outcome.clean());
        // All three sessions re-executed (h1 by h2, h2 by h3, h3 by owner).
        assert_eq!(outcome.stats.reexecutions, 3);
    }

    #[test]
    fn untrusted_final_host_checked_by_owner() {
        let h3 = HostSpec::new("h3")
            .with_input("n", Value::Int(30))
            .malicious(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(0),
            });
        let mut hosts = build_hosts(None, Some(h3));
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        // The tampering happened on the *last* host; the owner's final
        // verification flags it (no next host exists to do it).
        assert!(!outcome.clean());
        let last = outcome.verdicts.last().unwrap();
        assert_eq!(last.checker.as_str(), "owner");
        assert!(!last.passed());
    }

    #[test]
    fn stats_accumulate() {
        let mut hosts = build_hosts(None, None);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        let s = &outcome.stats;
        assert!(s.total >= s.sign_verify + s.checking);
        assert!(s.signatures > 0 && s.verifications > 0);
        assert!(s.remainder() <= s.total);
    }

    #[test]
    fn batched_journey_matches_eager_journey() {
        let run = |batched: bool, attack: Option<Attack>| {
            let mut hosts = build_hosts(attack, None);
            let log = EventLog::new();
            let directory = host_directory(&hosts);
            if batched {
                let mut queue = VerificationQueue::new();
                let outcome = run_protected_journey_batched(
                    &mut hosts,
                    "h1",
                    sum_agent(),
                    &ProtocolConfig::default(),
                    &log,
                    &directory,
                    &mut queue,
                )
                .unwrap();
                assert!(queue.is_empty(), "flush drains the queue");
                outcome
            } else {
                run_protected_journey(
                    &mut hosts,
                    "h1",
                    sum_agent(),
                    &ProtocolConfig::default(),
                    &log,
                )
                .unwrap()
            }
        };

        // Honest: identical result, same number of verifications.
        let eager = run(false, None);
        let batched = run(true, None);
        assert!(batched.clean());
        assert_eq!(batched.final_state, eager.final_state);
        assert_eq!(batched.path, eager.path);
        assert_eq!(batched.stats.verifications, eager.stats.verifications);

        // Tampering: the per-hop re-execution check still catches it with
        // the same culprit/detector — deferral moves only the
        // authenticity check.
        let attack = || {
            Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(7),
            })
        };
        let eager = run(false, attack());
        let batched = run(true, attack());
        let ef = eager.fraud.expect("eager detects");
        let bf = batched.fraud.expect("batched detects");
        assert_eq!(bf.culprit, ef.culprit);
        assert_eq!(bf.detector, ef.detector);
    }

    #[test]
    fn batched_journey_flags_unverifiable_signer_at_flush() {
        let mut hosts = build_hosts(None, None);
        let log = EventLog::new();
        // A broken PKI: h2's key never registered. Eager mode would abort
        // at h3's arrival check; deferred mode completes the journey and
        // the owner's batch flush raises the fraud.
        let mut directory = KeyDirectory::new();
        for h in hosts.iter().filter(|h| h.id().as_str() != "h2") {
            directory.register(h.id().as_str(), h.public_key().clone());
        }
        let mut queue = VerificationQueue::new();
        let outcome = run_protected_journey_batched(
            &mut hosts,
            "h1",
            sum_agent(),
            &ProtocolConfig::default(),
            &log,
            &directory,
            &mut queue,
        )
        .unwrap();
        let fraud = outcome.fraud.expect("unverifiable certificate flagged");
        assert_eq!(fraud.culprit.as_str(), "h2");
        assert_eq!(fraud.detector.as_str(), "owner");
        // The evidence recovered the full claimed states from the
        // deferred certificate bytes.
        assert_eq!(fraud.claimed_state.get_int("total"), Some(30));
    }

    /// Renders verdicts compactly for cross-run comparison.
    fn verdict_lines(outcome: &ProtocolOutcome) -> Vec<String> {
        outcome
            .verdicts
            .iter()
            .map(|v| {
                format!(
                    "{}<-{} seq={} {}",
                    v.checked,
                    v.checker,
                    v.seq,
                    match &v.failure {
                        None => "ok".to_owned(),
                        Some(r) => r.to_string(),
                    }
                )
            })
            .collect()
    }

    #[test]
    fn amortized_settlement_matches_per_journey_settlement() {
        // Three journeys with distinct agents: honest, mid-route tamperer,
        // and an untrusted final host the owner must check. Settling all
        // three in one pass must yield the same per-journey verdict
        // streams as settling each alone — across worker counts.
        let scenarios: Vec<(&str, Option<Attack>, Option<HostSpec>)> = vec![
            ("fleet-0", None, None),
            (
                "fleet-1",
                Some(Attack::TamperVariable {
                    name: "total".into(),
                    value: Value::Int(7),
                }),
                None,
            ),
            (
                "fleet-2",
                None,
                Some(
                    HostSpec::new("h3")
                        .with_input("n", Value::Int(30))
                        .malicious(Attack::TamperVariable {
                            name: "total".into(),
                            value: Value::Int(0),
                        }),
                ),
            ),
        ];
        let agent_named = |name: &str| {
            let mut a = sum_agent();
            a.id = AgentId::new(name);
            a
        };
        let config = ProtocolConfig::default();

        // Reference: one batched (deferred + immediately settled) run each.
        let mut reference = Vec::new();
        for (name, attack, h3) in &scenarios {
            let mut hosts = build_hosts(attack.clone(), h3.clone());
            let log = EventLog::new();
            let directory = host_directory(&hosts);
            let mut queue = VerificationQueue::new();
            let outcome = run_protected_journey_batched(
                &mut hosts,
                "h1",
                agent_named(name),
                &config,
                &log,
                &directory,
                &mut queue,
            )
            .unwrap();
            reference.push(verdict_lines(&outcome));
        }

        for workers in [1, 2, 8] {
            let log = EventLog::new();
            let mut queue = VerificationQueue::new();
            let mut journeys = Vec::new();
            let mut host_sets: Vec<Vec<Host>> = scenarios
                .iter()
                .map(|(_, attack, h3)| build_hosts(attack.clone(), h3.clone()))
                .collect();
            // `build_hosts` reseeds identically, so every set carries the
            // same key material — one directory covers them all.
            let directory = host_directory(&host_sets[0]);
            for ((name, _, _), hosts) in scenarios.iter().zip(host_sets.iter_mut()) {
                let journey = run_protected_journey_deferred(
                    hosts,
                    "h1",
                    agent_named(name),
                    &config,
                    &log,
                    &directory,
                    &mut queue,
                )
                .unwrap();
                journeys.push(journey);
            }
            let stats = settle_deferred(
                &mut journeys,
                &config,
                &log,
                &directory,
                &mut queue,
                workers,
            );
            assert!(queue.is_empty(), "settle flushes the shared queue");
            assert_eq!(
                stats.final_checks, 1,
                "only fleet-2 halts on an untrusted host"
            );
            assert_eq!(stats.unattributed_failures, 0);
            for (journey, expected) in journeys.iter().zip(&reference) {
                assert_eq!(
                    &verdict_lines(&journey.outcome),
                    expected,
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn certificate_wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        let cert = SessionCertificate {
            agent: AgentId::new("a"),
            seq: 2,
            executor: HostId::new("h"),
            initial_state: [("x".to_string(), Value::Int(1))].into_iter().collect(),
            resulting_state: [("x".to_string(), Value::Int(2))].into_iter().collect(),
            input: InputLog::new(),
            next: Some(HostId::new("h2")),
        };
        assert_eq!(
            from_wire::<SessionCertificate>(&to_wire(&cert)).unwrap(),
            cert
        );
        let halted = SessionCertificate { next: None, ..cert };
        assert_eq!(
            from_wire::<SessionCertificate>(&to_wire(&halted)).unwrap(),
            halted
        );
        let commit = InitCommitment {
            agent: AgentId::new("a"),
            seq: 1,
            receiver: HostId::new("h2"),
            initial_digest: sha256(b"state"),
        };
        assert_eq!(
            from_wire::<InitCommitment>(&to_wire(&commit)).unwrap(),
            commit
        );
    }

    #[test]
    fn digests_bind_states() {
        let cert = SessionCertificate {
            agent: AgentId::new("a"),
            seq: 0,
            executor: HostId::new("h"),
            initial_state: [("x".to_string(), Value::Int(1))].into_iter().collect(),
            resulting_state: [("x".to_string(), Value::Int(2))].into_iter().collect(),
            input: InputLog::new(),
            next: None,
        };
        assert_ne!(cert.initial_digest(), cert.resulting_digest());
        let mut cert2 = cert.clone();
        cert2.resulting_state.set("x", Value::Int(3));
        assert_ne!(cert.resulting_digest(), cert2.resulting_digest());
    }
}
