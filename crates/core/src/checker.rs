//! The checking-algorithm axis: rules, re-execution, and arbitrary
//! programs.
//!
//! (The fourth algorithm class of the paper — proofs — lives in
//! `refstate-mechanisms::proofs`, because it needs the Merkle-commitment
//! machinery; it implements the same [`CheckingAlgorithm`] trait.)

use std::fmt;
use std::sync::Arc;

use refstate_crypto::{sha256, Digest};
use refstate_vm::{DataState, ExecConfig, Program};
use refstate_wire::to_wire;

use crate::compare::{ExactCompare, StateCompare};
use crate::pipeline::VerificationPipeline;
use crate::refdata::{ReferenceData, ReferenceDataKind, ReferenceDataRequest};
use crate::rules::RuleSet;

/// Everything a checking algorithm gets to see.
#[derive(Debug, Clone)]
pub struct CheckContext<'a> {
    /// The agent's code (needed by re-execution; rules ignore it).
    pub program: &'a Program,
    /// The reference data supplied by the transport/host.
    pub data: &'a ReferenceData,
    /// Execution limits for any re-execution the check performs.
    pub exec: ExecConfig,
}

/// Why a check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailureReason {
    /// A required piece of reference data was not supplied.
    MissingData {
        /// The missing kind.
        kind: ReferenceDataKind,
    },
    /// A rule was violated.
    RuleViolated {
        /// `(rule name, explanation)` pairs for every violated rule.
        violations: Vec<(String, String)>,
    },
    /// Re-execution produced a different resulting state.
    StateMismatch {
        /// Digest of the state the checked host claimed.
        claimed: Digest,
        /// Digest of the reference state the checker computed.
        reference: Digest,
        /// Variables that differ: `(name, claimed, reference)` rendered.
        diff: Vec<(String, String, String)>,
    },
    /// Re-execution ended differently (wrong migration target or halt).
    EndMismatch {
        /// What the checked host claimed (`None` = halt).
        claimed: Option<String>,
        /// What the reference execution decided.
        reference: Option<String>,
    },
    /// Re-execution itself failed (tampered input log, broken code).
    ReplayFailed {
        /// The VM error, rendered.
        error: String,
    },
    /// A proof failed to verify (used by the proofs mechanism).
    ProofInvalid {
        /// Explanation.
        detail: String,
    },
    /// An arbitrary-program check failed with its own explanation.
    ProgramRejected {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::MissingData { kind } => {
                write!(f, "required reference data missing: {kind}")
            }
            FailureReason::RuleViolated { violations } => {
                write!(f, "{} rule(s) violated", violations.len())?;
                if let Some((name, why)) = violations.first() {
                    write!(f, " (first: {name}: {why})")?;
                }
                Ok(())
            }
            FailureReason::StateMismatch {
                claimed,
                reference,
                diff,
            } => {
                write!(
                    f,
                    "resulting state {} differs from reference state {} in {} variable(s)",
                    claimed.short(),
                    reference.short(),
                    diff.len()
                )
            }
            FailureReason::EndMismatch { claimed, reference } => {
                write!(
                    f,
                    "session end differs: claimed {:?}, reference {:?}",
                    claimed, reference
                )
            }
            FailureReason::ReplayFailed { error } => write!(f, "re-execution failed: {error}"),
            FailureReason::ProofInvalid { detail } => write!(f, "proof invalid: {detail}"),
            FailureReason::ProgramRejected { detail } => {
                write!(f, "checking program rejected the session: {detail}")
            }
        }
    }
}

/// The result of one check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The session is consistent with reference behaviour.
    Passed,
    /// The session was manipulated (or the data was insufficient).
    Failed(FailureReason),
}

impl CheckOutcome {
    /// Returns `true` for [`CheckOutcome::Passed`].
    pub fn passed(&self) -> bool {
        matches!(self, CheckOutcome::Passed)
    }
}

/// A checking algorithm: one point on the paper's §3.5 algorithm axis.
///
/// Implementations declare the reference data they need (the paper's
/// requester interfaces) and judge a session from a [`CheckContext`].
pub trait CheckingAlgorithm: Send + Sync {
    /// The reference data this algorithm needs (its requester interfaces).
    fn required_data(&self) -> ReferenceDataRequest;

    /// Judges one session.
    fn check(&self, ctx: &CheckContext<'_>) -> CheckOutcome;

    /// A short name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Hashes a state canonically.
pub(crate) fn state_digest(state: &DataState) -> Digest {
    sha256(&to_wire(state))
}

/// Renders the variable-level difference between two states.
pub(crate) fn state_diff(
    claimed: &DataState,
    reference: &DataState,
) -> Vec<(String, String, String)> {
    let mut diff = Vec::new();
    let names: std::collections::BTreeSet<&str> = claimed
        .iter()
        .map(|(k, _)| k)
        .chain(reference.iter().map(|(k, _)| k))
        .collect();
    for name in names {
        let c = claimed.get(name);
        let r = reference.get(name);
        if c != r {
            diff.push((
                name.to_owned(),
                c.map_or("<absent>".to_owned(), |v| v.to_string()),
                r.map_or("<absent>".to_owned(), |v| v.to_string()),
            ));
        }
    }
    diff
}

/// Judges many sessions with one algorithm in a single call — the bulk
/// counterpart of [`CheckingAlgorithm::check`] for owner-side
/// `checkAfterTask` verification, where the whole journey's retained
/// reference data is checked at once (one context per session, in journey
/// order).
///
/// This is the seam the protocol driver's owner-side check and the
/// framework's `checkAfterTask` pass run through, so every owner-side
/// bulk verification shares one entry point. Resolves the worker count
/// automatically; see [`check_sessions_with`] for an explicit one.
pub fn check_sessions(
    algorithm: &dyn CheckingAlgorithm,
    contexts: &[CheckContext<'_>],
) -> Vec<CheckOutcome> {
    check_sessions_with(algorithm, contexts, 0)
}

/// [`check_sessions`] with an explicit worker count (`0` = one worker per
/// available core, capped at the batch size).
///
/// Contexts are distributed over a scoped worker pool (the fleet
/// scheduler idiom: a shared cursor, workers drain until empty) and the
/// outcomes are returned **in input order regardless of worker count** —
/// scheduling must never leak into a verification verdict sequence.
/// Batches of one, or one worker, run inline with no thread overhead.
pub fn check_sessions_with(
    algorithm: &dyn CheckingAlgorithm,
    contexts: &[CheckContext<'_>],
    workers: usize,
) -> Vec<CheckOutcome> {
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .min(contexts.len());
    if workers <= 1 || contexts.len() <= 1 {
        return contexts.iter().map(|ctx| algorithm.check(ctx)).collect();
    }

    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(contexts.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(ctx) = contexts.get(index) else {
                    return;
                };
                let outcome = algorithm.check(ctx);
                results
                    .lock()
                    .expect("no panics hold the results lock")
                    .push((index, outcome));
            });
        }
    });
    let mut results = results.into_inner().expect("workers joined");
    results.sort_unstable_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, outcome)| outcome).collect()
}

/// The "rules" algorithm: evaluate a [`RuleSet`] over initial and resulting
/// state. Cheap, but blind to anything the rules don't express (§3.1's
/// price-shopping example is untestable by rules alone).
#[derive(Debug, Clone)]
pub struct RuleChecker {
    rules: RuleSet,
}

impl RuleChecker {
    /// Wraps a rule set.
    pub fn new(rules: RuleSet) -> Self {
        RuleChecker { rules }
    }
}

impl CheckingAlgorithm for RuleChecker {
    fn required_data(&self) -> ReferenceDataRequest {
        ReferenceDataRequest::new()
            .with(ReferenceDataKind::InitialState)
            .with(ReferenceDataKind::ResultingState)
    }

    fn check(&self, ctx: &CheckContext<'_>) -> CheckOutcome {
        if let Some(kind) = ctx.data.first_missing(&self.required_data()) {
            return CheckOutcome::Failed(FailureReason::MissingData { kind });
        }
        let initial = ctx.data.initial_state.as_ref().expect("checked above");
        let resulting = ctx.data.resulting_state.as_ref().expect("checked above");
        let report = self.rules.evaluate(initial, resulting);
        if report.passed() {
            CheckOutcome::Passed
        } else {
            CheckOutcome::Failed(FailureReason::RuleViolated {
                violations: report.violations,
            })
        }
    }

    fn name(&self) -> &'static str {
        "rules"
    }
}

/// The "re-execution" algorithm: run the agent again from the initial state
/// with the recorded input, suppress outputs, and compare the resulting
/// state with a configurable comparator (§3.5).
///
/// Every check funnels through the [`VerificationPipeline`]: replays run
/// the compiled VM fast path, and a checker built
/// [`with_pipeline`](ReExecutionChecker::with_pipeline) shares that
/// pipeline's replay cache, so duplicate re-executions across hops and
/// mechanisms collapse into digest lookups. The default checker carries a
/// private uncached pipeline.
pub struct ReExecutionChecker {
    compare: Arc<dyn StateCompare + Send + Sync>,
    /// Also require the claimed migration target to match (defaults on).
    check_end: bool,
    /// `true` while the comparator is the default [`ExactCompare`] — the
    /// only comparator digest comparison is sound for.
    exact: bool,
    pipeline: Arc<VerificationPipeline>,
}

impl fmt::Debug for ReExecutionChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReExecutionChecker")
            .field("compare", &self.compare.name())
            .field("check_end", &self.check_end)
            .field("cached", &self.pipeline.is_cached())
            .finish()
    }
}

impl Default for ReExecutionChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl ReExecutionChecker {
    /// Re-execution with exact state comparison.
    pub fn new() -> Self {
        ReExecutionChecker {
            compare: Arc::new(ExactCompare),
            check_end: true,
            exact: true,
            pipeline: Arc::new(VerificationPipeline::uncached()),
        }
    }

    /// Re-execution with a custom comparator (the framework's "compare
    /// method … specified by the agent programmer").
    ///
    /// Custom comparators judge the full reference *state*, so their
    /// checks take the pipeline's uncached full-replay path; only the
    /// default exact comparison is answerable from the digest cache.
    pub fn with_compare(compare: Arc<dyn StateCompare + Send + Sync>) -> Self {
        ReExecutionChecker {
            compare,
            check_end: true,
            exact: false,
            pipeline: Arc::new(VerificationPipeline::uncached()),
        }
    }

    /// Routes this checker's replays through a shared pipeline (and its
    /// replay cache, when one is attached).
    pub fn with_pipeline(mut self, pipeline: Arc<VerificationPipeline>) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Disables the migration-target check.
    pub fn without_end_check(mut self) -> Self {
        self.check_end = false;
        self
    }
}

impl CheckingAlgorithm for ReExecutionChecker {
    fn required_data(&self) -> ReferenceDataRequest {
        ReferenceDataRequest::new()
            .with(ReferenceDataKind::InitialState)
            .with(ReferenceDataKind::ResultingState)
            .with(ReferenceDataKind::Input)
    }

    fn check(&self, ctx: &CheckContext<'_>) -> CheckOutcome {
        if let Some(kind) = ctx.data.first_missing(&self.required_data()) {
            return CheckOutcome::Failed(FailureReason::MissingData { kind });
        }
        let initial = ctx.data.initial_state.as_ref().expect("checked above");
        let claimed = ctx.data.resulting_state.as_ref().expect("checked above");
        let input = ctx.data.input.as_ref().expect("checked above");

        if self.exact {
            // The memoizable fast path: digest comparison through the
            // shared pipeline.
            let claimed_next = if self.check_end {
                ctx.data.claimed_next.as_ref()
            } else {
                None
            };
            return self.pipeline.verify_session(
                ctx.program,
                initial,
                claimed,
                input,
                claimed_next,
                &ctx.exec,
            );
        }

        // Custom comparator: the full reference state is required.
        let (outcome, fully_consumed) =
            match self
                .pipeline
                .replay_full(ctx.program, initial, input, &ctx.exec)
            {
                Ok(result) => result,
                Err(e) => {
                    return CheckOutcome::Failed(FailureReason::ReplayFailed {
                        error: e.to_string(),
                    })
                }
            };
        if !fully_consumed {
            return crate::pipeline::padded_log_failure();
        }
        if !self.compare.equivalent(claimed, &outcome.state) {
            return CheckOutcome::Failed(FailureReason::StateMismatch {
                claimed: state_digest(claimed),
                reference: state_digest(&outcome.state),
                diff: state_diff(claimed, &outcome.state),
            });
        }
        let claimed_next = if self.check_end {
            ctx.data.claimed_next.as_ref()
        } else {
            None
        };
        if let Some(failure) = crate::pipeline::end_mismatch(claimed_next, &outcome.end) {
            return failure;
        }
        CheckOutcome::Passed
    }

    fn name(&self) -> &'static str {
        "re-execution"
    }
}

/// The "arbitrary program" algorithm: any closure over the check context —
/// "the most powerful algorithm as it includes the presented ones" (§3.5).
pub struct ProgramChecker {
    name: &'static str,
    required: ReferenceDataRequest,
    body: Arc<dyn Fn(&CheckContext<'_>) -> CheckOutcome + Send + Sync>,
}

impl fmt::Debug for ProgramChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramChecker")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ProgramChecker {
    /// Wraps a checking closure.
    pub fn new(
        name: &'static str,
        required: ReferenceDataRequest,
        body: impl Fn(&CheckContext<'_>) -> CheckOutcome + Send + Sync + 'static,
    ) -> Self {
        ProgramChecker {
            name,
            required,
            body: Arc::new(body),
        }
    }
}

impl CheckingAlgorithm for ProgramChecker {
    fn required_data(&self) -> ReferenceDataRequest {
        self.required
    }

    fn check(&self, ctx: &CheckContext<'_>) -> CheckOutcome {
        if let Some(kind) = ctx.data.first_missing(&self.required) {
            return CheckOutcome::Failed(FailureReason::MissingData { kind });
        }
        (self.body)(ctx)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{CmpOp, Expr, Pred};
    use refstate_vm::{assemble, run_session, ScriptedIo, Value};

    /// Runs the shopping program honestly and returns (program, data).
    fn session_data(tamper: Option<(&str, Value)>) -> (Program, ReferenceData) {
        let program = assemble(
            r#"
            input "price"
            store "quote"
            load "quote"
            push 2
            mul
            store "double"
            halt
        "#,
        )
        .unwrap();
        let mut io = ScriptedIo::new();
        io.push_input("price", Value::Int(50));
        let initial = DataState::new();
        let outcome =
            run_session(&program, initial.clone(), &mut io, &ExecConfig::default()).unwrap();
        let mut resulting = outcome.state.clone();
        if let Some((name, value)) = tamper {
            resulting.set(name, value);
        }
        let data = ReferenceData {
            initial_state: Some(initial),
            resulting_state: Some(resulting),
            input: Some(outcome.input_log.clone()),
            execution_log: Some(outcome.trace.clone()),
            resources: None,
            claimed_next: Some(None),
        };
        (program, data)
    }

    #[test]
    fn reexecution_passes_honest_session() {
        let (program, data) = session_data(None);
        let checker = ReExecutionChecker::new();
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert_eq!(checker.check(&ctx), CheckOutcome::Passed);
    }

    #[test]
    fn reexecution_catches_tampered_state() {
        let (program, data) = session_data(Some(("double", Value::Int(9999))));
        let checker = ReExecutionChecker::new();
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        let outcome = checker.check(&ctx);
        match outcome {
            CheckOutcome::Failed(FailureReason::StateMismatch { diff, .. }) => {
                assert_eq!(diff.len(), 1);
                assert_eq!(diff[0].0, "double");
                assert_eq!(diff[0].1, "9999");
                assert_eq!(diff[0].2, "100");
            }
            other => panic!("expected StateMismatch, got {other:?}"),
        }
    }

    #[test]
    fn reexecution_catches_wrong_migration_target() {
        let (program, mut data) = session_data(None);
        data.claimed_next = Some(Some("mallory".into()));
        let checker = ReExecutionChecker::new();
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert!(matches!(
            checker.check(&ctx),
            CheckOutcome::Failed(FailureReason::EndMismatch { .. })
        ));
        // Disabling the end check lets it pass.
        let lax = ReExecutionChecker::new().without_end_check();
        assert_eq!(lax.check(&ctx), CheckOutcome::Passed);
    }

    #[test]
    fn reexecution_detects_padded_input_log() {
        use refstate_vm::{InputKind, InputRecord};
        let (program, mut data) = session_data(None);
        let mut padded = data.input.clone().unwrap();
        padded.record(InputRecord {
            pc: 99,
            kind: InputKind::Tagged("price".into()),
            value: Value::Int(1),
        });
        data.input = Some(padded);
        let checker = ReExecutionChecker::new();
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert!(matches!(
            checker.check(&ctx),
            CheckOutcome::Failed(FailureReason::ReplayFailed { .. })
        ));
    }

    #[test]
    fn reexecution_reports_missing_data() {
        let (program, mut data) = session_data(None);
        data.input = None;
        let checker = ReExecutionChecker::new();
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert_eq!(
            checker.check(&ctx),
            CheckOutcome::Failed(FailureReason::MissingData {
                kind: ReferenceDataKind::Input
            })
        );
    }

    #[test]
    fn rule_checker_passes_and_fails() {
        let (program, data) = session_data(None);
        let good = RuleChecker::new(RuleSet::new().rule(
            "double-is-twice-quote",
            Pred::cmp(
                CmpOp::Eq,
                Expr::var("double"),
                Expr::Mul(Box::new(Expr::var("quote")), Box::new(Expr::int(2))),
            ),
        ));
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert_eq!(good.check(&ctx), CheckOutcome::Passed);
        assert_eq!(good.name(), "rules");

        // Rules that the tampering *preserves* cannot catch it: tamper both
        // variables consistently.
        let (program, data) = {
            let (p, mut d) = session_data(Some(("double", Value::Int(20))));
            let rs = d.resulting_state.as_mut().unwrap();
            rs.set("quote", Value::Int(10));
            (p, d)
        };
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert_eq!(
            good.check(&ctx),
            CheckOutcome::Passed,
            "consistent tampering slips past rules — the paper's point about their weakness"
        );
        // ... while re-execution still catches it.
        let reexec = ReExecutionChecker::new();
        assert!(!reexec.check(&ctx).passed());
    }

    #[test]
    fn program_checker_runs_closure() {
        let (program, data) = session_data(None);
        let checker = ProgramChecker::new(
            "quote-must-be-positive",
            ReferenceDataRequest::new().with(ReferenceDataKind::ResultingState),
            |ctx| {
                let state = ctx.data.resulting_state.as_ref().expect("required");
                if state.get_int("quote").unwrap_or(-1) > 0 {
                    CheckOutcome::Passed
                } else {
                    CheckOutcome::Failed(FailureReason::ProgramRejected {
                        detail: "quote missing or non-positive".into(),
                    })
                }
            },
        );
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert_eq!(checker.check(&ctx), CheckOutcome::Passed);

        let (program, data) = session_data(Some(("quote", Value::Int(-5))));
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert!(matches!(
            checker.check(&ctx),
            CheckOutcome::Failed(FailureReason::ProgramRejected { .. })
        ));
    }

    #[test]
    fn check_sessions_outcomes_are_input_ordered_for_any_worker_count() {
        // A batch with a deterministic honest/tampered pattern: outcome
        // order must match context order for every worker count.
        let sessions: Vec<(Program, ReferenceData)> = (0..13)
            .map(|i| {
                if i % 3 == 0 {
                    session_data(Some(("double", Value::Int(-1000 - i))))
                } else {
                    session_data(None)
                }
            })
            .collect();
        let contexts: Vec<CheckContext<'_>> = sessions
            .iter()
            .map(|(program, data)| CheckContext {
                program,
                data,
                exec: ExecConfig::default(),
            })
            .collect();
        let checker = ReExecutionChecker::new();
        let baseline = check_sessions_with(&checker, &contexts, 1);
        assert_eq!(baseline.len(), contexts.len());
        for (i, outcome) in baseline.iter().enumerate() {
            assert_eq!(outcome.passed(), i % 3 != 0, "context {i}");
        }
        for workers in [0, 2, 3, 5, 8, 32] {
            assert_eq!(
                check_sessions_with(&checker, &contexts, workers),
                baseline,
                "worker count {workers} changed the outcome order"
            );
        }
    }

    #[test]
    fn checkers_sharing_a_cached_pipeline_dedup_replays() {
        use crate::pipeline::{ReplayCache, VerificationPipeline};
        let (program, data) = session_data(None);
        let pipeline = Arc::new(VerificationPipeline::with_cache(Arc::new(
            ReplayCache::new(),
        )));
        let a = ReExecutionChecker::new().with_pipeline(pipeline.clone());
        let b = ReExecutionChecker::new().with_pipeline(pipeline.clone());
        let ctx = CheckContext {
            program: &program,
            data: &data,
            exec: ExecConfig::default(),
        };
        assert!(a.check(&ctx).passed());
        assert!(b.check(&ctx).passed());
        let stats = pipeline.snapshot();
        assert_eq!(stats.replays, 1, "the second checker hit the cache");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn check_sessions_judges_each_context() {
        let (honest_program, honest_data) = session_data(None);
        let (tampered_program, tampered_data) = session_data(Some(("double", Value::Int(9999))));
        assert_eq!(honest_program, tampered_program);
        let checker = ReExecutionChecker::new();
        let contexts = [
            CheckContext {
                program: &honest_program,
                data: &honest_data,
                exec: ExecConfig::default(),
            },
            CheckContext {
                program: &tampered_program,
                data: &tampered_data,
                exec: ExecConfig::default(),
            },
        ];
        let outcomes = check_sessions(&checker, &contexts);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].passed());
        assert!(!outcomes[1].passed());
    }

    #[test]
    fn failure_reasons_render() {
        let r = FailureReason::MissingData {
            kind: ReferenceDataKind::Input,
        };
        assert!(r.to_string().contains("input"));
        let r = FailureReason::RuleViolated {
            violations: vec![("money".into(), "predicate is false".into())],
        };
        assert!(r.to_string().contains("money"));
        let r = FailureReason::EndMismatch {
            claimed: Some("x".into()),
            reference: None,
        };
        assert!(r.to_string().contains("differs"));
    }

    #[test]
    fn state_diff_reports_absences() {
        let a: DataState = [("x".to_string(), Value::Int(1))].into_iter().collect();
        let b: DataState = [("y".to_string(), Value::Int(2))].into_iter().collect();
        let diff = state_diff(&a, &b);
        assert_eq!(diff.len(), 2);
        assert_eq!(
            diff[0],
            ("x".to_string(), "1".to_string(), "<absent>".to_string())
        );
        assert_eq!(
            diff[1],
            ("y".to_string(), "<absent>".to_string(), "2".to_string())
        );
    }
}
