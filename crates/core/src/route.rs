//! Route recording: how the list of visited hosts is secured.
//!
//! When checking happens only after the task (§3.5), the route must be
//! stored "in a secure way" so the attacker can be identified later. The
//! paper lists three options, all implemented here: dynamically recording
//! stations in a signed chain appended to the agent, reporting each
//! migration to the owner, or fixing an a-priori signed itinerary.

use std::fmt;

use rand::RngCore;
use refstate_crypto::{DsaKeyPair, KeyDirectory, Signed, VerifyError};
use refstate_platform::{AgentId, HostId};
use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

/// The three route-recording strategies of §3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteRecording {
    /// Each station appends a signed entry to the agent's data
    /// ("dynamically recording the stations, appending this information
    /// digitally signed to the agent data").
    #[default]
    SignedAppend,
    /// Each station reports the migration to the owner as it happens.
    ReportToOwner,
    /// The owner fixes and signs the itinerary before departure.
    AprioriItinerary,
}

impl fmt::Display for RouteRecording {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouteRecording::SignedAppend => "signed append",
            RouteRecording::ReportToOwner => "report to owner",
            RouteRecording::AprioriItinerary => "a-priori itinerary",
        })
    }
}

/// One hop in a recorded route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEntry {
    /// The agent.
    pub agent: AgentId,
    /// Position in the route (0 = home).
    pub seq: u64,
    /// The host at this position.
    pub host: HostId,
}

impl Encode for RouteEntry {
    fn encode(&self, w: &mut Writer) {
        self.agent.encode(w);
        w.put_u64(self.seq);
        self.host.encode(w);
    }
}

impl Decode for RouteEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RouteEntry {
            agent: AgentId::decode(r)?,
            seq: r.take_u64()?,
            host: HostId::decode(r)?,
        })
    }
}

/// A chain of signed route entries, each signed by the host it names.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_core::route::SignedRoute;
/// use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory};
/// use refstate_platform::{AgentId, HostId};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let params = DsaParams::test_group_256();
/// let k1 = DsaKeyPair::generate(&params, &mut rng);
/// let mut dir = KeyDirectory::new();
/// dir.register("h1", k1.public().clone());
///
/// let mut route = SignedRoute::new(AgentId::new("a"));
/// route.append(HostId::new("h1"), &k1, &mut rng);
/// assert!(route.verify(&dir).is_ok());
/// assert_eq!(route.hosts(), vec![HostId::new("h1")]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignedRoute {
    agent: Option<AgentId>,
    entries: Vec<Signed<RouteEntry>>,
}

/// Why route verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// An entry signature failed.
    BadSignature {
        /// The failing sequence number.
        seq: u64,
        /// The underlying error.
        source: VerifyError,
    },
    /// Sequence numbers are not 0..n or the agent id is inconsistent.
    BrokenChain {
        /// Description.
        detail: String,
    },
    /// An entry is signed by a different principal than the host it names.
    SignerMismatch {
        /// The failing sequence number.
        seq: u64,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadSignature { seq, source } => {
                write!(f, "route entry {seq} signature invalid: {source}")
            }
            RouteError::BrokenChain { detail } => write!(f, "route chain broken: {detail}"),
            RouteError::SignerMismatch { seq } => {
                write!(
                    f,
                    "route entry {seq} signed by a principal other than its host"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

impl SignedRoute {
    /// A fresh route for an agent.
    pub fn new(agent: AgentId) -> Self {
        SignedRoute {
            agent: Some(agent),
            entries: Vec::new(),
        }
    }

    /// The agent this route belongs to.
    pub(crate) fn agent_id(&self) -> Option<AgentId> {
        self.agent.clone()
    }

    /// Appends an externally signed entry (used by the framework driver,
    /// where hosts sign with their own keys).
    pub(crate) fn push_signed_entry(&mut self, entry: Signed<RouteEntry>) {
        self.entries.push(entry);
    }

    /// Appends a hop, signed by the visiting host's keys.
    pub fn append(&mut self, host: HostId, keys: &DsaKeyPair, rng: &mut dyn RngCore) {
        let agent = self
            .agent
            .clone()
            .expect("route must be created with an agent id");
        let entry = RouteEntry {
            agent,
            seq: self.entries.len() as u64,
            host: host.clone(),
        };
        self.entries
            .push(Signed::seal(entry, host.as_str(), keys, rng));
    }

    /// The recorded hosts in order.
    pub fn hosts(&self) -> Vec<HostId> {
        self.entries
            .iter()
            .map(|e| e.payload().host.clone())
            .collect()
    }

    /// The number of hops recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no hops are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verifies every signature and the chain structure.
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn verify(&self, directory: &KeyDirectory) -> Result<(), RouteError> {
        for (i, entry) in self.entries.iter().enumerate() {
            let payload = entry.payload();
            if payload.seq != i as u64 {
                return Err(RouteError::BrokenChain {
                    detail: format!("entry {i} carries seq {}", payload.seq),
                });
            }
            if let Some(agent) = &self.agent {
                if &payload.agent != agent {
                    return Err(RouteError::BrokenChain {
                        detail: format!("entry {i} names agent {}", payload.agent),
                    });
                }
            }
            if entry.signer() != payload.host.as_str() {
                return Err(RouteError::SignerMismatch { seq: i as u64 });
            }
            entry
                .verify(directory)
                .map_err(|source| RouteError::BadSignature {
                    seq: i as u64,
                    source,
                })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;

    fn setup() -> (Vec<DsaKeyPair>, KeyDirectory, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let params = DsaParams::test_group_256();
        let keys: Vec<DsaKeyPair> = (0..3)
            .map(|_| DsaKeyPair::generate(&params, &mut rng))
            .collect();
        let mut dir = KeyDirectory::new();
        for (i, k) in keys.iter().enumerate() {
            dir.register(format!("h{i}"), k.public().clone());
        }
        (keys, dir, rng)
    }

    #[test]
    fn build_and_verify_chain() {
        let (keys, dir, mut rng) = setup();
        let mut route = SignedRoute::new(AgentId::new("a"));
        for (i, k) in keys.iter().enumerate() {
            route.append(HostId::new(format!("h{i}")), k, &mut rng);
        }
        assert_eq!(route.len(), 3);
        assert!(route.verify(&dir).is_ok());
        assert_eq!(
            route.hosts(),
            vec![HostId::new("h0"), HostId::new("h1"), HostId::new("h2")]
        );
    }

    #[test]
    fn signer_mismatch_detected() {
        let (keys, dir, mut rng) = setup();
        let mut route = SignedRoute::new(AgentId::new("a"));
        // h1's key signs an entry claiming host h0.
        let entry = RouteEntry {
            agent: AgentId::new("a"),
            seq: 0,
            host: HostId::new("h0"),
        };
        route
            .entries
            .push(Signed::seal(entry, "h1", &keys[1], &mut rng));
        assert!(matches!(
            route.verify(&dir),
            Err(RouteError::SignerMismatch { seq: 0 })
        ));
    }

    #[test]
    fn bad_signature_detected() {
        let (keys, dir, mut rng) = setup();
        let mut route = SignedRoute::new(AgentId::new("a"));
        route.append(HostId::new("h0"), &keys[0], &mut rng);
        // Tamper the payload (reroute history) while keeping the signature.
        let tampered = route.entries[0].clone().tampered_with(|mut e| {
            e.host = HostId::new("h0"); // same host name to dodge SignerMismatch
            e.agent = AgentId::new("other-agent");
            e
        });
        route.entries[0] = tampered;
        // Chain check fires first on the agent id.
        assert!(matches!(
            route.verify(&dir),
            Err(RouteError::BrokenChain { .. })
        ));
    }

    #[test]
    fn signature_forgery_detected() {
        let (keys, dir, mut rng) = setup();
        let mut route = SignedRoute::new(AgentId::new("a"));
        route.append(HostId::new("h0"), &keys[0], &mut rng);
        route.append(HostId::new("h1"), &keys[1], &mut rng);
        // Rewrite the *sequence* inside entry 1's payload.
        let forged = route.entries[1].clone().tampered_with(|mut e| {
            e.seq = 1; // unchanged seq, but change host→h1 stays; alter nothing visible
            e
        });
        // Payload unchanged means signature still valid; instead corrupt the
        // recorded host list by swapping entries, breaking seq order.
        route.entries.swap(0, 1);
        let _ = forged;
        assert!(matches!(
            route.verify(&dir),
            Err(RouteError::BrokenChain { .. })
        ));
    }

    #[test]
    fn tampered_payload_fails_signature() {
        let (keys, dir, mut rng) = setup();
        let mut route = SignedRoute::new(AgentId::new("a"));
        route.append(HostId::new("h0"), &keys[0], &mut rng);
        route.append(HostId::new("h1"), &keys[1], &mut rng);
        // A malicious host rewrites entry 0 to blame a different... host
        // name must match signer, so rewrite seq-consistent fields only:
        // here we keep host and seq but this leaves nothing to tamper —
        // so instead re-sign with the wrong key under the right name.
        let entry = RouteEntry {
            agent: AgentId::new("a"),
            seq: 0,
            host: HostId::new("h0"),
        };
        route.entries[0] = Signed::seal(entry, "h0", &keys[2], &mut rng);
        assert!(matches!(
            route.verify(&dir),
            Err(RouteError::BadSignature { seq: 0, .. })
        ));
    }

    #[test]
    fn recording_modes_display() {
        assert_eq!(RouteRecording::SignedAppend.to_string(), "signed append");
        assert_eq!(RouteRecording::ReportToOwner.to_string(), "report to owner");
        assert_eq!(
            RouteRecording::AprioriItinerary.to_string(),
            "a-priori itinerary"
        );
        assert_eq!(RouteRecording::default(), RouteRecording::SignedAppend);
    }

    #[test]
    fn wire_round_trip_entry() {
        use refstate_wire::{from_wire, to_wire};
        let e = RouteEntry {
            agent: AgentId::new("a"),
            seq: 7,
            host: HostId::new("h"),
        };
        assert_eq!(from_wire::<RouteEntry>(&to_wire(&e)).unwrap(), e);
    }
}
