//! The reference-state protection framework (Hohl, 2000).
//!
//! This crate is the paper's contribution: a framework that lets an agent
//! programmer pick a point in the design space of *reference-state*
//! protection mechanisms — mechanisms that detect malicious-host attacks by
//! comparing the state an untrusted host produced against the state a
//! *reference* (correctly behaving) host would have produced, given the
//! same session input.
//!
//! The design space has three axes (paper §3.5):
//!
//! * **moment of checking** — [`CheckMoment`]: after every execution
//!   session, or once after the agent's task,
//! * **reference data** — [`ReferenceDataRequest`] /
//!   [`ReferenceData`]: initial state, resulting state, session input,
//!   execution log, replicated resources,
//! * **checking algorithm** — [`CheckingAlgorithm`]: non-Turing-complete
//!   [`rules`](RuleChecker), [re-execution](ReExecutionChecker), proofs
//!   (in `refstate-mechanisms`), or an [arbitrary program](ProgramChecker).
//!
//! Two drivers run protected journeys:
//!
//! * [`framework`] — the generic driver: any [`ProtectionConfig`] runs
//!   against any host path,
//! * [`protocol`] — the paper's §5.1 example mechanism: every untrusted
//!   session is re-executed *by the next host*, with dual-signed initial
//!   states, signed certificates, the trusted-host optimization, and full
//!   fraud evidence.
//!
//! The attack side of the model lives in [`AttackArea`] (the paper's
//! Fig. 2 taxonomy) with the detectability claims encoded and tested.
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use refstate_core::protocol::{run_protected_journey, ProtocolConfig};
//! use refstate_crypto::DsaParams;
//! use refstate_platform::{Attack, EventLog, Host, HostSpec};
//! use refstate_vm::{assemble, DataState, Value};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = DsaParams::test_group_256();
//! let mut hosts = vec![
//!     Host::new(HostSpec::new("home").trusted(), &params, &mut rng),
//!     Host::new(
//!         HostSpec::new("shop")
//!             .with_input("price", Value::Int(100))
//!             .malicious(Attack::TamperVariable { name: "price".into(), value: Value::Int(1) }),
//!         &params,
//!         &mut rng,
//!     ),
//!     Host::new(HostSpec::new("back-home").trusted(), &params, &mut rng),
//! ];
//! let program = assemble(r#"
//!     load "leg"
//!     push 1
//!     add
//!     store "leg"
//!     load "leg"
//!     push 1
//!     eq
//!     jnz go_shop
//!     load "leg"
//!     push 2
//!     eq
//!     jnz at_shop
//!     halt
//! go_shop:
//!     push "shop"
//!     migrate
//! at_shop:
//!     input "price"
//!     store "price"
//!     push "back-home"
//!     migrate
//! "#)?;
//! let mut state = DataState::new();
//! state.set("leg", Value::Int(0));
//! let agent = refstate_platform::AgentImage::new("buyer", program, state);
//! let log = EventLog::new();
//! let outcome = run_protected_journey(
//!     &mut hosts, "home", agent, &ProtocolConfig::default(), &log,
//! )?;
//! // The tampering host is caught by the next host's re-execution check.
//! let fraud = outcome.fraud.expect("tampering must be detected");
//! assert_eq!(fraud.culprit.as_str(), "shop");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod checker;
pub mod compare;
pub mod framework;
pub mod moment;
pub mod pipeline;
pub mod protocol;
pub mod refdata;
pub mod route;
pub mod rules;
pub mod verdict;

pub use attack::AttackArea;
pub use checker::{
    check_sessions, check_sessions_with, CheckContext, CheckOutcome, CheckingAlgorithm,
    FailureReason, ProgramChecker, ReExecutionChecker, RuleChecker,
};
pub use compare::{ExactCompare, IgnoreVars, StateCompare, UnorderedLists};
pub use framework::{ProtectedAgent, ProtectionConfig};
pub use moment::CheckMoment;
pub use pipeline::{
    PipelineStatsSnapshot, ReplayCache, ReplaySummary, ShardStats, VerificationPipeline,
};
pub use refdata::{HostFacilities, ReferenceData, ReferenceDataKind, ReferenceDataRequest};
pub use route::{RouteEntry, RouteRecording, SignedRoute};
pub use rules::{CmpOp, Expr, Pred, RuleSet};
pub use verdict::{CheckVerdict, FraudEvidence};
