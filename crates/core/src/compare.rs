//! State comparators for re-execution checks.
//!
//! The paper (§3.5, "re-execution") notes that a naive state comparison can
//! produce false alarms: an agent using two threads may assemble a list
//! whose element *order* depends on scheduling, so "the list cannot \[be\]
//! compared simply with the list of another execution as the other list may
//! contain the same elements, but in different order". The framework
//! therefore lets the programmer specify the comparison method. This module
//! provides the common ones.

use std::collections::BTreeSet;

use refstate_vm::{DataState, Value};

/// A method for deciding whether a re-executed state matches the claimed
/// state.
pub trait StateCompare {
    /// Returns `true` when the two states are equivalent under this
    /// comparator.
    fn equivalent(&self, claimed: &DataState, reference: &DataState) -> bool;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Byte-for-byte (structural) equality — the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCompare;

impl StateCompare for ExactCompare {
    fn equivalent(&self, claimed: &DataState, reference: &DataState) -> bool {
        claimed == reference
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// Equality ignoring a set of volatile variables (e.g. a timestamp the
/// agent records for bookkeeping but that carries no protected meaning).
#[derive(Debug, Clone, Default)]
pub struct IgnoreVars {
    ignored: BTreeSet<String>,
}

impl IgnoreVars {
    /// Creates a comparator ignoring the given variables.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(vars: I) -> Self {
        IgnoreVars {
            ignored: vars.into_iter().map(Into::into).collect(),
        }
    }

    fn strip(&self, state: &DataState) -> DataState {
        state
            .iter()
            .filter(|(k, _)| !self.ignored.contains(*k))
            .map(|(k, v)| (k.to_owned(), v.clone()))
            .collect()
    }
}

impl StateCompare for IgnoreVars {
    fn equivalent(&self, claimed: &DataState, reference: &DataState) -> bool {
        self.strip(claimed) == self.strip(reference)
    }

    fn name(&self) -> &'static str {
        "ignore-vars"
    }
}

/// Equality treating the named list variables as multisets — the paper's
/// thread-ordering example.
#[derive(Debug, Clone, Default)]
pub struct UnorderedLists {
    unordered: BTreeSet<String>,
}

impl UnorderedLists {
    /// Creates a comparator that sorts the named list variables before
    /// comparing.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(vars: I) -> Self {
        UnorderedLists {
            unordered: vars.into_iter().map(Into::into).collect(),
        }
    }

    fn normalize(&self, state: &DataState) -> DataState {
        state
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    Value::List(items) if self.unordered.contains(k) => {
                        let mut sorted = items.clone();
                        sorted.sort();
                        Value::List(sorted)
                    }
                    other => other.clone(),
                };
                (k.to_owned(), v)
            })
            .collect()
    }
}

impl StateCompare for UnorderedLists {
    fn equivalent(&self, claimed: &DataState, reference: &DataState) -> bool {
        self.normalize(claimed) == self.normalize(reference)
    }

    fn name(&self) -> &'static str {
        "unordered-lists"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(pairs: &[(&str, Value)]) -> DataState {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn exact_compare() {
        let a = state(&[("x", Value::Int(1))]);
        let b = state(&[("x", Value::Int(1))]);
        let c = state(&[("x", Value::Int(2))]);
        assert!(ExactCompare.equivalent(&a, &b));
        assert!(!ExactCompare.equivalent(&a, &c));
        assert_eq!(ExactCompare.name(), "exact");
    }

    #[test]
    fn ignore_vars() {
        let cmp = IgnoreVars::new(["ts"]);
        let a = state(&[("x", Value::Int(1)), ("ts", Value::Int(100))]);
        let b = state(&[("x", Value::Int(1)), ("ts", Value::Int(999))]);
        let c = state(&[("x", Value::Int(2)), ("ts", Value::Int(100))]);
        assert!(cmp.equivalent(&a, &b));
        assert!(!cmp.equivalent(&a, &c));
        // A state missing the ignored var entirely still matches.
        let d = state(&[("x", Value::Int(1))]);
        assert!(cmp.equivalent(&a, &d));
    }

    #[test]
    fn unordered_lists_match_permutations() {
        let cmp = UnorderedLists::new(["quotes"]);
        let a = state(&[(
            "quotes",
            Value::List(vec![Value::Int(3), Value::Int(1), Value::Int(2)]),
        )]);
        let b = state(&[(
            "quotes",
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        )]);
        assert!(cmp.equivalent(&a, &b));
        // Different multiset still fails.
        let c = state(&[(
            "quotes",
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(2)]),
        )]);
        assert!(!cmp.equivalent(&a, &c));
    }

    #[test]
    fn unordered_applies_only_to_named_vars() {
        let cmp = UnorderedLists::new(["free"]);
        let a = state(&[("ordered", Value::List(vec![Value::Int(2), Value::Int(1)]))]);
        let b = state(&[("ordered", Value::List(vec![Value::Int(1), Value::Int(2)]))]);
        assert!(
            !cmp.equivalent(&a, &b),
            "unlisted lists stay order-sensitive"
        );
    }
}
