//! Verdicts and fraud evidence.
//!
//! A distinguishing feature of the paper's example mechanism (§5.1) is that
//! it "is able to present the complete state of an attacked agent instead
//! of only hashes of the state, so the owner is able to prove his/her
//! damage in case of a fraud". [`FraudEvidence`] is that artefact: full
//! states, the recorded input, and the culprit's own signature over its
//! false claim.

use std::fmt;

use refstate_crypto::Signed;
use refstate_platform::{AgentId, HostId};
use refstate_vm::{DataState, InputLog};

use crate::checker::FailureReason;

/// The outcome of checking one session.
#[derive(Debug, Clone)]
pub struct CheckVerdict {
    /// Which host's session was checked.
    pub checked: HostId,
    /// Which host (or the owner) performed the check.
    pub checker: HostId,
    /// The session sequence number (0 = first session).
    pub seq: u64,
    /// `None` when the check passed; the reason otherwise.
    pub failure: Option<FailureReason>,
}

impl CheckVerdict {
    /// Returns `true` when the check passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

impl fmt::Display for CheckVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            None => write!(
                f,
                "session {} by {} verified by {}",
                self.seq, self.checked, self.checker
            ),
            Some(reason) => write!(
                f,
                "session {} by {} REJECTED by {}: {reason}",
                self.seq, self.checked, self.checker
            ),
        }
    }
}

/// Court-ready evidence of a detected manipulation.
///
/// The generic parameter is the signed claim type (the protocol's session
/// certificate); it is kept whole so a third party can re-verify the
/// culprit's signature over the false statement.
#[derive(Debug, Clone)]
pub struct FraudEvidence<C = ()> {
    /// The blamed host.
    pub culprit: HostId,
    /// Who detected the fraud.
    pub detector: HostId,
    /// The affected agent.
    pub agent: AgentId,
    /// The session sequence number.
    pub seq: u64,
    /// Why the check failed.
    pub reason: FailureReason,
    /// The full state the agent entered the session with.
    pub initial_state: DataState,
    /// The full state the culprit claimed the session produced.
    pub claimed_state: DataState,
    /// The full state a reference execution produces.
    pub reference_state: Option<DataState>,
    /// The input the culprit recorded for the session.
    pub input: InputLog,
    /// The culprit's signed claim, verifiable by any third party.
    pub signed_claim: Option<Signed<C>>,
}

impl<C> fmt::Display for FraudEvidence<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FRAUD: host {} manipulated session {} of agent {} (detected by {})",
            self.culprit, self.seq, self.agent, self.detector
        )?;
        writeln!(f, "  reason:    {}", self.reason)?;
        writeln!(f, "  initial:   {}", self.initial_state)?;
        writeln!(f, "  claimed:   {}", self.claimed_state)?;
        if let Some(reference) = &self.reference_state {
            writeln!(f, "  reference: {reference}")?;
        }
        write!(f, "  inputs:    {} recorded", self.input.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_vm::Value;

    fn evidence() -> FraudEvidence {
        let initial: DataState = [("x".to_string(), Value::Int(1))].into_iter().collect();
        let claimed: DataState = [("x".to_string(), Value::Int(999))].into_iter().collect();
        let reference: DataState = [("x".to_string(), Value::Int(2))].into_iter().collect();
        FraudEvidence {
            culprit: HostId::new("evil"),
            detector: HostId::new("next"),
            agent: AgentId::new("a-1"),
            seq: 3,
            reason: FailureReason::ProgramRejected {
                detail: "test".into(),
            },
            initial_state: initial,
            claimed_state: claimed,
            reference_state: Some(reference),
            input: InputLog::new(),
            signed_claim: None,
        }
    }

    #[test]
    fn verdict_pass_fail() {
        let ok = CheckVerdict {
            checked: HostId::new("a"),
            checker: HostId::new("b"),
            seq: 0,
            failure: None,
        };
        assert!(ok.passed());
        assert!(ok.to_string().contains("verified"));
        let bad = CheckVerdict {
            failure: Some(FailureReason::ProgramRejected { detail: "x".into() }),
            ..ok
        };
        assert!(!bad.passed());
        assert!(bad.to_string().contains("REJECTED"));
    }

    #[test]
    fn evidence_shows_full_states() {
        let text = evidence().to_string();
        assert!(text.contains("evil"));
        assert!(text.contains("999"), "claimed state must appear in full");
        assert!(text.contains("x=2"), "reference state must appear in full");
        assert!(text.contains("x=1"), "initial state must appear in full");
    }
}
