//! The generic checking framework: any point in the (moment × data ×
//! algorithm) design space, driven over a host path.
//!
//! This is the paper's §5 framework: the programmer picks a
//! [`ProtectionConfig`]; hosts invoke the `checkAfterSession` /
//! `checkAfterTask` callbacks at the configured moment, supply the
//! requested reference data through [`HostFacilities`], and the configured
//! [`CheckingAlgorithm`] judges each session. The hardened, signature-
//! carrying instantiation used for the paper's measurements lives in
//! [`crate::protocol`].

use std::fmt;
use std::sync::Arc;

use refstate_platform::{AgentImage, Event, EventLog, Host, HostId, SessionRecord};
use refstate_vm::{DataState, ExecConfig, Program, SessionEnd, TraceMode, VmError};

use crate::checker::{check_sessions_with, CheckContext, CheckOutcome, CheckingAlgorithm};
use crate::moment::CheckMoment;
use crate::refdata::{HostFacilities, ReferenceData, ReferenceDataKind};
use crate::route::{RouteRecording, SignedRoute};
use crate::verdict::{CheckVerdict, FraudEvidence};

/// A programmer-chosen protection level.
#[derive(Clone)]
pub struct ProtectionConfig {
    /// When checks run.
    pub moment: CheckMoment,
    /// The checking algorithm (which also declares its data needs).
    pub algorithm: Arc<dyn CheckingAlgorithm>,
    /// How the route is recorded.
    pub route: RouteRecording,
    /// Skip checking sessions executed by trusted hosts (§5.1: "trusted
    /// hosts will not attack by definition").
    pub skip_trusted: bool,
    /// Execution limits, shared by sessions and checks.
    pub exec: ExecConfig,
    /// Hop budget.
    pub max_hops: usize,
    /// Worker threads for the `checkAfterTask` bulk verification pass
    /// (`0` = one per available core). Outcomes are order-stable for any
    /// value; see [`crate::checker::check_sessions_with`].
    pub check_workers: usize,
}

impl ProtectionConfig {
    /// A config with the given algorithm and the paper-recommended
    /// defaults: check after every session, skip trusted hosts, signed
    /// route appending.
    pub fn new(algorithm: Arc<dyn CheckingAlgorithm>) -> Self {
        ProtectionConfig {
            moment: CheckMoment::AfterSession,
            algorithm,
            route: RouteRecording::SignedAppend,
            skip_trusted: true,
            exec: ExecConfig::default(),
            max_hops: 64,
            check_workers: 0,
        }
    }

    /// Sets the checking moment.
    pub fn moment(mut self, moment: CheckMoment) -> Self {
        self.moment = moment;
        self
    }

    /// Sets the worker count for the `checkAfterTask` bulk pass.
    pub fn check_workers(mut self, workers: usize) -> Self {
        self.check_workers = workers;
        self
    }

    /// Sets the route recording strategy.
    pub fn route(mut self, route: RouteRecording) -> Self {
        self.route = route;
        self
    }

    /// Also check sessions of trusted hosts.
    pub fn check_trusted_too(mut self) -> Self {
        self.skip_trusted = false;
        self
    }
}

impl fmt::Debug for ProtectionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtectionConfig")
            .field("moment", &self.moment)
            .field("algorithm", &self.algorithm.name())
            .field("route", &self.route)
            .field("skip_trusted", &self.skip_trusted)
            .finish_non_exhaustive()
    }
}

/// An agent bundled with its protection configuration.
#[derive(Debug, Clone)]
pub struct ProtectedAgent {
    /// The agent.
    pub image: AgentImage,
    /// The chosen protection level.
    pub config: ProtectionConfig,
}

impl ProtectedAgent {
    /// Bundles an agent with a protection config.
    pub fn new(image: AgentImage, config: ProtectionConfig) -> Self {
        ProtectedAgent { image, config }
    }
}

/// Errors from a framework journey.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameworkError {
    /// The agent migrated to an unregistered host.
    UnknownHost {
        /// The destination.
        host: HostId,
    },
    /// Hop budget exhausted.
    TooManyHops {
        /// The budget.
        limit: usize,
    },
    /// A session failed in the VM.
    Vm(VmError),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::UnknownHost { host } => write!(f, "unknown migration target {host}"),
            FrameworkError::TooManyHops { limit } => write!(f, "journey exceeded {limit} hops"),
            FrameworkError::Vm(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for FrameworkError {
    fn from(e: VmError) -> Self {
        FrameworkError::Vm(e)
    }
}

/// The result of a framework-protected journey.
#[derive(Debug)]
pub struct FrameworkOutcome {
    /// The agent's final data state.
    pub final_state: DataState,
    /// Hosts visited in order.
    pub path: Vec<HostId>,
    /// Every check performed, in order.
    pub verdicts: Vec<CheckVerdict>,
    /// Evidence for the first detected fraud, if any. When present the
    /// journey was aborted at the detection point.
    pub fraud: Option<FraudEvidence>,
    /// The signed route (when [`RouteRecording::SignedAppend`] is used).
    pub route: SignedRoute,
}

impl FrameworkOutcome {
    /// Returns `true` when every check passed.
    pub fn clean(&self) -> bool {
        self.fraud.is_none() && self.verdicts.iter().all(CheckVerdict::passed)
    }
}

/// Replays a session to obtain the reference state for evidence, when the
/// data permits.
///
/// The rare fraud-evidence path of the generic driver: it runs through a
/// throwaway uncached [`crate::pipeline::VerificationPipeline`] (the
/// compiled fast path; the per-hop *checks* themselves go through the
/// algorithm's own — possibly cached — pipeline).
fn reference_state_for_evidence(
    program: &Program,
    data: &ReferenceData,
    exec: &ExecConfig,
) -> Option<DataState> {
    let initial = data.initial_state.as_ref()?;
    let input = data.input.as_ref()?;
    crate::pipeline::VerificationPipeline::uncached().reference_state(program, initial, input, exec)
}

/// Runs a protected journey under the generic framework.
///
/// The agent starts at `start`; after each migration the *receiving* host
/// performs the `checkAfterSession` callback (when the moment says so) on
/// the just-finished session; at `halt`, the final host performs
/// `checkAfterTask` over the retained journey data (when the moment is
/// [`CheckMoment::AfterTask`]).
///
/// On a failed check the journey aborts and the outcome carries
/// [`FraudEvidence`].
///
/// # Errors
///
/// See [`FrameworkError`]. A *detected fraud* is not an error — it is the
/// mechanism working; errors are infrastructure failures.
pub fn run_framework_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: ProtectedAgent,
    log: &EventLog,
) -> Result<FrameworkOutcome, FrameworkError> {
    let ProtectedAgent { mut image, config } = agent;
    let mut exec = config.exec.clone();
    if config
        .algorithm
        .required_data()
        .contains(ReferenceDataKind::ExecutionLog)
    {
        exec.trace_mode = TraceMode::Full;
    }

    let mut current = start.into();
    log.record(Event::AgentCreated {
        agent: image.id.clone(),
        home: current.clone(),
    });
    let mut path = vec![current.clone()];
    let mut verdicts: Vec<CheckVerdict> = Vec::new();
    let mut route = SignedRoute::new(image.id.clone());
    // Retained (executor, initial, record) tuples for AfterTask checking.
    let mut retained: Vec<(HostId, SessionRecord)> = Vec::new();
    // The previous session, for AfterSession checking on arrival.
    let mut previous: Option<(HostId, SessionRecord)> = None;

    let mut hops = 0usize;
    loop {
        if hops > config.max_hops {
            return Err(FrameworkError::TooManyHops {
                limit: config.max_hops,
            });
        }
        hops += 1;

        let host_index = hosts
            .iter()
            .position(|h| h.id() == &current)
            .ok_or_else(|| FrameworkError::UnknownHost {
                host: current.clone(),
            })?;

        // --- checkAfterSession: first action on arrival (paper Fig. 4) ---
        if config.moment == CheckMoment::AfterSession {
            if let Some((executor, record)) = previous.take() {
                let trusted_executor = hosts
                    .iter()
                    .find(|h| h.id() == &executor)
                    .map(|h| h.is_trusted())
                    .unwrap_or(false);
                if !(config.skip_trusted && trusted_executor) {
                    let facilities = HostFacilities::new(&record);
                    let data = facilities.provide(&config.algorithm.required_data());
                    let ctx = CheckContext {
                        program: &image.program,
                        data: &data,
                        exec: exec.clone(),
                    };
                    let outcome = config.algorithm.check(&ctx);
                    let passed = outcome.passed();
                    log.record(Event::CheckPerformed {
                        checker: current.clone(),
                        checked: executor.clone(),
                        passed,
                    });
                    let seq = (path.len() - 2) as u64;
                    match outcome {
                        CheckOutcome::Passed => verdicts.push(CheckVerdict {
                            checked: executor.clone(),
                            checker: current.clone(),
                            seq,
                            failure: None,
                        }),
                        CheckOutcome::Failed(reason) => {
                            log.record(Event::FraudDetected {
                                culprit: executor.clone(),
                                detector: current.clone(),
                                reason: reason.to_string(),
                            });
                            verdicts.push(CheckVerdict {
                                checked: executor.clone(),
                                checker: current.clone(),
                                seq,
                                failure: Some(reason.clone()),
                            });
                            let fraud = FraudEvidence {
                                culprit: executor.clone(),
                                detector: current.clone(),
                                agent: image.id.clone(),
                                seq,
                                reason,
                                initial_state: record.initial_state.clone(),
                                claimed_state: record.outcome.state.clone(),
                                reference_state: reference_state_for_evidence(
                                    &image.program,
                                    &data,
                                    &exec,
                                ),
                                input: record.outcome.input_log.clone(),
                                signed_claim: None,
                            };
                            return Ok(FrameworkOutcome {
                                final_state: record.outcome.state,
                                path,
                                verdicts,
                                fraud: Some(fraud),
                                route,
                            });
                        }
                    }
                }
            }
        }

        // --- execute the session on the current host ---
        let host = &mut hosts[host_index];
        let record = host.execute_session(&image, &exec, log)?;
        if config.route == RouteRecording::SignedAppend {
            // The host signs its own route entry. We borrow its key via a
            // small signing detour: hosts sign payloads themselves.
            append_route_entry(&mut route, host);
        }
        image.state = record.outcome.state.clone();
        let end = record.outcome.end.clone();

        match config.moment {
            CheckMoment::AfterSession => previous = Some((current.clone(), record)),
            CheckMoment::AfterTask => retained.push((current.clone(), record)),
        }

        match end {
            SessionEnd::Migrate(next) => {
                let next = HostId::new(next);
                if !hosts.iter().any(|h| h.id() == &next) {
                    return Err(FrameworkError::UnknownHost { host: next });
                }
                let bytes = refstate_wire::to_wire(&image).len();
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next.clone(),
                    agent: image.id.clone(),
                    bytes,
                });
                path.push(next.clone());
                current = next;
            }
            SessionEnd::Halt => break,
        }
    }

    // --- checkAfterSession for the final session (the last host's own
    // session is checked by the owner/home conceptually; here the journey
    // ends, and the final session was executed by the halting host) ---
    let mut fraud = None;
    if config.moment == CheckMoment::AfterSession {
        if let Some((executor, record)) = previous.take() {
            // The halting host's session is checked by the owner — modelled
            // as a final check attributed to the same halting host id.
            let trusted_executor = hosts
                .iter()
                .find(|h| h.id() == &executor)
                .map(|h| h.is_trusted())
                .unwrap_or(false);
            if !(config.skip_trusted && trusted_executor) {
                fraud = run_task_check(
                    &image.program,
                    &exec,
                    &config,
                    &executor,
                    &executor,
                    (path.len() - 1) as u64,
                    &record,
                    &image,
                    log,
                    &mut verdicts,
                )?;
            }
        }
    }

    // --- checkAfterTask: evaluate every retained session at the last host,
    // in one bulk pass through the `check_sessions` seam (the owner-side
    // batch is the natural parallelism unit; outcomes stay in journey
    // order for any worker count) ---
    if config.moment == CheckMoment::AfterTask {
        let last = current.clone();
        let checked: Vec<(usize, &HostId, &SessionRecord)> = retained
            .iter()
            .enumerate()
            .filter(|(_, (executor, _))| {
                let trusted_executor = hosts
                    .iter()
                    .find(|h| h.id() == executor)
                    .map(|h| h.is_trusted())
                    .unwrap_or(false);
                !(config.skip_trusted && trusted_executor)
            })
            .map(|(seq, (executor, record))| (seq, executor, record))
            .collect();
        let datas: Vec<ReferenceData> = checked
            .iter()
            .map(|(_, _, record)| {
                HostFacilities::new(record).provide(&config.algorithm.required_data())
            })
            .collect();
        let contexts: Vec<CheckContext<'_>> = datas
            .iter()
            .map(|data| CheckContext {
                program: &image.program,
                data,
                exec: exec.clone(),
            })
            .collect();
        let outcomes =
            check_sessions_with(config.algorithm.as_ref(), &contexts, config.check_workers);
        for (((seq, executor, record), data), outcome) in
            checked.into_iter().zip(&datas).zip(outcomes)
        {
            log.record(Event::CheckPerformed {
                checker: last.clone(),
                checked: executor.clone(),
                passed: outcome.passed(),
            });
            match outcome {
                CheckOutcome::Passed => verdicts.push(CheckVerdict {
                    checked: executor.clone(),
                    checker: last.clone(),
                    seq: seq as u64,
                    failure: None,
                }),
                CheckOutcome::Failed(reason) => {
                    log.record(Event::FraudDetected {
                        culprit: executor.clone(),
                        detector: last.clone(),
                        reason: reason.to_string(),
                    });
                    verdicts.push(CheckVerdict {
                        checked: executor.clone(),
                        checker: last.clone(),
                        seq: seq as u64,
                        failure: Some(reason.clone()),
                    });
                    if fraud.is_none() {
                        fraud = Some(FraudEvidence {
                            culprit: executor.clone(),
                            detector: last.clone(),
                            agent: image.id.clone(),
                            seq: seq as u64,
                            reason,
                            initial_state: record.initial_state.clone(),
                            claimed_state: record.outcome.state.clone(),
                            reference_state: reference_state_for_evidence(
                                &image.program,
                                data,
                                &exec,
                            ),
                            input: record.outcome.input_log.clone(),
                            signed_claim: None,
                        });
                    }
                }
            }
        }
    }

    Ok(FrameworkOutcome {
        final_state: image.state,
        path,
        verdicts,
        fraud,
        route,
    })
}

/// Checks one session at task end, returning the fraud evidence of a
/// failed check (helper for the final-session check in AfterSession mode:
/// an attack on the *last* host of the route must surface as fraud, not
/// just as a failed verdict).
#[allow(clippy::too_many_arguments)]
fn run_task_check(
    program: &Program,
    exec: &ExecConfig,
    config: &ProtectionConfig,
    executor: &HostId,
    checker: &HostId,
    seq: u64,
    record: &SessionRecord,
    image: &AgentImage,
    log: &EventLog,
    verdicts: &mut Vec<CheckVerdict>,
) -> Result<Option<FraudEvidence>, FrameworkError> {
    let facilities = HostFacilities::new(record);
    let data = facilities.provide(&config.algorithm.required_data());
    let ctx = CheckContext {
        program,
        data: &data,
        exec: exec.clone(),
    };
    let outcome = config.algorithm.check(&ctx);
    log.record(Event::CheckPerformed {
        checker: checker.clone(),
        checked: executor.clone(),
        passed: outcome.passed(),
    });
    let failure = match outcome {
        CheckOutcome::Passed => None,
        CheckOutcome::Failed(reason) => Some(reason),
    };
    verdicts.push(CheckVerdict {
        checked: executor.clone(),
        checker: checker.clone(),
        seq,
        failure: failure.clone(),
    });
    Ok(failure.map(|reason| {
        log.record(Event::FraudDetected {
            culprit: executor.clone(),
            detector: checker.clone(),
            reason: reason.to_string(),
        });
        FraudEvidence {
            culprit: executor.clone(),
            detector: checker.clone(),
            agent: image.id.clone(),
            seq,
            reason,
            initial_state: record.initial_state.clone(),
            claimed_state: record.outcome.state.clone(),
            reference_state: reference_state_for_evidence(program, &data, exec),
            input: record.outcome.input_log.clone(),
            signed_claim: None,
        }
    }))
}

fn append_route_entry(route: &mut SignedRoute, host: &mut Host) {
    // Hosts sign with their own keys through Host::sign; SignedRoute
    // expects a DsaKeyPair, so route signing goes through a sign-adapter:
    // the entry payload is built by SignedRoute::append's logic inline.
    let entry = crate::route::RouteEntry {
        agent: route_agent(route),
        seq: route.len() as u64,
        host: host.id().clone(),
    };
    let signed = host.sign(entry);
    route_push(route, signed);
}

// SignedRoute intentionally keeps its internals private; these two small
// helpers live here to avoid widening its public API beyond tests' needs.
fn route_agent(route: &SignedRoute) -> refstate_platform::AgentId {
    route.agent_id().expect("route created with an agent id")
}

fn route_push(route: &mut SignedRoute, entry: refstate_crypto::Signed<crate::route::RouteEntry>) {
    route.push_signed_entry(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{ReExecutionChecker, RuleChecker};
    use crate::rules::{CmpOp, Expr, Pred, RuleSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::{DsaParams, KeyDirectory};
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, Value};

    /// Agent: visits h2 then h3, summing one input per host into "total".
    fn sum_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hops"
            push 1
            add
            store "hops"
            load "hops"
            push 1
            eq
            jnz to_h2
            load "hops"
            push 2
            eq
            jnz to_h3
            halt
        to_h2:
            push "h2"
            migrate
        to_h3:
            push "h3"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hops", Value::Int(0));
        AgentImage::new("summer", program, state)
    }

    fn hosts_with(middle_attack: Option<Attack>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(4242);
        let params = DsaParams::test_group_256();
        let mut h2 = HostSpec::new("h2").with_input("n", Value::Int(20));
        if let Some(a) = middle_attack {
            h2 = h2.malicious(a);
        }
        vec![
            Host::new(
                HostSpec::new("h1")
                    .trusted()
                    .with_input("n", Value::Int(10)),
                &params,
                &mut rng,
            ),
            Host::new(h2, &params, &mut rng),
            Host::new(
                HostSpec::new("h3")
                    .trusted()
                    .with_input("n", Value::Int(30)),
                &params,
                &mut rng,
            ),
        ]
    }

    fn reexec_config() -> ProtectionConfig {
        ProtectionConfig::new(Arc::new(ReExecutionChecker::new()))
    }

    #[test]
    fn honest_journey_is_clean() {
        let mut hosts = hosts_with(None);
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), reexec_config()),
            &log,
        )
        .unwrap();
        assert!(outcome.clean());
        assert_eq!(outcome.final_state.get_int("total"), Some(60));
        assert_eq!(outcome.path.len(), 3);
        // h2 untrusted: checked by h3. h1/h3 trusted: skipped.
        assert_eq!(outcome.verdicts.len(), 1);
        assert_eq!(outcome.verdicts[0].checked.as_str(), "h2");
        assert_eq!(outcome.verdicts[0].checker.as_str(), "h3");
    }

    #[test]
    fn tampering_detected_after_session() {
        let mut hosts = hosts_with(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(1),
        }));
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), reexec_config()),
            &log,
        )
        .unwrap();
        assert!(!outcome.clean());
        let fraud = outcome.fraud.expect("tampering must be detected");
        assert_eq!(fraud.culprit.as_str(), "h2");
        assert_eq!(fraud.detector.as_str(), "h3");
        assert_eq!(fraud.claimed_state.get_int("total"), Some(1));
        assert_eq!(
            fraud
                .reference_state
                .as_ref()
                .and_then(|s| s.get_int("total")),
            Some(30),
            "reference re-execution shows what h2 should have produced"
        );
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::FraudDetected { .. })),
            1
        );
    }

    #[test]
    fn skip_execution_detected() {
        let mut hosts = hosts_with(Some(Attack::SkipExecution));
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), reexec_config()),
            &log,
        )
        .unwrap();
        assert!(outcome.fraud.is_some(), "skipping execution changes no state — still caught because the session should have changed it");
    }

    #[test]
    fn forged_input_not_detected_matching_paper_limits() {
        let mut hosts = hosts_with(Some(Attack::ForgeInput {
            tag: "n".into(),
            value: Value::Int(-100),
        }));
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), reexec_config()),
            &log,
        )
        .unwrap();
        assert!(
            outcome.fraud.is_none(),
            "input forgery is consistent with the forged log — the paper's stated blind spot"
        );
        assert_eq!(outcome.final_state.get_int("total"), Some(-60)); // 10 - 100 + 30
    }

    #[test]
    fn after_task_checks_all_sessions_at_the_end() {
        let mut hosts = hosts_with(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(1),
        }));
        let log = EventLog::new();
        let config = reexec_config().moment(CheckMoment::AfterTask);
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), config),
            &log,
        )
        .unwrap();
        // The journey ran to completion (the drawback of AfterTask)...
        assert_eq!(outcome.path.len(), 3);
        // ...but the fraud is still found afterwards.
        let fraud = outcome.fraud.expect("tampering found at task end");
        assert_eq!(fraud.culprit.as_str(), "h2");
        // Compromised state propagated into later sessions.
        assert_eq!(outcome.final_state.get_int("total"), Some(31)); // 1 + 30
    }

    #[test]
    fn after_task_bulk_check_is_worker_invariant() {
        // The checkAfterTask pass runs through the parallel
        // `check_sessions` seam; worker count must not change the verdict
        // sequence.
        let run = |workers: usize| {
            let mut hosts = hosts_with(Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(1),
            }));
            let log = EventLog::new();
            let config = reexec_config()
                .moment(CheckMoment::AfterTask)
                .check_trusted_too()
                .check_workers(workers);
            run_framework_journey(
                &mut hosts,
                "h1",
                ProtectedAgent::new(sum_agent(), config),
                &log,
            )
            .unwrap()
        };
        let baseline = run(1);
        for workers in [0, 2, 4, 8] {
            let outcome = run(workers);
            assert_eq!(outcome.verdicts.len(), baseline.verdicts.len());
            for (a, b) in outcome.verdicts.iter().zip(&baseline.verdicts) {
                assert_eq!(a.checked, b.checked, "workers={workers}");
                assert_eq!(a.seq, b.seq, "workers={workers}");
                assert_eq!(a.passed(), b.passed(), "workers={workers}");
            }
            assert_eq!(
                outcome.fraud.as_ref().map(|f| f.culprit.clone()),
                baseline.fraud.as_ref().map(|f| f.culprit.clone()),
            );
        }
    }

    #[test]
    fn check_trusted_too_checks_everyone() {
        let mut hosts = hosts_with(None);
        let log = EventLog::new();
        let config = reexec_config().check_trusted_too();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), config),
            &log,
        )
        .unwrap();
        assert!(outcome.clean());
        // h1 checked by h2, h2 by h3, h3 by "owner" (final check) = 3.
        assert_eq!(outcome.verdicts.len(), 3);
    }

    #[test]
    fn rules_only_config_misses_what_rules_miss() {
        // Rule: total never negative. Tampering to a *positive* wrong value
        // passes the rule — the §4.1 "lower end of the protection scale".
        let mut hosts = hosts_with(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(12345),
        }));
        let rules = RuleSet::new().rule(
            "non-negative",
            Pred::cmp(CmpOp::Ge, Expr::var("total"), Expr::int(0)),
        );
        let config = ProtectionConfig::new(Arc::new(RuleChecker::new(rules)));
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), config),
            &log,
        )
        .unwrap();
        assert!(
            outcome.fraud.is_none(),
            "weak rules cannot see this tampering"
        );
        assert_eq!(outcome.final_state.get_int("total"), Some(12375));
    }

    #[test]
    fn signed_route_is_recorded_and_verifies() {
        let mut hosts = hosts_with(None);
        let mut dir = KeyDirectory::new();
        for h in &hosts {
            dir.register(h.id().as_str(), h.public_key().clone());
        }
        let log = EventLog::new();
        let outcome = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(sum_agent(), reexec_config()),
            &log,
        )
        .unwrap();
        assert_eq!(outcome.route.len(), 3);
        assert!(outcome.route.verify(&dir).is_ok());
        assert_eq!(
            outcome.route.hosts(),
            vec![HostId::new("h1"), HostId::new("h2"), HostId::new("h3")]
        );
    }

    #[test]
    fn unknown_host_is_an_error() {
        let mut hosts = hosts_with(None);
        let program = assemble("push \"nowhere\"\nmigrate").unwrap();
        let agent = AgentImage::new("lost", program, DataState::new());
        let log = EventLog::new();
        let err = run_framework_journey(
            &mut hosts,
            "h1",
            ProtectedAgent::new(agent, reexec_config()),
            &log,
        )
        .unwrap_err();
        assert!(matches!(err, FrameworkError::UnknownHost { .. }));
    }
}
