//! The attack taxonomy of the paper's Fig. 2, with the reduction arguments
//! of §2.2 encoded as queryable predicates.

use std::fmt;

/// One of the twelve attack areas against mobile agents (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AttackArea {
    /// 1. Spying out code.
    SpyingOutCode = 1,
    /// 2. Spying out data.
    SpyingOutData = 2,
    /// 3. Spying out control flow.
    SpyingOutControlFlow = 3,
    /// 4. Manipulation of code.
    ManipulationOfCode = 4,
    /// 5. Manipulation of data.
    ManipulationOfData = 5,
    /// 6. Manipulation of control flow.
    ManipulationOfControlFlow = 6,
    /// 7. Incorrect execution of code.
    IncorrectExecution = 7,
    /// 8. Masquerading of the host.
    Masquerading = 8,
    /// 9. Denial of execution.
    DenialOfExecution = 9,
    /// 10. Spying out interaction with other agents.
    SpyingOutInteraction = 10,
    /// 11. Manipulation of interaction with other agents.
    ManipulationOfInteraction = 11,
    /// 12. Returning wrong results of system calls issued by the agent.
    FalseSystemCallResults = 12,
}

impl AttackArea {
    /// All twelve areas in Fig. 2 order.
    pub const ALL: [AttackArea; 12] = [
        AttackArea::SpyingOutCode,
        AttackArea::SpyingOutData,
        AttackArea::SpyingOutControlFlow,
        AttackArea::ManipulationOfCode,
        AttackArea::ManipulationOfData,
        AttackArea::ManipulationOfControlFlow,
        AttackArea::IncorrectExecution,
        AttackArea::Masquerading,
        AttackArea::DenialOfExecution,
        AttackArea::SpyingOutInteraction,
        AttackArea::ManipulationOfInteraction,
        AttackArea::FalseSystemCallResults,
    ];

    /// The Fig. 2 number of this area.
    pub fn number(&self) -> u8 {
        *self as u8
    }

    /// The description as listed in Fig. 2.
    pub fn description(&self) -> &'static str {
        match self {
            AttackArea::SpyingOutCode => "spying out code",
            AttackArea::SpyingOutData => "spying out data",
            AttackArea::SpyingOutControlFlow => "spying out control flow",
            AttackArea::ManipulationOfCode => "manipulation of code",
            AttackArea::ManipulationOfData => "manipulation of data",
            AttackArea::ManipulationOfControlFlow => "manipulation of control flow",
            AttackArea::IncorrectExecution => "incorrect execution of code",
            AttackArea::Masquerading => "masquerading of the host",
            AttackArea::DenialOfExecution => "denial of execution",
            AttackArea::SpyingOutInteraction => "spying out interaction with other agents",
            AttackArea::ManipulationOfInteraction => {
                "manipulation of interaction with other agents"
            }
            AttackArea::FalseSystemCallResults => {
                "returning wrong results of system calls issued by the agent"
            }
        }
    }

    /// Membership in the "blackbox set" (areas 2 and 4–7): the reduction of
    /// [Hohl 1998] cited in §2.2 — preventing these prevents the remaining
    /// preventable attacks.
    pub fn in_blackbox_set(&self) -> bool {
        matches!(self.number(), 2 | 4..=7)
    }

    /// Whether the paper classifies the area as not preventable at all by
    /// software means (areas 9 and 12).
    pub fn unpreventable(&self) -> bool {
        matches!(
            self,
            AttackArea::DenialOfExecution | AttackArea::FalseSystemCallResults
        )
    }

    /// Whether a *reference-state* mechanism can, in principle, detect
    /// attacks from this area (§2.3: attacks "that differ in the resulting
    /// state from a reference state" — modification of data or control
    /// flow, incorrect execution, and code manipulation insofar as it
    /// yields a wrong state).
    pub fn detectable_by_reference_states(&self) -> bool {
        matches!(
            self,
            AttackArea::ManipulationOfCode
                | AttackArea::ManipulationOfData
                | AttackArea::ManipulationOfControlFlow
                | AttackArea::IncorrectExecution
        )
    }

    /// Whether the area is a pure *read* attack, which the paper's §4.2
    /// explicitly places outside the scheme ("these attacks do not leave
    /// traces in the agent state").
    pub fn is_read_attack(&self) -> bool {
        matches!(
            self,
            AttackArea::SpyingOutCode
                | AttackArea::SpyingOutData
                | AttackArea::SpyingOutControlFlow
                | AttackArea::SpyingOutInteraction
        )
    }
}

impl fmt::Display for AttackArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}. {}", self.number(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_fig2_order() {
        for (i, area) in AttackArea::ALL.iter().enumerate() {
            assert_eq!(area.number() as usize, i + 1);
        }
    }

    #[test]
    fn blackbox_set_is_2_and_4_to_7() {
        let set: Vec<u8> = AttackArea::ALL
            .iter()
            .filter(|a| a.in_blackbox_set())
            .map(|a| a.number())
            .collect();
        assert_eq!(set, vec![2, 4, 5, 6, 7]);
    }

    #[test]
    fn unpreventable_are_9_and_12() {
        let set: Vec<u8> = AttackArea::ALL
            .iter()
            .filter(|a| a.unpreventable())
            .map(|a| a.number())
            .collect();
        assert_eq!(set, vec![9, 12]);
    }

    #[test]
    fn reference_states_cover_modification_attacks() {
        let set: Vec<u8> = AttackArea::ALL
            .iter()
            .filter(|a| a.detectable_by_reference_states())
            .map(|a| a.number())
            .collect();
        assert_eq!(set, vec![4, 5, 6, 7]);
    }

    #[test]
    fn read_attacks_never_detectable() {
        for area in AttackArea::ALL {
            if area.is_read_attack() {
                assert!(
                    !area.detectable_by_reference_states(),
                    "{area} is a read attack and must not be claimed detectable"
                );
            }
        }
    }

    #[test]
    fn display_includes_number_and_text() {
        assert_eq!(AttackArea::SpyingOutData.to_string(), "2. spying out data");
        assert_eq!(
            AttackArea::FalseSystemCallResults.to_string(),
            "12. returning wrong results of system calls issued by the agent"
        );
    }
}
