//! The unified verification pipeline: one entry point for every
//! reference-state re-execution, with a shared, sharded replay cache.
//!
//! The paper's core loop — recompute a reference state from a recorded
//! input log and compare (Sec. 4) — was, before this module, written four
//! times: in [`crate::checker::ReExecutionChecker`], in
//! [`crate::protocol`]'s per-hop arrival check, in the owner-side final
//! check, and in the traces mechanism's audit. Each re-ran the same
//! `(program, start state, input log)` triple from scratch, and a fleet
//! driver running several mechanisms over one scenario re-ran *identical*
//! triples once per mechanism.
//!
//! [`VerificationPipeline`] collapses those call sites into one:
//!
//! * sessions are identified by program × start state × input log
//!   (the VM-level [`refstate_vm::SessionFingerprint`] for logs and
//!   labels; the cache key itself uses SHA-256 digests — see below),
//! * re-execution goes through the VM's pre-compiled fast path
//!   ([`refstate_vm::run_compiled_session`] over
//!   [`CompiledProgram::cached`]),
//! * results land in an `Arc`-shared, sharded [`ReplayCache`], so
//!   duplicate re-executions across hops, replicas, and mechanisms
//!   become lock-striped cache hits,
//! * every replay is counted in [`PipelineStats`], so fleet reports can
//!   prove the dedup (replays strictly below journeys × hops).
//!
//! Cache entries hold the *digest* of the reference state (plus the
//! session end and log-consumption flag), not the state itself: passing
//! checks compare digests, and the rare failing check re-derives the full
//! reference state once for diffing and fraud evidence.
//!
//! **Key collision resistance.** A cached verdict substitutes for a
//! replay, so the key must be as strong as the comparison it replaces:
//! the initial-state and input-log components — the data a malicious
//! host supplies — are SHA-256 digests, never the fast non-cryptographic
//! fingerprint (a host able to alias an already-verified honest session
//! could otherwise ride its cached verdict). The program component is
//! the compiled form's content hash, sound because every caller replays
//! its *own* trusted copy of the agent code.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use refstate_crypto::{sha256, Digest};
use refstate_store::{StateStore, StoreError};
use refstate_telemetry as telemetry;
use refstate_vm::{
    run_compiled_session, CompiledProgram, DataState, ExecConfig, InputLog, Program, ReplayIo,
    SessionEnd, SessionFingerprint, SessionOutcome, VmError,
};
use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use crate::checker::{state_diff, CheckOutcome, FailureReason};

/// What one replayed session reduced to: enough to judge any *passing*
/// check without keeping the state, and enough context to re-derive the
/// state on the rare failing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplaySummary {
    /// The re-execution completed.
    Ok {
        /// SHA-256 of the reference state's canonical encoding.
        state_digest: Digest,
        /// How the reference execution ended.
        end: SessionEnd,
        /// Whether the replay consumed the entire recorded input log
        /// (`false` = padded log; callers decide whether that is a
        /// failure — the checker says yes, the Vigna audit historically
        /// ignores it).
        log_consumed: bool,
    },
    /// The re-execution itself failed (tampered log, broken code),
    /// rendered.
    Failed(String),
}

impl Encode for ReplaySummary {
    fn encode(&self, w: &mut Writer) {
        match self {
            ReplaySummary::Ok {
                state_digest,
                end,
                log_consumed,
            } => {
                w.put_u8(0);
                state_digest.encode(w);
                end.encode(w);
                w.put_bool(*log_consumed);
            }
            ReplaySummary::Failed(error) => {
                w.put_u8(1);
                w.put_str(error);
            }
        }
    }
}

impl Decode for ReplaySummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(ReplaySummary::Ok {
                state_digest: Digest::decode(r)?,
                end: SessionEnd::decode(r)?,
                log_consumed: r.take_bool()?,
            }),
            1 => Ok(ReplaySummary::Failed(r.take_str()?.to_owned())),
            tag => Err(WireError::InvalidTag {
                context: "ReplaySummary",
                tag,
            }),
        }
    }
}

/// Number of lock-striped shards in a [`ReplayCache`].
const SHARDS: usize = 16;

/// Entries retained per shard before least-recently-used eviction kicks
/// in: at most `SHARDS × SHARD_CAP` memoized sessions (~64k summaries, a
/// few MB) live at once, so a long-running service cannot grow without
/// bound. Eviction costs only future hit-rate, never correctness — the
/// memo is a pure function of its key.
const SHARD_CAP: usize = 4096;

/// The memo key of one replay. The initial state and input log are
/// **attacker-suppliable** (they arrive in certificates and stored
/// traces), so their components are SHA-256 digests — a host must not be
/// able to craft a session that aliases an already-verified honest entry
/// and ride its cached verdict. The program component stays the compiled
/// form's content hash: every call site replays the *verifier's own*
/// copy of the agent code, never code an adversary chose. The step limit
/// participates because a replay that exhausts a small limit is not
/// evidence about a larger one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    code_hash: u128,
    initial: Digest,
    input: Digest,
    step_limit: u64,
}

impl Encode for CacheKey {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.code_hash.to_le_bytes());
        self.initial.encode(w);
        self.input.encode(w);
        w.put_u64(self.step_limit);
    }
}

impl Decode for CacheKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let code_hash = u128::from_le_bytes(r.take_raw(16)?.try_into().expect("16 bytes"));
        Ok(CacheKey {
            code_hash,
            initial: Digest::decode(r)?,
            input: Digest::decode(r)?,
            step_limit: r.take_u64()?,
        })
    }
}

/// One persisted cache entry: the full key followed by its summary.
fn encode_cache_record(key: &CacheKey, value: &ReplaySummary) -> Vec<u8> {
    let mut w = Writer::new();
    key.encode(&mut w);
    value.encode(&mut w);
    w.into_inner()
}

fn decode_cache_record(record: &[u8]) -> Result<(CacheKey, ReplaySummary), WireError> {
    let mut r = Reader::new(record);
    let key = CacheKey::decode(&mut r)?;
    let summary = ReplaySummary::decode(&mut r)?;
    r.finish()?;
    Ok((key, summary))
}

/// One lock-striped shard: the memo map plus a monotone use counter for
/// LRU eviction.
#[derive(Default)]
struct Shard {
    /// Each entry carries the tick of its last touch (insert or hit).
    entries: HashMap<CacheKey, (ReplaySummary, u64)>,
    tick: u64,
    /// Entries removed by the LRU bound since creation.
    evictions: u64,
    /// This shard's LRU bound; shards split the cache capacity exactly,
    /// so small capacities give some shards a larger share.
    cap: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// The `Arc`-shared memo of reference-state recomputations, sharded to
/// keep fleet workers off each other's locks and **LRU-bounded** per
/// shard: once a shard reaches its capacity, inserting a new session
/// evicts the least-recently-used one (an `O(shard capacity)` scan —
/// trivial next to the replay the insert just paid for). A long-lived
/// service therefore keeps its hottest sessions memoized instead of
/// periodically losing everything to a wholesale clear.
pub struct ReplayCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    /// Write-through target: every insert is appended to this namespace,
    /// so a persistent cache can be rebuilt hot on the next open.
    store: Option<(Arc<dyn StateStore>, String)>,
}

impl Default for ReplayCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayCache {
    /// The entry bound [`ReplayCache::new`] builds with.
    pub const DEFAULT_CAPACITY: usize = SHARDS * SHARD_CAP;

    /// An empty cache with the default shard count and capacity
    /// (`SHARDS × SHARD_CAP` entries).
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to **exactly** `capacity` entries total
    /// (minimum 1). Capacities below the default shard count get one
    /// shard per entry, so `with_capacity(4)` really holds 4 sessions —
    /// the bound is never silently inflated to a shard multiple; larger
    /// capacities split any remainder across the leading shards.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = SHARDS.min(capacity);
        let shards = (0..shard_count)
            .map(|i| {
                let cap = capacity / shard_count + usize::from(i < capacity % shard_count);
                Mutex::new(Shard {
                    cap,
                    ..Shard::default()
                })
            })
            .collect();
        ReplayCache {
            shards,
            capacity,
            store: None,
        }
    }

    /// A cache backed by `store`: previously persisted entries are loaded
    /// hot (in append order, so LRU age mirrors insertion history), and
    /// every future insert is written through to the `namespace` log.
    ///
    /// # Errors
    ///
    /// Propagates store failures; a persisted record that no longer
    /// decodes is reported as [`StoreError::Corrupt`].
    pub fn persistent(
        capacity: usize,
        store: Arc<dyn StateStore>,
        namespace: &str,
    ) -> Result<Self, StoreError> {
        let mut cache = Self::with_capacity(capacity);
        for (index, record) in store.appended(namespace)?.iter().enumerate() {
            let (key, summary) = decode_cache_record(record).map_err(|e| StoreError::Corrupt {
                segment: format!("log namespace {namespace}"),
                offset: index as u64,
                detail: e.to_string(),
            })?;
            cache.insert_resident(key, summary);
        }
        cache.store = Some((store, namespace.to_owned()));
        Ok(cache)
    }

    /// The hard bound on memoized sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The key components are already content hashes; fold the first
        // digest byte into a shard index directly.
        let mix = key.code_hash as usize ^ key.initial.as_bytes()[0] as usize;
        &self.shards[mix % self.shards.len()]
    }

    fn get(&self, key: &CacheKey) -> Option<ReplaySummary> {
        let mut shard = self.shard(key).lock();
        let tick = shard.touch();
        let (summary, last_used) = shard.entries.get_mut(key)?;
        *last_used = tick;
        Some(summary.clone())
    }

    fn insert(&self, key: CacheKey, value: ReplaySummary) {
        if let Some((store, namespace)) = &self.store {
            // Write-through before the in-memory insert: a crash between
            // the two loses only a memo the next open would re-derive.
            store
                .append(namespace, &encode_cache_record(&key, &value))
                .expect("replay cache write-through failed");
        }
        self.insert_resident(key, value);
    }

    /// The in-memory half of an insert (also the load path, which must
    /// not write records back through to the store).
    fn insert_resident(&self, key: CacheKey, value: ReplaySummary) {
        let mut shard = self.shard(&key).lock();
        let tick = shard.touch();
        if shard.entries.len() >= shard.cap && !shard.entries.contains_key(&key) {
            // Evict the least-recently-used entry to stay within bound.
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                shard.evictions += 1;
                telemetry::count("pipeline.cache_evict", 1);
            }
        }
        shard.entries.insert(key, (value, tick));
    }

    /// Number of memoized sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Returns `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries removed by the LRU bound since creation.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions).sum()
    }

    /// Per-shard occupancy and eviction counts, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                ShardStats {
                    entries: shard.entries.len(),
                    capacity: shard.cap,
                    evictions: shard.evictions,
                }
            })
            .collect()
    }
}

/// A point-in-time view of one [`ReplayCache`] shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Memoized sessions currently resident in the shard.
    pub entries: usize,
    /// The shard's LRU bound.
    pub capacity: usize,
    /// Entries removed by the LRU bound since creation.
    pub evictions: u64,
}

impl fmt::Debug for ReplayCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Monotone counters of one pipeline's work. Shared across every clone of
/// the pipeline handle, so a fleet run reads one aggregate at the end.
#[derive(Debug, Default)]
pub struct PipelineStats {
    hits: AtomicU64,
    misses: AtomicU64,
    replays: AtomicU64,
}

/// A point-in-time copy of [`PipelineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStatsSnapshot {
    /// [`VerificationPipeline::replay`] calls answered from the cache.
    pub hits: u64,
    /// [`VerificationPipeline::replay`] calls that required a real
    /// replay (cache miss, or the cache disabled). Full replays
    /// ([`VerificationPipeline::replay_full`]) perform no lookup and do
    /// not count here, so `hit_rate` reflects cache traffic alone.
    pub misses: u64,
    /// All VM re-executions performed: the misses plus the full replays
    /// (custom comparators, evidence re-derivations).
    pub replays: u64,
    /// Cache entries removed by the LRU bound (0 when uncached).
    pub evictions: u64,
    /// Memoized sessions resident when the snapshot was taken (0 when
    /// uncached).
    pub cache_entries: u64,
    /// The cache's hard bound on memoized sessions (0 when uncached).
    pub cache_capacity: u64,
}

impl PipelineStatsSnapshot {
    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The one verification pipeline every re-execution-based check funnels
/// through.
///
/// Cheap to share: drivers hold it as `Arc<VerificationPipeline>` and
/// hand clones to checkers, protocol configs, and journey contexts. An
/// *uncached* pipeline still uses the compiled fast path and counts its
/// replays — it simply memoizes nothing.
pub struct VerificationPipeline {
    cache: Option<Arc<ReplayCache>>,
    stats: PipelineStats,
}

impl fmt::Debug for VerificationPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerificationPipeline")
            .field("cached", &self.cache.is_some())
            .field("stats", &self.snapshot())
            .finish()
    }
}

impl Default for VerificationPipeline {
    fn default() -> Self {
        Self::uncached()
    }
}

impl VerificationPipeline {
    /// A pipeline without a replay cache: compiled fast path and replay
    /// counting only. The default everywhere a driver does not opt into
    /// sharing.
    pub fn uncached() -> Self {
        VerificationPipeline {
            cache: None,
            stats: PipelineStats::default(),
        }
    }

    /// A pipeline memoizing into `cache` (share the `Arc` across drivers
    /// to dedup their re-executions).
    pub fn with_cache(cache: Arc<ReplayCache>) -> Self {
        VerificationPipeline {
            cache: Some(cache),
            stats: PipelineStats::default(),
        }
    }

    /// Whether a replay cache is attached.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// The counters so far, plus the attached cache's occupancy facts.
    pub fn snapshot(&self) -> PipelineStatsSnapshot {
        let (evictions, cache_entries, cache_capacity) = match &self.cache {
            Some(cache) => (
                cache.evictions(),
                cache.len() as u64,
                cache.capacity() as u64,
            ),
            None => (0, 0, 0),
        };
        PipelineStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            replays: self.stats.replays.load(Ordering::Relaxed),
            evictions,
            cache_entries,
            cache_capacity,
        }
    }

    /// Replays one session (memoized): the reference-state digest, the
    /// session end, and whether the log was fully consumed.
    ///
    /// This is the hot path of every check. Replays run the compiled VM
    /// loop with outputs suppressed and tracing off; when a cache is
    /// attached, the SHA-256-backed cache key keys the memo and labels
    /// the replay's step-limit errors (an uncached pipeline skips the key
    /// entirely — there is no cache to poison and no key to compute).
    pub fn replay(
        &self,
        program: &Program,
        initial: &DataState,
        input: &InputLog,
        exec: &ExecConfig,
    ) -> ReplaySummary {
        // The probe timer covers key hashing plus the shard lookup — the
        // true cost of a cache hit; misses hand off to the replay timer.
        let probe = telemetry::Timer::start();
        let compiled = CompiledProgram::cached(program);
        let key = self.cache.as_ref().map(|cache| {
            let key = CacheKey {
                code_hash: compiled.code_hash(),
                initial: sha256(&to_wire(initial)),
                input: sha256(&to_wire(input)),
                step_limit: exec.step_limit,
            };
            (cache, key)
        });
        if let Some((cache, key)) = &key {
            if let Some(hit) = cache.get(key) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::count("pipeline.cache_hit", 1);
                probe.finish("verify.cache_hit", "pipeline");
                return hit;
            }
        }
        drop(probe);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count("pipeline.cache_miss", 1);
        // Cached replays carry the VM-level session fingerprint as their
        // step-limit label (computed on misses only — it exists so a
        // poisoned or runaway cache entry is attributable in fleet logs).
        let label = key.as_ref().map(|_| {
            SessionFingerprint::with_program_hash(compiled.code_hash(), initial, input).label()
        });
        let summary = match self.run_replay(&compiled, initial, input, exec, label) {
            Ok((outcome, log_consumed)) => ReplaySummary::Ok {
                state_digest: sha256(&to_wire(&outcome.state)),
                end: outcome.end,
                log_consumed,
            },
            Err(e) => ReplaySummary::Failed(e.to_string()),
        };
        if let Some((cache, key)) = key {
            cache.insert(key, summary.clone());
        }
        summary
    }

    /// Replays one session uncached and returns the full outcome — the
    /// slow entry point for custom state comparators and for fraud
    /// evidence, which need the reference *state*, not its digest.
    ///
    /// Performs no cache lookup, so it moves only the `replays` counter
    /// (never `misses` — the snapshot's hit rate reflects cache traffic
    /// alone).
    ///
    /// # Errors
    ///
    /// Propagates the replay's [`VmError`].
    pub fn replay_full(
        &self,
        program: &Program,
        initial: &DataState,
        input: &InputLog,
        exec: &ExecConfig,
    ) -> Result<(SessionOutcome, bool), VmError> {
        let compiled = CompiledProgram::cached(program);
        self.run_replay(&compiled, initial, input, exec, None)
    }

    /// Re-derives the full reference state of a session (for diffing and
    /// fraud evidence); `None` when the replay fails.
    pub fn reference_state(
        &self,
        program: &Program,
        initial: &DataState,
        input: &InputLog,
        exec: &ExecConfig,
    ) -> Option<DataState> {
        self.replay_full(program, initial, input, exec)
            .ok()
            .map(|(outcome, _)| outcome.state)
    }

    fn run_replay(
        &self,
        compiled: &CompiledProgram,
        initial: &DataState,
        input: &InputLog,
        exec: &ExecConfig,
        session_label: Option<String>,
    ) -> Result<(SessionOutcome, bool), VmError> {
        self.stats.replays.fetch_add(1, Ordering::Relaxed);
        telemetry::count("pipeline.replay", 1);
        let timer = telemetry::Timer::start();
        let mut replay = ReplayIo::new(input);
        let exec = ExecConfig {
            trace_mode: refstate_vm::TraceMode::Off,
            session_label,
            ..exec.clone()
        };
        let result = run_compiled_session(compiled, initial.clone(), &mut replay, &exec);
        timer.finish("verify.replay", "pipeline");
        let outcome = result?;
        Ok((outcome, replay.fully_consumed()))
    }

    /// The full exact-comparison session check: replay (memoized),
    /// compare the claimed resulting state by digest, optionally compare
    /// the claimed session end, and on any mismatch re-derive the full
    /// reference state once for the variable-level diff.
    ///
    /// `claimed_next` follows the checker convention: `None` skips the
    /// end check; `Some(None)` claims a halt; `Some(Some(host))` claims a
    /// migration.
    pub fn verify_session(
        &self,
        program: &Program,
        initial: &DataState,
        claimed: &DataState,
        input: &InputLog,
        claimed_next: Option<&Option<String>>,
        exec: &ExecConfig,
    ) -> CheckOutcome {
        self.verify_session_with_reference(program, initial, claimed, input, claimed_next, exec)
            .0
    }

    /// [`VerificationPipeline::verify_session`] that also hands back the
    /// full reference state when a failed check already materialized one
    /// (state mismatches and, on the uncached arm, every judged replay) —
    /// so fraud-evidence builders do not replay the session a second
    /// time. `None` on a pass, and for failures where no reference state
    /// exists (failed replays, padded logs).
    pub fn verify_session_with_reference(
        &self,
        program: &Program,
        initial: &DataState,
        claimed: &DataState,
        input: &InputLog,
        claimed_next: Option<&Option<String>>,
        exec: &ExecConfig,
    ) -> (CheckOutcome, Option<DataState>) {
        let _span = telemetry::span("verify.session", "pipeline");
        if self.cache.is_none() {
            // No memo to consult or feed: replay once and compare the
            // states directly — no fingerprinting, no hashing unless a
            // mismatch needs its digests for the failure report.
            return self.verify_session_direct(
                program,
                initial,
                claimed,
                input,
                claimed_next,
                exec,
            );
        }
        let (state_digest, end, log_consumed) = match self.replay(program, initial, input, exec) {
            ReplaySummary::Failed(error) => {
                return (
                    CheckOutcome::Failed(FailureReason::ReplayFailed { error }),
                    None,
                )
            }
            ReplaySummary::Ok {
                state_digest,
                end,
                log_consumed,
            } => (state_digest, end, log_consumed),
        };
        if !log_consumed {
            return (padded_log_failure(), None);
        }
        let claimed_digest = sha256(&to_wire(claimed));
        if claimed_digest != state_digest {
            // Rare path: re-derive the reference state once — it serves
            // both the variable-level diff and the caller's evidence.
            let reference = self.reference_state(program, initial, input, exec);
            let diff = reference
                .as_ref()
                .map(|reference| state_diff(claimed, reference))
                .unwrap_or_default();
            return (
                CheckOutcome::Failed(FailureReason::StateMismatch {
                    claimed: claimed_digest,
                    reference: state_digest,
                    diff,
                }),
                reference,
            );
        }
        if let Some(failure) = end_mismatch(claimed_next, &end) {
            // The end diverged but the state matched; the claimed state
            // *is* the reference state.
            return (failure, Some(claimed.clone()));
        }
        (CheckOutcome::Passed, None)
    }

    /// The uncached arm of the session check: identical verdicts,
    /// computed from one full replay and direct state comparison; the
    /// replayed state doubles as the returned reference on failure.
    fn verify_session_direct(
        &self,
        program: &Program,
        initial: &DataState,
        claimed: &DataState,
        input: &InputLog,
        claimed_next: Option<&Option<String>>,
        exec: &ExecConfig,
    ) -> (CheckOutcome, Option<DataState>) {
        let (outcome, log_consumed) = match self.replay_full(program, initial, input, exec) {
            Ok(result) => result,
            Err(e) => {
                return (
                    CheckOutcome::Failed(FailureReason::ReplayFailed {
                        error: e.to_string(),
                    }),
                    None,
                )
            }
        };
        if !log_consumed {
            return (padded_log_failure(), None);
        }
        if claimed != &outcome.state {
            return (
                CheckOutcome::Failed(FailureReason::StateMismatch {
                    claimed: sha256(&to_wire(claimed)),
                    reference: sha256(&to_wire(&outcome.state)),
                    diff: state_diff(claimed, &outcome.state),
                }),
                Some(outcome.state),
            );
        }
        if let Some(failure) = end_mismatch(claimed_next, &outcome.end) {
            return (failure, Some(outcome.state));
        }
        (CheckOutcome::Passed, None)
    }
}

/// The one place the padded-log policy lives: a log longer than the
/// program consumes is itself a lie about the session. Shared by both
/// `verify_session` arms and the custom-comparator checker path.
pub(crate) fn padded_log_failure() -> CheckOutcome {
    CheckOutcome::Failed(FailureReason::ReplayFailed {
        error: VmError::ReplayMismatch {
            pc: 0,
            detail: "recorded input log longer than the re-execution consumed".into(),
        }
        .to_string(),
    })
}

/// The one place the end-check convention lives: `None` skips the check;
/// `Some(None)` claims a halt; `Some(Some(host))` claims a migration.
pub(crate) fn end_mismatch(
    claimed_next: Option<&Option<String>>,
    reference_end: &SessionEnd,
) -> Option<CheckOutcome> {
    let claimed_next = claimed_next?;
    let reference_next = match reference_end {
        SessionEnd::Migrate(h) => Some(h.clone()),
        SessionEnd::Halt => None,
    };
    if claimed_next != &reference_next {
        return Some(CheckOutcome::Failed(FailureReason::EndMismatch {
            claimed: claimed_next.clone(),
            reference: reference_next,
        }));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_vm::{assemble, run_session, ScriptedIo, Value};

    /// One honest session of the doubling agent: (program, initial,
    /// input log, resulting state).
    fn session() -> (Program, DataState, InputLog, DataState) {
        let program = assemble(
            r#"
            input "price"
            store "quote"
            load "quote"
            push 2
            mul
            store "double"
            halt
        "#,
        )
        .unwrap();
        let mut io = ScriptedIo::new();
        io.push_input("price", Value::Int(50));
        let initial = DataState::new();
        let outcome =
            run_session(&program, initial.clone(), &mut io, &ExecConfig::default()).unwrap();
        (program, initial, outcome.input_log, outcome.state)
    }

    #[test]
    fn cached_replays_hit_after_first_miss() {
        let (program, initial, input, _resulting) = session();
        let cache = Arc::new(ReplayCache::new());
        let pipeline = VerificationPipeline::with_cache(cache.clone());
        let exec = ExecConfig::default();
        let first = pipeline.replay(&program, &initial, &input, &exec);
        let second = pipeline.replay(&program, &initial, &input, &exec);
        assert_eq!(first, second);
        let stats = pipeline.snapshot();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.replays, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn uncached_snapshot_reports_no_cache_facts() {
        let (program, initial, input, _resulting) = session();
        let pipeline = VerificationPipeline::uncached();
        pipeline.replay(&program, &initial, &input, &ExecConfig::default());
        let stats = pipeline.snapshot();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.cache_entries, 0);
        assert_eq!(stats.cache_capacity, 0);
    }

    #[test]
    fn uncached_pipeline_replays_every_time() {
        let (program, initial, input, _resulting) = session();
        let pipeline = VerificationPipeline::uncached();
        assert!(!pipeline.is_cached());
        let exec = ExecConfig::default();
        pipeline.replay(&program, &initial, &input, &exec);
        pipeline.replay(&program, &initial, &input, &exec);
        let stats = pipeline.snapshot();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.replays, 2);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn cache_is_shared_across_pipeline_handles() {
        let (program, initial, input, _resulting) = session();
        let cache = Arc::new(ReplayCache::new());
        let a = VerificationPipeline::with_cache(cache.clone());
        let b = VerificationPipeline::with_cache(cache);
        let exec = ExecConfig::default();
        a.replay(&program, &initial, &input, &exec);
        b.replay(&program, &initial, &input, &exec);
        assert_eq!(a.snapshot().replays, 1, "a replayed");
        assert_eq!(b.snapshot().replays, 0, "b hit a's entry");
        assert_eq!(b.snapshot().hits, 1);
    }

    /// Builds `count` distinct cacheable sessions of the same program
    /// (the initial state varies, so every session keys differently).
    fn distinct_sessions(count: usize) -> (Program, Vec<DataState>, InputLog) {
        let program = assemble(
            r#"
            input "price"
            store "quote"
            halt
        "#,
        )
        .unwrap();
        let mut io = ScriptedIo::new();
        io.push_input("price", Value::Int(50));
        let outcome =
            run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();
        let initials = (0..count)
            .map(|i| {
                let mut state = DataState::new();
                state.set("salt", Value::Int(i as i64));
                state
            })
            .collect();
        (program, initials, outcome.input_log)
    }

    #[test]
    fn replay_cache_is_lru_bounded() {
        let (program, initials, input) = distinct_sessions(64);
        let cache = Arc::new(ReplayCache::with_capacity(16));
        assert_eq!(cache.capacity(), 16);
        let pipeline = VerificationPipeline::with_cache(cache.clone());
        let exec = ExecConfig::default();
        for initial in &initials {
            pipeline.replay(&program, initial, &input, &exec);
        }
        // The bound holds no matter how many distinct sessions flowed
        // through; the closed ROADMAP item ("unbounded within a run").
        assert!(
            cache.len() <= cache.capacity(),
            "cache grew past its bound: {} > {}",
            cache.len(),
            cache.capacity()
        );
        assert_eq!(pipeline.snapshot().misses, 64);

        // 64 distinct sessions through a 16-entry cache must evict, and
        // the shard views must agree with the aggregates.
        let stats = pipeline.snapshot();
        assert_eq!(stats.evictions, cache.evictions());
        assert!(stats.evictions >= 48, "evictions = {}", stats.evictions);
        assert_eq!(stats.cache_entries as usize, cache.len());
        assert_eq!(stats.cache_capacity as usize, cache.capacity());
        let shards = cache.shard_stats();
        assert_eq!(shards.iter().map(|s| s.entries).sum::<usize>(), cache.len());
        assert_eq!(
            shards.iter().map(|s| s.evictions).sum::<u64>(),
            cache.evictions()
        );
        assert!(shards.iter().all(|s| s.entries <= s.capacity));

        // The most recent session is never the LRU victim: still a hit.
        let before = pipeline.snapshot().hits;
        pipeline.replay(&program, initials.last().unwrap(), &input, &exec);
        assert_eq!(pipeline.snapshot().hits, before + 1);

        // Re-replaying the full population hits for exactly the retained
        // entries and misses for the evicted ones — the stats (and
        // therefore the reported hit rate) stay consistent with the
        // bound.
        let cached = cache.len() as u64;
        let stats_before = pipeline.snapshot();
        for initial in &initials {
            pipeline.replay(&program, initial, &input, &exec);
        }
        let stats = pipeline.snapshot();
        // LRU churn during the sweep can evict entries the sweep itself
        // revisits later, so retained-entry hits are an upper bound.
        assert!(stats.hits - stats_before.hits <= cached);
        assert!(stats.misses > stats_before.misses);
        let total = stats.hits + stats.misses;
        assert!((stats.hit_rate() - stats.hits as f64 / total as f64).abs() < 1e-12);
    }

    #[test]
    fn with_capacity_is_honest_for_small_capacities() {
        // Regression: `div_ceil(SHARDS).max(1)` used to inflate any small
        // request to at least one entry per shard, so `with_capacity(4)`
        // really held 16 sessions while `capacity()` reported 16 ≠ 4.
        for requested in [1usize, 2, 3, 4, 7, 15, 16, 17, 32, 33, 100] {
            let cache = ReplayCache::with_capacity(requested);
            assert_eq!(
                cache.capacity(),
                requested,
                "capacity() reports the request"
            );
            let shards = cache.shard_stats();
            assert_eq!(
                shards.iter().map(|s| s.capacity).sum::<usize>(),
                requested,
                "shard bounds sum to the requested capacity"
            );
            assert!(shards.iter().all(|s| s.capacity >= 1));
        }
        assert_eq!(
            ReplayCache::with_capacity(0).capacity(),
            1,
            "capacity floor"
        );

        // And the bound actually holds under load for a tiny cache.
        let (program, initials, input) = distinct_sessions(64);
        let cache = Arc::new(ReplayCache::with_capacity(4));
        let pipeline = VerificationPipeline::with_cache(cache.clone());
        let exec = ExecConfig::default();
        for initial in &initials {
            pipeline.replay(&program, initial, &input, &exec);
        }
        assert!(
            cache.len() <= 4,
            "4-entry cache holds {} sessions",
            cache.len()
        );
        assert!(cache.evictions() >= 60);
    }

    #[test]
    fn persistent_cache_reloads_hot_from_its_store() {
        use refstate_store::MemoryStore;
        let (program, initials, input) = distinct_sessions(8);
        let store: Arc<dyn refstate_store::StateStore> = Arc::new(MemoryStore::new());
        let exec = ExecConfig::default();

        // First life: populate through the write-through cache.
        {
            let cache = ReplayCache::persistent(1024, store.clone(), "replay").unwrap();
            let pipeline = VerificationPipeline::with_cache(Arc::new(cache));
            for initial in &initials {
                pipeline.replay(&program, initial, &input, &exec);
            }
            let stats = pipeline.snapshot();
            assert_eq!(stats.misses, 8);
            assert_eq!(stats.hits, 0);
        }
        assert_eq!(store.appended("replay").unwrap().len(), 8);

        // Second life: the same store warms the new cache, so every
        // session hits without a single replay.
        let cache = ReplayCache::persistent(1024, store.clone(), "replay").unwrap();
        assert_eq!(cache.len(), 8);
        let pipeline = VerificationPipeline::with_cache(Arc::new(cache));
        for initial in &initials {
            let summary = pipeline.replay(&program, initial, &input, &exec);
            assert!(matches!(summary, ReplaySummary::Ok { .. }));
        }
        let stats = pipeline.snapshot();
        assert_eq!(stats.hits, 8, "warm cache answers everything");
        assert_eq!(stats.replays, 0);
        // Warm loads do not write records back through to the store.
        assert_eq!(store.appended("replay").unwrap().len(), 8);

        // Corrupt records are reported, not silently dropped.
        store.append("broken", b"not a cache record").unwrap();
        assert!(matches!(
            ReplayCache::persistent(16, store, "broken"),
            Err(refstate_store::StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn replay_summary_wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        let (program, initial, input, _resulting) = session();
        let pipeline = VerificationPipeline::uncached();
        let ok = pipeline.replay(&program, &initial, &input, &ExecConfig::default());
        let failed = ReplaySummary::Failed("step limit exceeded".into());
        for summary in [ok, failed] {
            assert_eq!(
                from_wire::<ReplaySummary>(&to_wire(&summary)).unwrap(),
                summary
            );
        }
    }

    #[test]
    fn replay_cache_eviction_prefers_stale_entries() {
        // Shard assignment is a pure function of the key, so probe for
        // sessions that share session 0's shard: with one entry per
        // shard, inserting a same-shard session evicts session 0 (its
        // re-replay misses).
        let (program, initials, input) = distinct_sessions(256);
        let exec = ExecConfig::default();
        let probe = VerificationPipeline::with_cache(Arc::new(ReplayCache::with_capacity(16)));
        let mut colliders: Vec<&DataState> = Vec::new();
        for initial in &initials[1..] {
            probe.replay(&program, &initials[0], &input, &exec); // (re)load s0
            let hits = probe.snapshot().hits;
            probe.replay(&program, initial, &input, &exec); // candidate
            probe.replay(&program, &initials[0], &input, &exec);
            if probe.snapshot().hits == hits {
                colliders.push(initial); // s0 was evicted: same shard
                if colliders.len() == 2 {
                    break;
                }
            }
        }
        let [a, b] = colliders[..] else {
            panic!("256 sessions over 16 shards must collide twice");
        };

        // Now give the shard room for two: the least-recently-used entry
        // is the victim, and a touch refreshes recency.
        let cache = Arc::new(ReplayCache::with_capacity(32));
        let pipeline = VerificationPipeline::with_cache(cache);
        pipeline.replay(&program, &initials[0], &input, &exec); // s0
        pipeline.replay(&program, a, &input, &exec); // shard now full
        pipeline.replay(&program, &initials[0], &input, &exec); // touch s0
        assert_eq!(pipeline.snapshot().hits, 1);
        pipeline.replay(&program, b, &input, &exec); // overflow: evicts a
        let hits = pipeline.snapshot().hits;
        pipeline.replay(&program, &initials[0], &input, &exec);
        assert_eq!(
            pipeline.snapshot().hits,
            hits + 1,
            "the touched entry survives"
        );
        let misses = pipeline.snapshot().misses;
        pipeline.replay(&program, a, &input, &exec);
        assert_eq!(
            pipeline.snapshot().misses,
            misses + 1,
            "the stale entry was the LRU victim"
        );
    }

    #[test]
    fn verify_session_passes_honest_and_diffs_tampered() {
        let (program, initial, input, resulting) = session();
        let pipeline = VerificationPipeline::with_cache(Arc::new(ReplayCache::new()));
        let exec = ExecConfig::default();
        assert_eq!(
            pipeline.verify_session(&program, &initial, &resulting, &input, Some(&None), &exec),
            CheckOutcome::Passed
        );
        let mut tampered = resulting.clone();
        tampered.set("double", Value::Int(9999));
        match pipeline.verify_session(&program, &initial, &tampered, &input, Some(&None), &exec) {
            CheckOutcome::Failed(FailureReason::StateMismatch { diff, .. }) => {
                assert_eq!(diff, vec![("double".into(), "9999".into(), "100".into())]);
            }
            other => panic!("expected StateMismatch, got {other:?}"),
        }
        // Wrong claimed end: state matches, end does not.
        match pipeline.verify_session(
            &program,
            &initial,
            &resulting,
            &input,
            Some(&Some("mallory".into())),
            &exec,
        ) {
            CheckOutcome::Failed(FailureReason::EndMismatch { claimed, reference }) => {
                assert_eq!(claimed, Some("mallory".into()));
                assert_eq!(reference, None);
            }
            other => panic!("expected EndMismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_session_flags_padded_log() {
        use refstate_vm::{InputKind, InputRecord};
        let (program, initial, input, resulting) = session();
        let padded: InputLog = input
            .records()
            .iter()
            .cloned()
            .chain([InputRecord {
                pc: 99,
                kind: InputKind::Tagged("price".into()),
                value: Value::Int(1),
            }])
            .collect();
        let pipeline = VerificationPipeline::uncached();
        assert!(matches!(
            pipeline.verify_session(
                &program,
                &initial,
                &resulting,
                &padded,
                None,
                &ExecConfig::default()
            ),
            CheckOutcome::Failed(FailureReason::ReplayFailed { .. })
        ));
    }

    #[test]
    fn step_limit_replays_carry_the_fingerprint_label() {
        let program = assemble("loop:\njump loop").unwrap();
        // The label exists to diagnose cache poisoning, so it rides along
        // exactly when a cache is attached.
        let pipeline = VerificationPipeline::with_cache(Arc::new(ReplayCache::new()));
        let exec = ExecConfig {
            step_limit: 16,
            ..Default::default()
        };
        let summary = pipeline.replay(&program, &DataState::new(), &InputLog::new(), &exec);
        match summary {
            ReplaySummary::Failed(error) => {
                assert!(
                    error.contains("session fp-"),
                    "step-limit error names the session: {error}"
                );
            }
            other => panic!("expected a failed replay, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_is_part_of_the_cache_key() {
        let (program, initial, input, _resulting) = session();
        let pipeline = VerificationPipeline::with_cache(Arc::new(ReplayCache::new()));
        let tight = ExecConfig {
            step_limit: 2,
            ..Default::default()
        };
        let roomy = ExecConfig::default();
        assert!(matches!(
            pipeline.replay(&program, &initial, &input, &tight),
            ReplaySummary::Failed(_)
        ));
        assert!(matches!(
            pipeline.replay(&program, &initial, &input, &roomy),
            ReplaySummary::Ok { .. }
        ));
        assert_eq!(pipeline.snapshot().replays, 2, "limits do not alias");
    }
}
