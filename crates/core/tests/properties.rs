//! Property tests for the owner-side bulk-check seam: outcome order (and
//! every verdict) must be invariant under the worker count for any mix
//! of passing, failing, and erroring sessions.

use proptest::prelude::*;
use refstate_core::{
    check_sessions_with, CheckContext, CheckOutcome, FailureReason, ReExecutionChecker,
    ReferenceData,
};
use refstate_vm::{
    assemble, run_session, DataState, ExecConfig, InputKind, InputRecord, Program, ScriptedIo,
    Value,
};

/// What one generated session should do under the checker.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SessionMode {
    /// Honest record: the check passes.
    Pass,
    /// Tampered resulting state: `StateMismatch`.
    Fail,
    /// Padded input log: the replay itself errors (`ReplayFailed`).
    Error,
}

/// One honest run of the doubling agent, then the mode's corruption.
fn session_data(mode: SessionMode, salt: i64) -> (Program, ReferenceData) {
    let program = assemble(
        r#"
        input "price"
        store "quote"
        load "quote"
        push 2
        mul
        store "double"
        halt
    "#,
    )
    .unwrap();
    let mut io = ScriptedIo::new();
    io.push_input("price", Value::Int(50 + salt));
    let initial = DataState::new();
    let outcome = run_session(&program, initial.clone(), &mut io, &ExecConfig::default()).unwrap();
    let mut resulting = outcome.state.clone();
    let mut input = outcome.input_log.clone();
    match mode {
        SessionMode::Pass => {}
        SessionMode::Fail => {
            resulting.set("double", Value::Int(-1000 - salt));
        }
        SessionMode::Error => {
            input.record(InputRecord {
                pc: 99,
                kind: InputKind::Tagged("price".into()),
                value: Value::Int(salt),
            });
        }
    }
    let data = ReferenceData {
        initial_state: Some(initial),
        resulting_state: Some(resulting),
        input: Some(input),
        execution_log: Some(outcome.trace.clone()),
        resources: None,
        claimed_next: Some(None),
    };
    (program, data)
}

fn mode_of(draw: u8) -> SessionMode {
    match draw % 3 {
        0 => SessionMode::Pass,
        1 => SessionMode::Fail,
        _ => SessionMode::Error,
    }
}

proptest! {
    /// Random mixed pass/fail/error batches, checked at every worker
    /// count in `0..=8` (`0` = one worker per core): the outcome vector
    /// must equal the serial baseline element for element, and each
    /// element must match its session's mode.
    #[test]
    fn check_sessions_is_worker_invariant_over_mixed_batches(
        draws in proptest::collection::vec(any::<u8>(), 1..14),
    ) {
        let modes: Vec<SessionMode> = draws.iter().map(|&d| mode_of(d)).collect();
        let sessions: Vec<(Program, ReferenceData)> = modes
            .iter()
            .enumerate()
            .map(|(i, &mode)| session_data(mode, i as i64))
            .collect();
        let contexts: Vec<CheckContext<'_>> = sessions
            .iter()
            .map(|(program, data)| CheckContext {
                program,
                data,
                exec: ExecConfig::default(),
            })
            .collect();
        let checker = ReExecutionChecker::new();
        let baseline = check_sessions_with(&checker, &contexts, 1);
        prop_assert_eq!(baseline.len(), contexts.len());
        for (i, (outcome, mode)) in baseline.iter().zip(&modes).enumerate() {
            let matches_mode = match mode {
                SessionMode::Pass => outcome.passed(),
                SessionMode::Fail => matches!(
                    outcome,
                    CheckOutcome::Failed(FailureReason::StateMismatch { .. })
                ),
                SessionMode::Error => matches!(
                    outcome,
                    CheckOutcome::Failed(FailureReason::ReplayFailed { .. })
                ),
            };
            prop_assert!(matches_mode, "session {} ({:?}) judged {:?}", i, mode, outcome);
        }
        for workers in 0..=8usize {
            let outcomes = check_sessions_with(&checker, &contexts, workers);
            prop_assert_eq!(
                &outcomes,
                &baseline,
                "worker count {} changed the verdict sequence",
                workers
            );
        }
    }

    /// The padded-log error must never be reordered into a different
    /// session's slot: a batch of all-distinct failure diffs keeps its
    /// per-session evidence aligned at every worker count.
    #[test]
    fn failing_batches_keep_their_evidence_aligned(count in 2usize..10, workers in 2usize..9) {
        let sessions: Vec<(Program, ReferenceData)> = (0..count)
            .map(|i| session_data(SessionMode::Fail, i as i64))
            .collect();
        let contexts: Vec<CheckContext<'_>> = sessions
            .iter()
            .map(|(program, data)| CheckContext {
                program,
                data,
                exec: ExecConfig::default(),
            })
            .collect();
        let checker = ReExecutionChecker::new();
        let outcomes = check_sessions_with(&checker, &contexts, workers);
        for (i, outcome) in outcomes.iter().enumerate() {
            let CheckOutcome::Failed(FailureReason::StateMismatch { diff, .. }) = outcome else {
                panic!("expected StateMismatch, got {outcome:?}");
            };
            // The forged value carries the session index: slot i must
            // hold session i's evidence.
            prop_assert_eq!(diff.len(), 1);
            prop_assert_eq!(&diff[0].1, &format!("{}", -1000 - i as i64));
        }
    }
}
