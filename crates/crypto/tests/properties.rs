//! Property tests for the crypto crate: signature correctness over random
//! messages, tamper sensitivity, envelope round-trips, and hash behaviour.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::{
    sha1, sha256, verify_batch, BatchEntry, DsaKeyPair, DsaParams, HmacSha256, KeyDirectory,
    Sha256, Signed,
};
use refstate_wire::{from_wire, to_wire};

/// One key pair in a small (fast) group, shared across cases.
fn keys() -> &'static DsaKeyPair {
    use std::sync::OnceLock;
    static KEYS: OnceLock<DsaKeyPair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xDEAD);
        DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Signatures over arbitrary messages always verify.
    #[test]
    fn sign_verify_round_trip(message in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = keys().sign(&message, &mut rng);
        prop_assert!(keys().public().verify(&message, &sig));
    }

    /// Any single-bit flip in the message invalidates the signature.
    #[test]
    fn bit_flip_breaks_signature(
        message in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in 0usize..128,
        flip_bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = keys().sign(&message, &mut rng);
        let mut tampered = message.clone();
        let idx = flip_byte % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(!keys().public().verify(&tampered, &sig));
    }

    /// Signature components round-trip through the wire format.
    #[test]
    fn signature_wire_round_trip(message in proptest::collection::vec(any::<u8>(), 0..64), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = keys().sign(&message, &mut rng);
        let back = from_wire::<refstate_crypto::Signature>(&to_wire(&sig)).unwrap();
        prop_assert_eq!(&back, &sig);
        prop_assert!(keys().public().verify(&message, &back));
    }

    /// Signed envelopes verify after a wire round-trip, and tampered
    /// payloads fail.
    #[test]
    fn envelope_integrity(payload in ".{0,64}", seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dir = KeyDirectory::new();
        dir.register("p", keys().public().clone());
        let env = Signed::seal(payload.clone(), "p", keys(), &mut rng);
        let back: Signed<String> = from_wire(&to_wire(&env)).unwrap();
        prop_assert!(back.verify(&dir).is_ok());
        let tampered = back.tampered_with(|s| s + "x");
        prop_assert!(tampered.verify(&dir).is_err());
    }

    /// SHA-256 incremental hashing equals one-shot for every split point.
    #[test]
    fn sha256_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct inputs give distinct digests (collision resistance smoke
    /// test at property scale).
    #[test]
    fn hashes_distinguish(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
        prop_assert_ne!(sha1(&a), sha1(&b));
    }

    /// HMAC verification accepts the genuine tag and rejects key or
    /// message changes.
    #[test]
    fn hmac_properties(key in proptest::collection::vec(any::<u8>(), 0..80), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
        let mut other_key = key.clone();
        other_key.push(0x01);
        prop_assert!(!HmacSha256::verify(&other_key, &msg, &tag));
        let mut other_msg = msg.clone();
        other_msg.push(0x01);
        prop_assert!(!HmacSha256::verify(&key, &other_msg, &tag));
    }

    /// Two different signers cannot validate each other's signatures.
    #[test]
    fn keys_are_not_interchangeable(message in proptest::collection::vec(any::<u8>(), 1..64), seed in 1u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let other = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
        let sig = other.sign(&message, &mut rng);
        prop_assert!(other.public().verify(&message, &sig));
        prop_assert!(!keys().public().verify(&message, &sig));
    }

    /// The table-accelerated `verify_fused` (fixed-base walks + one
    /// Montgomery multiplication) returns exactly what the schoolbook
    /// two-modexp `verify` returns — for genuine, tampered, and
    /// cross-signed messages alike.
    #[test]
    fn fused_verify_agrees_with_reference_verify(
        message in proptest::collection::vec(any::<u8>(), 0..256),
        tamper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = keys().sign(&message, &mut rng);
        let mut checked = message.clone();
        if tamper {
            checked.push(0x58);
        }
        let public = keys().public();
        prop_assert_eq!(
            public.verify_fused(&checked, &sig),
            public.verify(&checked, &sig)
        );
        if !tamper {
            prop_assert!(public.verify_fused(&checked, &sig));
        }
    }

    /// Signing runs `g^k` through the group's fixed-base table; the table
    /// must agree with the schoolbook generator exponentiation on random
    /// exponents — this is the DSA sign/verify round-trip reduced to its
    /// underlying claim.
    #[test]
    fn pow_g_agrees_with_schoolbook(seed in any::<u64>()) {
        use refstate_bigint::{random_in_unit_range, Uint};
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DsaParams::test_group_256();
        let e = random_in_unit_range(&mut rng, params.q());
        prop_assert_eq!(params.pow_g(&e), params.g().pow_mod(&e, params.p()));
        // Boundary exponents.
        prop_assert_eq!(params.pow_g(&Uint::zero()), Uint::one());
        prop_assert_eq!(params.pow_g(&Uint::one()), params.g().clone());
    }

    /// Sign/verify round-trips survive a wire round-trip of the *public
    /// key* — the decoded key rebuilds its acceleration tables from
    /// scratch and must accept the same signatures.
    #[test]
    fn decoded_key_round_trips_signatures(message in proptest::collection::vec(any::<u8>(), 0..128), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = keys().sign(&message, &mut rng);
        let decoded: refstate_crypto::DsaPublicKey =
            from_wire(&to_wire(keys().public())).unwrap();
        prop_assert!(decoded.verify_fused(&message, &sig));
        prop_assert!(decoded.verify(&message, &sig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `verify_batch` agrees with per-signature `verify` over a batch of
    /// 100 random signatures, a random subset of which is corrupted (in
    /// message, signature bytes, or key attribution).
    #[test]
    fn batch_verify_equals_per_signature_verify(
        seed in any::<u64>(),
        corrupt_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let signer = keys();
        let stranger = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
        let mut messages: Vec<Vec<u8>> = Vec::with_capacity(100);
        let mut sigs = Vec::with_capacity(100);
        for (i, corrupt) in corrupt_mask.iter().enumerate() {
            let message = format!("batch message {i} of seed {seed}").into_bytes();
            let sig = if *corrupt && i % 2 == 0 {
                // Corruption A: signature by the wrong key.
                stranger.sign(&message, &mut rng)
            } else if *corrupt {
                // Corruption B: signature over a different message.
                signer.sign(b"something else entirely", &mut rng)
            } else {
                signer.sign(&message, &mut rng)
            };
            messages.push(message);
            sigs.push(sig);
        }
        let entries: Vec<BatchEntry<'_>> = messages
            .iter()
            .zip(&sigs)
            .map(|(message, signature)| BatchEntry {
                key: signer.public(),
                message,
                signature,
            })
            .collect();
        let batch = verify_batch(&entries);
        let singles: Vec<bool> = messages
            .iter()
            .zip(&sigs)
            .map(|(m, s)| signer.public().verify(m, s))
            .collect();
        prop_assert_eq!(batch, singles);
    }
}
