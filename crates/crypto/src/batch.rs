//! Deferred signature verification: queue checks during a journey, settle
//! them in one batch at the end.
//!
//! The paper's §5.1 protocol verifies every session certificate *on
//! arrival* — one DSA verification (two modexps) per hop, which dominates
//! the protected-journey p50. A [`VerificationQueue`] trades timeliness
//! for throughput: hops defer their signature checks and the journey
//! settles the whole queue in one [`flush`](VerificationQueue::flush)
//! through [`crate::verify_batch`], where every check is two fixed-base
//! table walks plus one Montgomery multiplication
//! ([`crate::DsaPublicKey::verify_fused`]) — the repeated signers in a
//! journey's queue hit the same cached `y`-tables back to back.
//! Re-execution checks still run per hop — only the *authenticity* checks
//! move to the end, so a forged certificate is caught at journey end
//! instead of at the next hop (the deferred variant's documented
//! trade-off).

use refstate_telemetry as telemetry;
use refstate_wire::{to_wire, Encode};

use crate::dsa::{verify_batch, BatchEntry, Signature};
use crate::envelope::Signed;
use crate::keydir::KeyDirectory;

/// One deferred signature check: who claimed to sign which bytes.
#[derive(Debug, Clone)]
pub struct DeferredSignature {
    /// The claimed signer (looked up in the [`KeyDirectory`] at flush).
    pub signer: String,
    /// The canonical bytes the signature covers.
    pub message: Vec<u8>,
    /// The signature to verify.
    pub signature: Signature,
}

/// An accumulating queue of signature checks, settled in bulk.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory, Signed, VerificationQueue};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
/// let mut dir = KeyDirectory::new();
/// dir.register("h1", keys.public().clone());
///
/// let mut queue = VerificationQueue::new();
/// queue.defer_signed(&Signed::seal(7u64, "h1", &keys, &mut rng));
/// queue.defer_signed(&Signed::seal(8u64, "h1", &keys, &mut rng));
/// let verdicts = queue.flush(&dir);
/// assert!(verdicts.iter().all(|(_, ok)| *ok));
/// assert!(queue.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VerificationQueue {
    deferred: Vec<DeferredSignature>,
}

impl VerificationQueue {
    /// An empty queue.
    pub fn new() -> Self {
        VerificationQueue::default()
    }

    /// Defers one raw signature check.
    pub fn defer(&mut self, signer: impl Into<String>, message: Vec<u8>, signature: Signature) {
        self.deferred.push(DeferredSignature {
            signer: signer.into(),
            message,
            signature,
        });
    }

    /// Defers the check of a [`Signed`] envelope (signer, canonical payload
    /// bytes, and signature are lifted out of the envelope).
    pub fn defer_signed<T: Encode>(&mut self, signed: &Signed<T>) {
        self.defer(
            signed.signer(),
            to_wire(signed.payload()),
            signed.signature().clone(),
        );
    }

    /// Moves every deferred check out of `other` onto the end of this
    /// queue, preserving deferral order. Lets a service merge per-journey
    /// queues into one per-tick queue and settle them in a single
    /// [`flush`](Self::flush) batch.
    pub fn append(&mut self, other: &mut VerificationQueue) {
        self.deferred.append(&mut other.deferred);
    }

    /// Number of deferred checks.
    pub fn len(&self) -> usize {
        self.deferred.len()
    }

    /// Returns `true` when nothing is deferred.
    pub fn is_empty(&self) -> bool {
        self.deferred.is_empty()
    }

    /// Settles every deferred check against `directory` in one batch,
    /// draining the queue.
    ///
    /// Returns the drained items paired with their verdicts, in deferral
    /// order. A signer missing from the directory fails its check, exactly
    /// as [`Signed::verify`] would report [`crate::VerifyError::UnknownSigner`].
    pub fn flush(&mut self, directory: &KeyDirectory) -> Vec<(DeferredSignature, bool)> {
        let _span = telemetry::span("crypto.flush", "crypto");
        telemetry::observe("crypto.flush_size", self.deferred.len() as u64);
        let items = std::mem::take(&mut self.deferred);
        // Unknown signers cannot enter the batch; pre-mark them failed.
        let keys: Vec<Option<&crate::DsaPublicKey>> = items
            .iter()
            .map(|item| directory.lookup(&item.signer))
            .collect();
        let entries: Vec<BatchEntry<'_>> = items
            .iter()
            .zip(&keys)
            .filter_map(|(item, key)| {
                key.map(|key| BatchEntry {
                    key,
                    message: &item.message,
                    signature: &item.signature,
                })
            })
            .collect();
        let mut batch_verdicts = verify_batch(&entries).into_iter();
        items
            .into_iter()
            .zip(keys)
            .map(|(item, key)| {
                let ok = match key {
                    Some(_) => batch_verdicts.next().expect("one verdict per batch entry"),
                    None => false,
                };
                (item, ok)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::{DsaKeyPair, DsaParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DsaKeyPair, KeyDirectory, StdRng) {
        let mut rng = StdRng::seed_from_u64(55);
        let params = DsaParams::generate(128, 48, &mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        dir.register("h1", keys.public().clone());
        (keys, dir, rng)
    }

    #[test]
    fn flush_matches_eager_verification() {
        let (keys, dir, mut rng) = setup();
        let good = Signed::seal(1u64, "h1", &keys, &mut rng);
        let tampered = Signed::seal(2u64, "h1", &keys, &mut rng).tampered_with(|v| v + 1);
        let ghost = Signed::seal(3u64, "ghost", &keys, &mut rng);

        let mut queue = VerificationQueue::new();
        queue.defer_signed(&good);
        queue.defer_signed(&tampered);
        queue.defer_signed(&ghost);
        assert_eq!(queue.len(), 3);

        let verdicts = queue.flush(&dir);
        assert!(queue.is_empty());
        let expected = [
            good.verify(&dir).is_ok(),
            tampered.verify(&dir).is_ok(),
            ghost.verify(&dir).is_ok(),
        ];
        assert_eq!(
            verdicts.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
            expected
        );
        assert_eq!(verdicts[1].0.signer, "h1");
        assert_eq!(verdicts[2].0.signer, "ghost");
    }

    #[test]
    fn flush_of_empty_queue_is_empty() {
        let (_, dir, _) = setup();
        let mut queue = VerificationQueue::new();
        assert!(queue.flush(&dir).is_empty());
    }
}
