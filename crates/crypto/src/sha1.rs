//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is cryptographically broken for collision resistance; it is
//! included because the paper's 2000-era protocol stack used it, and the
//! workspace defaults to [SHA-256](crate::Sha256) everywhere security
//! matters. The trace-audit baseline offers SHA-1 only for measurement
//! parity with the original system.

use crate::digest::Digest;

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use refstate_crypto::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = data.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.buffer[self.buffer_len] = 0x80;
        let start = self.buffer_len + 1;
        if start > 56 {
            for b in &mut self.buffer[start..] {
                *b = 0;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0; 64];
        } else {
            for b in &mut self.buffer[start..56] {
                *b = 0;
            }
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(&out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
///
/// ```
/// let d = refstate_crypto::sha1(b"");
/// assert_eq!(d.to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
/// ```
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha1(input).to_hex(), expect);
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        for split in [0usize, 1, 63, 64, 65, 150, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_is_20_bytes() {
        assert_eq!(sha1(b"x").len(), 20);
    }
}
