//! Cryptographic primitives for reference-state protection.
//!
//! Hohl's reference-state protocols authenticate agent states, inputs, and
//! traces with digital signatures and secure hashes; the paper's
//! measurements used DSA with 512-bit keys from a pure-Java provider
//! (IAIK-JCE). No cryptography crate exists in the sanctioned offline
//! dependency set, so this crate implements the required primitives from
//! scratch on top of [`refstate_bigint`]:
//!
//! * [`Sha1`] and [`Sha256`] — FIPS 180-4 hash functions,
//! * [`HmacSha256`] — HMAC (FIPS 198-1) over SHA-256,
//! * [`DsaParams`] / [`DsaKeyPair`] / [`Signature`] — FIPS 186-style DSA
//!   with the paper's 512-bit group plus 256-bit (fast tests) and 1024-bit
//!   groups, all precomputed by `src/bin/genparams.rs`,
//! * [`Signed`] — a signed envelope over any wire-encodable payload,
//! * [`KeyDirectory`] — the public-key registry hosts use to verify each
//!   other's statements,
//! * [`VerificationQueue`] / [`verify_batch`] — deferred signature checks
//!   settled in one batch of fused double exponentiations (the protocol's
//!   journey-end verification path).
//!
//! # Security note
//!
//! This is a research reproduction: the primitives are correct and pass the
//! published test vectors, but they are not constant-time and have not been
//! audited. Do not reuse outside this workspace.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use refstate_crypto::{DsaKeyPair, DsaParams};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let params = DsaParams::test_group_256();
//! let keys = DsaKeyPair::generate(&params, &mut rng);
//! let sig = keys.sign(b"agent state", &mut rng);
//! assert!(keys.public().verify(b"agent state", &sig));
//! assert!(!keys.public().verify(b"tampered state", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod digest;
mod dsa;
mod envelope;
mod groups;
mod hmac;
mod keydir;
mod sha1;
mod sha256;

pub use batch::{DeferredSignature, VerificationQueue};
pub use digest::Digest;
pub use dsa::{
    verify_batch, BatchEntry, DsaKeyPair, DsaParams, DsaPublicKey, Signature, SignatureError,
};
pub use envelope::{Signed, VerifyError};
pub use hmac::HmacSha256;
pub use keydir::KeyDirectory;
pub use sha1::{sha1, Sha1};
pub use sha256::{sha256, Sha256};
