//! One-off generator for the precomputed DSA groups in `groups.rs`.
//!
//! Run with `cargo run -p refstate-crypto --release --bin genparams`.
//! The output is Rust source pasted into `src/groups.rs`; the seeds are
//! fixed so the generation is reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::DsaParams;

fn emit(name: &str, p_bits: usize, q_bits: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DsaParams::generate(p_bits, q_bits, &mut rng);
    println!("// {name}: {p_bits}-bit p, {q_bits}-bit q (seed {seed})");
    println!(
        "const {}_P: &str = \"{}\";",
        name.to_uppercase(),
        params.p().to_hex()
    );
    println!(
        "const {}_Q: &str = \"{}\";",
        name.to_uppercase(),
        params.q().to_hex()
    );
    println!(
        "const {}_G: &str = \"{}\";",
        name.to_uppercase(),
        params.g().to_hex()
    );
    println!();
}

fn main() {
    emit("group256", 256, 128, 0x5ef5_7a7e_0001);
    emit("group512", 512, 160, 0x5ef5_7a7e_0002);
    emit("group1024", 1024, 160, 0x5ef5_7a7e_0003);
}
