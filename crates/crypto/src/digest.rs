//! Fixed-size digest values.

use std::fmt;

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

/// A hash digest of up to 32 bytes (SHA-1 produces 20, SHA-256 produces 32).
///
/// Digests identify agent states, traces, and inputs throughout the
/// workspace; they compare in constant structure (byte-wise `Eq`) and render
/// as lowercase hex.
///
/// # Examples
///
/// ```
/// use refstate_crypto::sha256;
///
/// let d = sha256(b"abc");
/// assert!(d.to_hex().starts_with("ba7816bf"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    len: u8,
    bytes: [u8; 32],
}

impl Digest {
    /// Wraps digest bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "digest length exceeds 32 bytes");
        let mut out = [0u8; 32];
        out[..bytes.len()].copy_from_slice(bytes);
        Digest {
            len: bytes.len() as u8,
            bytes: out,
        }
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Returns the digest length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` for the (unused in practice) zero-length digest.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Renders lowercase hex.
    pub fn to_hex(&self) -> String {
        self.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Returns an abbreviated hex form (first 8 chars) for logs.
    pub fn short(&self) -> String {
        let h = self.to_hex();
        h.chars().take(8).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.take_bytes()?;
        if bytes.len() > 32 {
            return Err(WireError::InvalidValue {
                context: "digest length",
            });
        }
        Ok(Digest::new(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn construction_and_access() {
        let d = Digest::new(&[1, 2, 3]);
        assert_eq!(d.as_bytes(), &[1, 2, 3]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.to_hex(), "010203");
        assert_eq!(d.short(), "010203");
    }

    #[test]
    fn equality_is_content_based() {
        assert_eq!(Digest::new(&[7; 20]), Digest::new(&[7; 20]));
        assert_ne!(Digest::new(&[7; 20]), Digest::new(&[7; 32]));
        assert_ne!(Digest::new(&[7; 20]), Digest::new(&[8; 20]));
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn oversize_panics() {
        let _ = Digest::new(&[0; 33]);
    }

    #[test]
    fn wire_round_trip() {
        let d = Digest::new(&[9; 32]);
        assert_eq!(from_wire::<Digest>(&to_wire(&d)).unwrap(), d);
    }

    #[test]
    fn wire_rejects_oversize() {
        let mut w = refstate_wire::Writer::new();
        w.put_bytes(&[0u8; 33]);
        assert!(from_wire::<Digest>(&w.into_inner()).is_err());
    }

    #[test]
    fn display_matches_hex() {
        let d = Digest::new(&[0xab, 0xcd]);
        assert_eq!(format!("{d}"), "abcd");
        assert_eq!(format!("{d:?}"), "Digest(abcd)");
    }
}
