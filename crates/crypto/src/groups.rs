//! Precomputed DSA groups.
//!
//! Prime-pair search is expensive (minutes in debug builds for 1024-bit
//! moduli), so the three groups the workspace uses are generated once by
//! `src/bin/genparams.rs` with fixed seeds and embedded here as hex
//! constants. `DsaParams::from_trusted` re-checks the group structure in
//! debug builds; `validates_against_generation` below re-derives each group
//! from its seed.

use std::sync::OnceLock;

use refstate_bigint::Uint;

use crate::dsa::DsaParams;

// group256: 256-bit p, 128-bit q (seed 104408415076353)
const GROUP256_P: &str = "8208ff409a5e5765c917276c94cd84e2e76c1c982fd5d6c3beb9c35f7066f045";
const GROUP256_Q: &str = "bf1a23446c6ed7d090ac71c57d4c1f19";
const GROUP256_G: &str = "a89040af287f35dbe104c0a755e06e49d4cefb4b6565a6e7140dfea15eb070c";

// group512: 512-bit p, 160-bit q (seed 104408415076354)
const GROUP512_P: &str = "859b6df9c1cabbefab76e4c75ecb2478ff2e8cf36eec6aee3738e717eb7fa12e7afa39a73cb3f0f884a2dbcd669cf0fabea85491373b0fc65e53b6e282f89cf3";
const GROUP512_Q: &str = "a103bb1bd5075dea1352e7f840461eb4b0b51ccb";
const GROUP512_G: &str = "f874a61ececcf4aa293b753275ccc1b1aafe33142a83599b8731084d62403e3cd31215026810750a83e4be5347d7f3d5d6fe6493e9f083718eb006db739ff47";

// group1024: 1024-bit p, 160-bit q (seed 104408415076355)
const GROUP1024_P: &str = "8fadd9969b0fa8d8dc2a397d81793e95417ebc6dd0f6844fbbbe5066efdb5a6f50280e60f7329e89bc880b5a45b807609e82acf2f19d1c8a5f015088a3c2426e2e15a8074fb0facdffe4690230df71085c67cc81bda89457b4b54df9a5f7dade0145bd47c9c3aa9549c4ba6fa2ee2b3c56cc82af87c89f20131c61d975bbe7b5";
const GROUP1024_Q: &str = "9cdbdf2c4ddece74990b44f5e0126db7ef3fc5e7";
const GROUP1024_G: &str = "8caf2b18710b5bc44b3cf6062aede352f426fcd7523ab9ba311ef1cf232c25fce82ceefc2479e7039c6a21d1ac6a8e237c827c5014233faa6c5ce930ecd82142aacd27572246c55f7ef64828d7d5315c2fad57d1cbb839a51bc704e97b0fc6b7e698bcfced320d778ca147bd292c5d201718095c5fa884c60e6e66fe384c51f7";

fn parse_group(p: &str, q: &str, g: &str) -> DsaParams {
    DsaParams::from_trusted(
        Uint::from_hex(p).expect("embedded constant"),
        Uint::from_hex(q).expect("embedded constant"),
        Uint::from_hex(g).expect("embedded constant"),
    )
}

impl DsaParams {
    /// A 256-bit group (128-bit `q`) used by fast unit tests.
    ///
    /// ```
    /// let g = refstate_crypto::DsaParams::test_group_256();
    /// assert_eq!(g.p().bit_len(), 256);
    /// assert_eq!(g.q().bit_len(), 128);
    /// ```
    pub fn test_group_256() -> DsaParams {
        static CELL: OnceLock<DsaParams> = OnceLock::new();
        CELL.get_or_init(|| parse_group(GROUP256_P, GROUP256_Q, GROUP256_G))
            .clone()
    }

    /// The paper's measurement configuration: a 512-bit group (160-bit `q`),
    /// matching the "DSA using a key length of 512 bits" in §5.3.
    pub fn group_512() -> DsaParams {
        static CELL: OnceLock<DsaParams> = OnceLock::new();
        CELL.get_or_init(|| parse_group(GROUP512_P, GROUP512_Q, GROUP512_G))
            .clone()
    }

    /// A 1024-bit group (160-bit `q`) for the key-length ablation bench.
    pub fn group_1024() -> DsaParams {
        static CELL: OnceLock<DsaParams> = OnceLock::new();
        CELL.get_or_init(|| parse_group(GROUP1024_P, GROUP1024_Q, GROUP1024_G))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_bigint::is_probable_prime;

    fn check_group(params: &DsaParams, p_bits: usize, q_bits: usize) {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(params.p().bit_len(), p_bits);
        assert_eq!(params.q().bit_len(), q_bits);
        assert!(is_probable_prime(params.p(), 16, &mut rng));
        assert!(is_probable_prime(params.q(), 16, &mut rng));
        let p_minus_1 = params.p() - &Uint::one();
        assert!(p_minus_1.rem(params.q()).is_zero());
        assert!(params.g().pow_mod(params.q(), params.p()).is_one());
    }

    #[test]
    fn group_256_is_valid() {
        check_group(&DsaParams::test_group_256(), 256, 128);
    }

    #[test]
    fn group_512_is_valid() {
        check_group(&DsaParams::group_512(), 512, 160);
    }

    #[test]
    fn group_1024_is_valid() {
        check_group(&DsaParams::group_1024(), 1024, 160);
    }

    #[test]
    fn groups_are_distinct() {
        assert_ne!(DsaParams::test_group_256(), DsaParams::group_512());
        assert_ne!(DsaParams::group_512(), DsaParams::group_1024());
    }

    #[test]
    fn sign_verify_with_embedded_groups() {
        use crate::dsa::DsaKeyPair;
        let mut rng = StdRng::seed_from_u64(5);
        for params in [DsaParams::test_group_256(), DsaParams::group_512()] {
            let keys = DsaKeyPair::generate(&params, &mut rng);
            let sig = keys.sign(b"embedded group check", &mut rng);
            assert!(keys.public().verify(b"embedded group check", &sig));
            assert!(!keys.public().verify(b"other message", &sig));
        }
    }
}
