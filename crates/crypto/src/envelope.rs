//! Signed envelopes: a payload, the signer's name, and a DSA signature over
//! the payload's canonical encoding.

use std::error::Error;
use std::fmt;

use rand::RngCore;
use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use crate::dsa::{DsaKeyPair, Signature};
use crate::keydir::KeyDirectory;

/// Why envelope verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The claimed signer has no key in the directory.
    UnknownSigner {
        /// The claimed signer name.
        signer: String,
    },
    /// The signature does not match the payload bytes.
    BadSignature {
        /// The claimed signer name.
        signer: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownSigner { signer } => {
                write!(f, "no public key registered for signer {signer:?}")
            }
            VerifyError::BadSignature { signer } => {
                write!(f, "signature by {signer:?} does not verify")
            }
        }
    }
}

impl Error for VerifyError {}

/// A payload bound to its signer by a DSA signature over the canonical
/// wire encoding.
///
/// The protocols exchange `Signed<SessionCertificate>`,
/// `Signed<StateDigest>`, and similar values; the generic envelope keeps the
/// sign-then-verify discipline in one place.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory, Signed};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
/// let mut dir = KeyDirectory::new();
/// dir.register("host-1", keys.public().clone());
///
/// let env = Signed::seal("price: 100".to_string(), "host-1", &keys, &mut rng);
/// assert!(env.verify(&dir).is_ok());
/// assert_eq!(env.payload(), "price: 100");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signed<T> {
    payload: T,
    signer: String,
    signature: Signature,
}

impl<T: Encode> Signed<T> {
    /// Signs `payload` with `keys`, attributing it to `signer`.
    pub fn seal(
        payload: T,
        signer: impl Into<String>,
        keys: &DsaKeyPair,
        rng: &mut dyn RngCore,
    ) -> Self {
        let bytes = to_wire(&payload);
        let signature = keys.sign(&bytes, rng);
        Signed {
            payload,
            signer: signer.into(),
            signature,
        }
    }

    /// Verifies the signature against the signer's directory key.
    ///
    /// # Errors
    ///
    /// [`VerifyError::UnknownSigner`] if the signer is not registered,
    /// [`VerifyError::BadSignature`] if the payload or signature was
    /// tampered with.
    pub fn verify(&self, directory: &KeyDirectory) -> Result<(), VerifyError> {
        let key = directory
            .lookup(&self.signer)
            .ok_or_else(|| VerifyError::UnknownSigner {
                signer: self.signer.clone(),
            })?;
        let bytes = to_wire(&self.payload);
        // The fused double exponentiation: same accept/reject behaviour
        // as the two-modexp `DsaPublicKey::verify` (property-tested) at
        // ~60% of its cost.
        if key.verify_fused(&bytes, &self.signature) {
            Ok(())
        } else {
            Err(VerifyError::BadSignature {
                signer: self.signer.clone(),
            })
        }
    }

    /// Verifies and unwraps in one step.
    ///
    /// # Errors
    ///
    /// Same as [`Signed::verify`].
    pub fn open(self, directory: &KeyDirectory) -> Result<T, VerifyError> {
        self.verify(directory)?;
        Ok(self.payload)
    }
}

impl<T> Signed<T> {
    /// The (unverified) payload. Callers that care about authenticity must
    /// call [`Signed::verify`] first.
    pub fn payload(&self) -> &T {
        &self.payload
    }

    /// The claimed signer name.
    pub fn signer(&self) -> &str {
        &self.signer
    }

    /// The raw signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Maps the payload while keeping signer and signature — only useful for
    /// *tests and attack simulations* that need to produce tampered
    /// envelopes.
    pub fn tampered_with<U>(self, f: impl FnOnce(T) -> U) -> Signed<U> {
        Signed {
            payload: f(self.payload),
            signer: self.signer,
            signature: self.signature,
        }
    }
}

impl<T: Encode> Encode for Signed<T> {
    fn encode(&self, w: &mut Writer) {
        self.payload.encode(w);
        w.put_str(&self.signer);
        self.signature.encode(w);
    }
}

impl<T: Decode> Decode for Signed<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let payload = T::decode(r)?;
        let signer = r.take_str()?.to_owned();
        let signature = Signature::decode(r)?;
        Ok(Signed {
            payload,
            signer,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::DsaParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DsaKeyPair, KeyDirectory, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let params = DsaParams::generate(128, 48, &mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        dir.register("h1", keys.public().clone());
        (keys, dir, rng)
    }

    #[test]
    fn seal_verify_open() {
        let (keys, dir, mut rng) = setup();
        let env = Signed::seal(42u64, "h1", &keys, &mut rng);
        assert_eq!(env.signer(), "h1");
        assert!(env.verify(&dir).is_ok());
        assert_eq!(env.open(&dir).unwrap(), 42);
    }

    #[test]
    fn unknown_signer_rejected() {
        let (keys, _, mut rng) = setup();
        let env = Signed::seal(1u64, "ghost", &keys, &mut rng);
        let empty = KeyDirectory::new();
        assert!(matches!(
            env.verify(&empty),
            Err(VerifyError::UnknownSigner { .. })
        ));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (keys, dir, mut rng) = setup();
        let env = Signed::seal(100u64, "h1", &keys, &mut rng);
        let tampered = env.tampered_with(|v| v + 1);
        assert!(matches!(
            tampered.verify(&dir),
            Err(VerifyError::BadSignature { .. })
        ));
    }

    #[test]
    fn signer_spoofing_rejected() {
        let (keys, mut dir, mut rng) = setup();
        // Mallory has a different key registered under her own name.
        let params = keys.public().params().clone();
        let mallory = DsaKeyPair::generate(&params, &mut rng);
        dir.register("mallory", mallory.public().clone());
        // Mallory signs but claims to be h1.
        let env = Signed::seal(5u64, "h1", &mallory, &mut rng);
        assert!(matches!(
            env.verify(&dir),
            Err(VerifyError::BadSignature { .. })
        ));
    }

    #[test]
    fn wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        let (keys, dir, mut rng) = setup();
        let env = Signed::seal("state".to_string(), "h1", &keys, &mut rng);
        let back: Signed<String> = from_wire(&to_wire(&env)).unwrap();
        assert_eq!(back, env);
        assert!(back.verify(&dir).is_ok());
    }

    #[test]
    fn error_display() {
        let e = VerifyError::UnknownSigner { signer: "x".into() };
        assert!(e.to_string().contains("no public key"));
        let e = VerifyError::BadSignature { signer: "x".into() };
        assert!(e.to_string().contains("does not verify"));
    }
}
