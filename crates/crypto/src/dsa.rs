//! DSA (Digital Signature Algorithm), FIPS 186 style.
//!
//! The paper's protocol measurements used DSA with 512-bit keys; this module
//! implements the classic scheme over subgroups of prime order `q` inside
//! `Z_p^*`, with SHA-256 as the message hash (truncated to the bit length of
//! `q` as FIPS 186-4 §4.6 prescribes).
//!
//! # The acceleration layer
//!
//! Every DSA hot operation is an exponentiation modulo the same odd prime
//! `p`, and the bases recur: signing computes `g^k`, key generation
//! `g^x`, verification `g^u1 · y^u2`. [`DsaParams`] therefore lazily owns
//! a [`Montgomery`] context for `p` plus a [`FixedBase`] table for `g`,
//! and [`DsaPublicKey`] caches a [`FixedBase`] table for its `y`; both
//! caches are `Arc`-shared across clones, so a key registered in a
//! [`crate::KeyDirectory`] (or pooled by the fleet engine) builds its
//! table once and every holder benefits. The fused verification path
//! ([`DsaPublicKey::verify_fused`], and [`verify_batch`] on top of it)
//! collapses to **two table walks and one Montgomery multiplication**.
//!
//! [`DsaPublicKey::verify`] deliberately stays on the schoolbook
//! two-modexp path: it is the reference oracle the equivalence tests pin
//! the fast paths against. All signing/verifying entry points the
//! protocols use ([`DsaKeyPair::sign`], [`crate::Signed`],
//! [`verify_batch`]) run on the accelerated path; parameters whose `p`
//! cannot host a Montgomery context (an even `p` arriving over the wire)
//! transparently fall back to schoolbook arithmetic.

use std::error::Error;
use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::RngCore;
use refstate_telemetry as telemetry;

use refstate_bigint::{
    gen_prime, is_probable_prime, random_exact_bits, random_in_unit_range, FixedBase, Montgomery,
    Uint,
};
use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::sha256::sha256;

/// Miller–Rabin rounds used for parameter generation.
const MR_ROUNDS: u32 = 40;

/// The lazily-built per-group acceleration state: a Montgomery context
/// for `p`, a fixed-base table for the generator `g` (sized for
/// exponents up to `|q|` bits — every DSA exponent is reduced mod `q`),
/// and a second Montgomery context for the subgroup order `q` so the
/// verify-side scalar arithmetic (`w = s⁻¹`, `u1 = z·w`, `u2 = r·w`)
/// runs in-domain without the division-based round trip. `q_mont` is
/// `None` only for wire-decoded parameters with an even `q` — such a
/// `q` is not a valid subgroup order, but decode is structural-only, so
/// the scalar path degrades to schoolbook instead of panicking.
#[derive(Debug)]
pub(crate) struct GroupAccel {
    pub(crate) mont: Arc<Montgomery>,
    pub(crate) g_table: FixedBase,
    pub(crate) q_mont: Option<Montgomery>,
}

/// Errors arising from invalid DSA domain parameters, keys, or signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SignatureError {
    /// `q` does not divide `p - 1`, or a primality check failed.
    InvalidParams(&'static str),
    /// A signature component was outside `[1, q)`.
    MalformedSignature,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::InvalidParams(why) => write!(f, "invalid DSA parameters: {why}"),
            SignatureError::MalformedSignature => f.write_str("malformed DSA signature"),
        }
    }
}

impl Error for SignatureError {}

/// DSA domain parameters `(p, q, g)`.
///
/// `p` is the field prime, `q` a prime divisor of `p - 1`, and `g` a
/// generator of the order-`q` subgroup.
///
/// # Examples
///
/// ```
/// use refstate_crypto::DsaParams;
///
/// let params = DsaParams::test_group_256();
/// assert_eq!(params.p().bit_len(), 256);
/// ```
#[derive(Clone)]
pub struct DsaParams {
    p: Uint,
    q: Uint,
    g: Uint,
    /// Lazily-built Montgomery context + `g`-table, `Arc`-shared across
    /// clones (the precomputed groups hand every caller the same cache).
    /// `None` inside the cell records that `p` cannot host a Montgomery
    /// context (even `p` from an unvalidated wire decode) — schoolbook
    /// fallback.
    accel: Arc<OnceLock<Option<GroupAccel>>>,
}

impl fmt::Debug for DsaParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsaParams")
            .field("p", &self.p)
            .field("q", &self.q)
            .field("g", &self.g)
            .finish_non_exhaustive()
    }
}

impl PartialEq for DsaParams {
    fn eq(&self, other: &Self) -> bool {
        // The accel cache is derived state; identity is (p, q, g).
        self.p == other.p && self.q == other.q && self.g == other.g
    }
}

impl Eq for DsaParams {}

/// Upper bound on the exponent width the fixed-base tables are sized
/// for. Real DSA subgroup orders are ≤ a few hundred bits; the cap only
/// bites on *unvalidated* wire-decoded parameters, where an adversarial
/// multi-kilobit `q` would otherwise make the first verification
/// allocate a table proportional to `|q| · |p|` (a memory-amplification
/// DoS the constant-memory schoolbook path never had). Exponents wider
/// than the table transparently fall back to the generic Montgomery
/// ladder, so correctness is unaffected.
const MAX_TABLE_EXP_BITS: usize = 4096;

impl DsaParams {
    /// Wraps validated components with an empty acceleration cache.
    fn assemble(p: Uint, q: Uint, g: Uint) -> Self {
        DsaParams {
            p,
            q,
            g,
            accel: Arc::new(OnceLock::new()),
        }
    }

    /// How many exponent bits the group's fixed-base tables cover: the
    /// subgroup order's width, capped by [`MAX_TABLE_EXP_BITS`].
    fn table_exp_bits(&self) -> usize {
        self.q.bit_len().min(MAX_TABLE_EXP_BITS)
    }

    /// The per-group acceleration state, built on first use; `None` when
    /// `p` is even (REDC impossible — fall back to schoolbook).
    pub(crate) fn accel(&self) -> Option<&GroupAccel> {
        self.accel
            .get_or_init(|| {
                let mont = Arc::new(Montgomery::new(&self.p)?);
                let g_table = FixedBase::new(Arc::clone(&mont), &self.g, self.table_exp_bits());
                let q_mont = Montgomery::new(&self.q);
                Some(GroupAccel {
                    mont,
                    g_table,
                    q_mont,
                })
            })
            .as_ref()
    }

    /// Computes `g ^ exponent mod p` on the fastest available path: the
    /// fixed-base `g`-table when the group hosts one, schoolbook
    /// otherwise. This is the exponentiation under every signature and
    /// key generation.
    pub fn pow_g(&self, exponent: &Uint) -> Uint {
        match self.accel() {
            Some(accel) => accel.g_table.pow_mod(exponent),
            None => self.g.pow_mod(exponent, &self.p),
        }
    }
    /// Builds parameters from explicit values, validating the group
    /// structure (primality of `p` and `q`, `q | p - 1`, `g` of order `q`).
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::InvalidParams`] when any structural check
    /// fails.
    pub fn new(p: Uint, q: Uint, g: Uint, rng: &mut dyn RngCore) -> Result<Self, SignatureError> {
        if !is_probable_prime(&p, 16, rng) {
            return Err(SignatureError::InvalidParams("p is not prime"));
        }
        if !is_probable_prime(&q, 16, rng) {
            return Err(SignatureError::InvalidParams("q is not prime"));
        }
        let p_minus_1 = &p - &Uint::one();
        if !p_minus_1.rem(&q).is_zero() {
            return Err(SignatureError::InvalidParams("q does not divide p-1"));
        }
        if g <= Uint::one() || g >= p {
            return Err(SignatureError::InvalidParams("g out of range"));
        }
        if !g.pow_mod(&q, &p).is_one() {
            return Err(SignatureError::InvalidParams("g does not have order q"));
        }
        Ok(DsaParams::assemble(p, q, g))
    }

    /// Builds parameters from trusted, pre-validated constants.
    ///
    /// Used for the precomputed groups; panics in debug builds if the
    /// constants are structurally wrong.
    pub(crate) fn from_trusted(p: Uint, q: Uint, g: Uint) -> Self {
        debug_assert!((&p - &Uint::one()).rem(&q).is_zero());
        debug_assert!(g.pow_mod(&q, &p).is_one());
        DsaParams::assemble(p, q, g)
    }

    /// Generates fresh parameters with `p_bits`-bit `p` and `q_bits`-bit `q`.
    ///
    /// This is how the precomputed groups in
    /// [`test_group_256`](DsaParams::test_group_256) /
    /// [`group_512`](DsaParams::group_512) / [`group_1024`](DsaParams::group_1024)
    /// were produced (see `src/bin/genparams.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `q_bits + 2 > p_bits` or `q_bits < 2`.
    pub fn generate(p_bits: usize, q_bits: usize, rng: &mut dyn RngCore) -> Self {
        assert!(
            q_bits >= 2 && q_bits + 2 <= p_bits,
            "invalid DSA size request"
        );
        loop {
            let q = gen_prime(q_bits, MR_ROUNDS, rng);
            // Search for p = q*m + 1 with exactly p_bits bits.
            for _ in 0..4096 {
                let mut m = random_exact_bits(rng, p_bits - q_bits);
                if !m.is_even() {
                    m = &m + &Uint::one();
                }
                let p = &(&q * &m) + &Uint::one();
                if p.bit_len() != p_bits {
                    continue;
                }
                if is_probable_prime(&p, MR_ROUNDS, rng) {
                    let g = Self::find_generator(&p, &q, rng);
                    return DsaParams::assemble(p, q, g);
                }
            }
            // Unlucky q; draw a new one.
        }
    }

    fn find_generator(p: &Uint, q: &Uint, rng: &mut dyn RngCore) -> Uint {
        let p_minus_1 = p - &Uint::one();
        let exp = p_minus_1.divrem(q).0;
        // `p` is prime (hence odd) here; the cofactor exponent is large,
        // so the division-free ladder pays off even for one shot.
        let mont = Montgomery::new(p).expect("p is an odd prime");
        loop {
            let h = random_in_unit_range(rng, &p_minus_1);
            let g = mont.pow_mod(&h, &exp);
            if g > Uint::one() {
                return g;
            }
        }
    }

    /// The field prime `p`.
    pub fn p(&self) -> &Uint {
        &self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &Uint {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn g(&self) -> &Uint {
        &self.g
    }

    /// Reduces a message to the integer `z`: the leftmost
    /// `min(bitlen(q), 256)` bits of its SHA-256 digest (FIPS 186-4 §4.6).
    pub(crate) fn hash_to_z(&self, message: &[u8]) -> Uint {
        let digest = sha256(message);
        let z = Uint::from_be_bytes(digest.as_bytes());
        let digest_bits = digest.len() * 8;
        let q_bits = self.q.bit_len();
        if digest_bits > q_bits {
            &z >> (digest_bits - q_bits)
        } else {
            z
        }
    }
}

impl Encode for DsaParams {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.p.to_be_bytes());
        w.put_bytes(&self.q.to_be_bytes());
        w.put_bytes(&self.g.to_be_bytes());
    }
}

impl Decode for DsaParams {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let p = Uint::from_be_bytes(r.take_bytes()?);
        let q = Uint::from_be_bytes(r.take_bytes()?);
        let g = Uint::from_be_bytes(r.take_bytes()?);
        // Structural sanity only (cheap); full validation needs an RNG and
        // is the caller's job for untrusted inputs.
        if q.is_zero() || g <= Uint::one() || g >= p {
            return Err(WireError::InvalidValue {
                context: "DSA params",
            });
        }
        Ok(DsaParams::assemble(p, q, g))
    }
}

/// A DSA signature `(r, s)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    r: Uint,
    s: Uint,
}

impl Signature {
    /// The `r` component.
    pub fn r(&self) -> &Uint {
        &self.r
    }

    /// The `s` component.
    pub fn s(&self) -> &Uint {
        &self.s
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.r.to_be_bytes());
        w.put_bytes(&self.s.to_be_bytes());
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rr = Uint::from_be_bytes(r.take_bytes()?);
        let s = Uint::from_be_bytes(r.take_bytes()?);
        Ok(Signature { r: rr, s })
    }
}

/// A DSA public key: the group parameters plus `y = g^x mod p`.
#[derive(Clone)]
pub struct DsaPublicKey {
    params: DsaParams,
    y: Uint,
    /// Lazily-built fixed-base table for `y`, `Arc`-shared across clones:
    /// a key held by a [`crate::KeyDirectory`] (or a fleet key pool)
    /// builds it once and every clone verifies through it.
    y_table: Arc<OnceLock<Option<FixedBase>>>,
}

impl fmt::Debug for DsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsaPublicKey")
            .field("params", &self.params)
            .field("y", &self.y)
            .finish_non_exhaustive()
    }
}

impl PartialEq for DsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The y-table is derived state; identity is (params, y).
        self.params == other.params && self.y == other.y
    }
}

impl Eq for DsaPublicKey {}

impl DsaPublicKey {
    /// Wraps components with an empty table cache.
    fn assemble(params: DsaParams, y: Uint) -> Self {
        DsaPublicKey {
            params,
            y,
            y_table: Arc::new(OnceLock::new()),
        }
    }

    /// The domain parameters.
    pub fn params(&self) -> &DsaParams {
        &self.params
    }

    /// The public value `y`.
    pub fn y(&self) -> &Uint {
        &self.y
    }

    /// The group accel plus this key's `y`-table, built on first use;
    /// `None` when the group cannot host a Montgomery context.
    fn y_accel(&self) -> Option<(&GroupAccel, &FixedBase)> {
        let accel = self.params.accel()?;
        let table = self
            .y_table
            .get_or_init(|| {
                Some(FixedBase::new(
                    Arc::clone(&accel.mont),
                    &self.y,
                    self.params.table_exp_bits(),
                ))
            })
            .as_ref()?;
        Some((accel, table))
    }

    /// Forces construction of the Montgomery context and both fixed-base
    /// tables (`g` and `y`) now instead of on the first verification.
    ///
    /// Long-lived key holders — [`crate::KeyDirectory::warm`], the fleet
    /// engine's pooled keys — call this once up front so first-use table
    /// builds never land inside a measured journey.
    pub fn precompute(&self) {
        let _span = telemetry::span("crypto.precompute", "crypto");
        let _ = self.y_accel();
    }

    /// Verifies `signature` over `message` (hashed with SHA-256 internally).
    ///
    /// Returns `false` for malformed components, never panics on hostile
    /// input.
    ///
    /// This is the *schoolbook reference* path: two independent
    /// square-and-multiply exponentiations, no Montgomery arithmetic, no
    /// tables. The accelerated [`DsaPublicKey::verify_fused`] is pinned to
    /// agree with it by unit and property tests; everything hot goes
    /// through the fused path.
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use refstate_crypto::{DsaKeyPair, DsaParams};
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    /// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
    /// let sig = keys.sign(b"msg", &mut rng);
    /// assert!(keys.public().verify(b"msg", &sig));
    /// ```
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let q = &self.params.q;
        let p = &self.params.p;
        let r = &signature.r;
        let s = &signature.s;
        if r.is_zero() || r >= q || s.is_zero() || s >= q {
            return false;
        }
        let w = match s.inv_mod(q) {
            Some(w) => w,
            None => return false,
        };
        let z = self.params.hash_to_z(message);
        let u1 = z.mul_mod(&w, q);
        let u2 = r.mul_mod(&w, q);
        let v = self
            .params
            .g
            .pow_mod(&u1, p)
            .mul_mod(&self.y.pow_mod(&u2, p), p)
            .rem(q);
        v == *r
    }

    /// [`DsaPublicKey::verify`] on the accelerated path: `g^u1` and
    /// `y^u2` come out of the group's and the key's precomputed
    /// [`FixedBase`] tables as Montgomery residues, fused by a single
    /// [`Montgomery`] multiplication — two table walks (one
    /// multiplication per non-zero exponent digit, **no squarings**) per
    /// verification.
    ///
    /// Identical accept/reject behaviour to [`DsaPublicKey::verify`] —
    /// the batch property tests pin this. [`verify_batch`] is built on
    /// this entry point. Groups that cannot host a Montgomery context
    /// fall back to one Shamir double exponentiation (`g^u1 · y^u2` in a
    /// shared square-and-multiply ladder).
    pub fn verify_fused(&self, message: &[u8], signature: &Signature) -> bool {
        let timer = telemetry::Timer::start();
        let accepted = self.verify_fused_inner(message, signature);
        timer.finish("crypto.verify", "crypto");
        accepted
    }

    fn verify_fused_inner(&self, message: &[u8], signature: &Signature) -> bool {
        let q = &self.params.q;
        let p = &self.params.p;
        let r = &signature.r;
        let s = &signature.s;
        if r.is_zero() || r >= q || s.is_zero() || s >= q {
            return false;
        }
        let z = self.params.hash_to_z(message);
        // The scalar leg (w = s⁻¹ mod q, u1 = z·w, u2 = r·w) runs inside
        // the q-domain when the group hosts one: the inverse chains into
        // both products without converting out between operations.
        let accel = self.y_accel();
        let (u1, u2) = match accel.and_then(|(a, _)| a.q_mont.as_ref()) {
            Some(qm) => {
                let w = match qm.inv(&qm.to_mont(s)) {
                    Some(w) => w,
                    None => return false,
                };
                (
                    qm.from_mont(&qm.mont_mul(&qm.to_mont(&z), &w)),
                    qm.from_mont(&qm.mont_mul(&qm.to_mont(r), &w)),
                )
            }
            None => {
                let w = match s.inv_mod(q) {
                    Some(w) => w,
                    None => return false,
                };
                (z.mul_mod(&w, q), r.mul_mod(&w, q))
            }
        };
        let v = match accel {
            Some((accel, y_table)) => {
                let gm = accel.g_table.pow(&u1);
                let ym = y_table.pow(&u2);
                accel.mont.from_mont(&accel.mont.mont_mul(&gm, &ym)).rem(q)
            }
            None => double_pow_mod(&self.params.g, &u1, &self.y, &u2, p).rem(q),
        };
        v == *r
    }
}

/// Computes `a^x · b^y mod m` with Shamir's trick: one shared
/// square-and-multiply ladder over `max(|x|, |y|)` bits with the product
/// `a·b` precomputed, instead of two independent exponentiations.
fn double_pow_mod(a: &Uint, x: &Uint, b: &Uint, y: &Uint, m: &Uint) -> Uint {
    let ab = a.mul_mod(b, m);
    let bits = x.bit_len().max(y.bit_len());
    let mut acc = Uint::one();
    for i in (0..bits).rev() {
        acc = acc.mul_mod(&acc, m);
        match (x.bit(i), y.bit(i)) {
            (true, true) => acc = acc.mul_mod(&ab, m),
            (true, false) => acc = acc.mul_mod(a, m),
            (false, true) => acc = acc.mul_mod(b, m),
            (false, false) => {}
        }
    }
    acc
}

/// One entry of a [`verify_batch`] call: a public key, the signed message
/// bytes, and the signature to check against them.
#[derive(Debug, Clone, Copy)]
pub struct BatchEntry<'a> {
    /// The claimed signer's public key.
    pub key: &'a DsaPublicKey,
    /// The message bytes the signature covers.
    pub message: &'a [u8],
    /// The signature to verify.
    pub signature: &'a Signature,
}

/// Verifies a batch of DSA signatures, returning one accept/reject verdict
/// per entry (same order).
///
/// Each entry is judged exactly as [`DsaPublicKey::verify`] would judge it
/// — no small-exponent aggregation tricks, which standard DSA rules out
/// because `r` only retains `g^k mod p mod q` — but every check runs
/// through the table-accelerated path ([`DsaPublicKey::verify_fused`]):
/// two fixed-base table walks plus one Montgomery multiplication per
/// signature, with each key's `y`-table built once and shared across the
/// batch (and across every clone of the key). This is the batch half of
/// the protocol's deferred-verification path (see
/// `refstate-core::protocol`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::{verify_batch, BatchEntry, DsaKeyPair, DsaParams};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
/// let sig = keys.sign(b"msg", &mut rng);
/// let verdicts = verify_batch(&[BatchEntry {
///     key: keys.public(),
///     message: b"msg",
///     signature: &sig,
/// }]);
/// assert_eq!(verdicts, vec![true]);
/// ```
pub fn verify_batch(entries: &[BatchEntry<'_>]) -> Vec<bool> {
    telemetry::observe("crypto.batch_size", entries.len() as u64);
    let timer = telemetry::Timer::start();
    let verdicts = entries
        .iter()
        .map(|e| e.key.verify_fused(e.message, e.signature))
        .collect();
    timer.finish("crypto.verify_batch", "crypto");
    verdicts
}

impl Encode for DsaPublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        w.put_bytes(&self.y.to_be_bytes());
    }
}

impl Decode for DsaPublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let params = DsaParams::decode(r)?;
        let y = Uint::from_be_bytes(r.take_bytes()?);
        if y <= Uint::one() || y >= params.p {
            return Err(WireError::InvalidValue {
                context: "DSA public key",
            });
        }
        Ok(DsaPublicKey::assemble(params, y))
    }
}

/// A DSA private/public key pair.
#[derive(Debug, Clone)]
pub struct DsaKeyPair {
    x: Uint,
    public: DsaPublicKey,
}

impl DsaKeyPair {
    /// Generates a key pair in the given group (`y = g^x` through the
    /// group's fixed-base table).
    pub fn generate(params: &DsaParams, rng: &mut dyn RngCore) -> Self {
        let x = random_in_unit_range(rng, &params.q);
        let y = params.pow_g(&x);
        DsaKeyPair {
            x,
            public: DsaPublicKey::assemble(params.clone(), y),
        }
    }

    /// The public half.
    pub fn public(&self) -> &DsaPublicKey {
        &self.public
    }

    /// Signs `message` (hashed with SHA-256 internally).
    ///
    /// Fresh randomness per signature; the internal loop retries the
    /// negligible `r == 0` / `s == 0` cases as FIPS 186 requires. The
    /// per-signature exponentiation `g^k mod p` runs through the group's
    /// fixed-base table ([`DsaParams::pow_g`]) — one Montgomery
    /// multiplication per non-zero 4-bit digit of `k` instead of a full
    /// square-and-multiply ladder.
    pub fn sign(&self, message: &[u8], rng: &mut dyn RngCore) -> Signature {
        let timer = telemetry::Timer::start();
        let signature = self.sign_inner(message, rng);
        timer.finish("crypto.sign", "crypto");
        signature
    }

    fn sign_inner(&self, message: &[u8], rng: &mut dyn RngCore) -> Signature {
        let params = &self.public.params;
        let q = &params.q;
        let z = params.hash_to_z(message);
        loop {
            let k = random_in_unit_range(rng, q);
            let r = params.pow_g(&k).rem(q);
            if r.is_zero() {
                continue;
            }
            let k_inv = k.inv_mod(q).expect("q prime, 0 < k < q");
            let xr = self.x.mul_mod(&r, q);
            let s = k_inv.mul_mod(&z.add_mod(&xr, q), q);
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params(rng: &mut StdRng) -> DsaParams {
        DsaParams::generate(128, 48, rng)
    }

    #[test]
    fn generate_validates() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = small_params(&mut rng);
        assert_eq!(params.p().bit_len(), 128);
        assert_eq!(params.q().bit_len(), 48);
        // Must re-validate through the public constructor.
        let again = DsaParams::new(
            params.p().clone(),
            params.q().clone(),
            params.g().clone(),
            &mut rng,
        );
        assert!(again.is_ok());
    }

    #[test]
    fn new_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = small_params(&mut rng);
        // Composite p.
        let bad = DsaParams::new(
            &(params.p() * &Uint::from(2u64)) + &Uint::zero(),
            params.q().clone(),
            params.g().clone(),
            &mut rng,
        );
        assert!(matches!(bad, Err(SignatureError::InvalidParams(_))));
        // g = 1 has trivial order.
        let bad = DsaParams::new(
            params.p().clone(),
            params.q().clone(),
            Uint::one(),
            &mut rng,
        );
        assert!(bad.is_err());
        // q that does not divide p-1.
        let bad = DsaParams::new(
            params.p().clone(),
            Uint::from(65537u64),
            params.g().clone(),
            &mut rng,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        for msg in [
            &b"hello"[..],
            b"",
            b"a much longer message spanning blocks.....",
        ] {
            let sig = keys.sign(msg, &mut rng);
            assert!(keys.public().verify(msg, &sig));
        }
    }

    #[test]
    fn verify_rejects_tampering() {
        let mut rng = StdRng::seed_from_u64(14);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let sig = keys.sign(b"payment: $10", &mut rng);
        assert!(!keys.public().verify(b"payment: $1000", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let mut rng = StdRng::seed_from_u64(15);
        let params = small_params(&mut rng);
        let alice = DsaKeyPair::generate(&params, &mut rng);
        let mallory = DsaKeyPair::generate(&params, &mut rng);
        let sig = mallory.sign(b"msg", &mut rng);
        assert!(!alice.public().verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_malformed_components() {
        let mut rng = StdRng::seed_from_u64(16);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let sig = keys.sign(b"msg", &mut rng);
        let zero_r = Signature {
            r: Uint::zero(),
            s: sig.s().clone(),
        };
        assert!(!keys.public().verify(b"msg", &zero_r));
        let big_s = Signature {
            r: sig.r().clone(),
            s: params.q().clone(),
        };
        assert!(!keys.public().verify(b"msg", &big_s));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut rng = StdRng::seed_from_u64(17);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let s1 = keys.sign(b"msg", &mut rng);
        let s2 = keys.sign(b"msg", &mut rng);
        assert_ne!(s1, s2, "two signatures with fresh k must differ");
        assert!(keys.public().verify(b"msg", &s1));
        assert!(keys.public().verify(b"msg", &s2));
    }

    #[test]
    fn wire_round_trips() {
        use refstate_wire::{from_wire, to_wire};
        let mut rng = StdRng::seed_from_u64(18);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let sig = keys.sign(b"msg", &mut rng);
        assert_eq!(from_wire::<Signature>(&to_wire(&sig)).unwrap(), sig);
        assert_eq!(from_wire::<DsaParams>(&to_wire(&params)).unwrap(), params);
        let pk = keys.public().clone();
        assert_eq!(from_wire::<DsaPublicKey>(&to_wire(&pk)).unwrap(), pk);
    }

    #[test]
    fn fused_verify_agrees_with_plain_verify() {
        let mut rng = StdRng::seed_from_u64(20);
        let params = small_params(&mut rng);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let sig = keys.sign(b"msg", &mut rng);
        assert!(keys.public().verify_fused(b"msg", &sig));
        assert!(!keys.public().verify_fused(b"other", &sig));
        let zero_r = Signature {
            r: Uint::zero(),
            s: sig.s().clone(),
        };
        assert!(!keys.public().verify_fused(b"msg", &zero_r));
    }

    #[test]
    fn batch_verdicts_are_per_entry() {
        let mut rng = StdRng::seed_from_u64(21);
        let params = small_params(&mut rng);
        let alice = DsaKeyPair::generate(&params, &mut rng);
        let bob = DsaKeyPair::generate(&params, &mut rng);
        let good = alice.sign(b"a", &mut rng);
        let wrong_key = bob.sign(b"b", &mut rng);
        let verdicts = verify_batch(&[
            BatchEntry {
                key: alice.public(),
                message: b"a",
                signature: &good,
            },
            BatchEntry {
                key: alice.public(),
                message: b"b",
                signature: &wrong_key,
            },
            BatchEntry {
                key: bob.public(),
                message: b"b",
                signature: &wrong_key,
            },
        ]);
        assert_eq!(verdicts, vec![true, false, true]);
    }

    #[test]
    fn double_pow_mod_matches_two_exponentiations() {
        let mut rng = StdRng::seed_from_u64(22);
        let params = small_params(&mut rng);
        let p = params.p();
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let a = random_in_unit_range(&mut r, p);
            let b = random_in_unit_range(&mut r, p);
            let x = random_in_unit_range(&mut r, params.q());
            let y = random_in_unit_range(&mut r, params.q());
            let fused = double_pow_mod(&a, &x, &b, &y, p);
            let split = a.pow_mod(&x, p).mul_mod(&b.pow_mod(&y, p), p);
            assert_eq!(fused, split);
        }
    }

    #[test]
    fn hash_truncation_matches_q_width() {
        let mut rng = StdRng::seed_from_u64(19);
        let params = small_params(&mut rng);
        let z = params.hash_to_z(b"message");
        assert!(z.bit_len() <= params.q().bit_len());
    }
}
