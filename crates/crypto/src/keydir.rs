//! The public-key directory hosts use to verify each other.

use std::collections::BTreeMap;

use refstate_telemetry as telemetry;

use crate::dsa::DsaPublicKey;

/// A registry mapping principal names (host identifiers, owner names) to
/// DSA public keys.
///
/// In the paper's setting every host can verify every other host's
/// signatures; the directory models the PKI that distribution would require
/// without simulating certificate chains (which the paper also assumes
/// away).
///
/// Every stored key carries its own lazily-built fixed-base
/// exponentiation table (see [`DsaPublicKey::precompute`]), shared with
/// all clones of that key. A directory that will verify many signatures —
/// the owner-side batch flush, a fleet engine's PKI — can force all
/// tables up front with [`KeyDirectory::warm`] so no journey pays a
/// first-use table build.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
/// let mut dir = KeyDirectory::new();
/// dir.register("host-a", keys.public().clone());
/// assert!(dir.lookup("host-a").is_some());
/// assert!(dir.lookup("host-b").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyDirectory {
    keys: BTreeMap<String, DsaPublicKey>,
}

impl KeyDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        KeyDirectory {
            keys: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) the key for `name`, returning any previous
    /// key.
    pub fn register(&mut self, name: impl Into<String>, key: DsaPublicKey) -> Option<DsaPublicKey> {
        self.keys.insert(name.into(), key)
    }

    /// Looks up the key for `name`.
    pub fn lookup(&self, name: &str) -> Option<&DsaPublicKey> {
        self.keys.get(name)
    }

    /// Builds the verification tables (Montgomery context, `g`- and
    /// `y`-tables) of every registered key now, instead of on each key's
    /// first verification.
    ///
    /// Idempotent and cheap to repeat: keys whose tables exist (their own
    /// or via a clone elsewhere — pooled fleet keys share caches) are
    /// skipped by the underlying `OnceLock`.
    pub fn warm(&self) {
        let _span = telemetry::span("crypto.keydir_warm", "crypto");
        for (_, key) in self.iter() {
            key.precompute();
        }
    }

    /// Returns the number of registered principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(name, key)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DsaPublicKey)> {
        self.keys.iter().map(|(n, k)| (n.as_str(), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::{DsaKeyPair, DsaParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = DsaParams::generate(128, 48, &mut rng);
        let a = DsaKeyPair::generate(&params, &mut rng);
        let b = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        assert!(dir.is_empty());
        assert!(dir.register("a", a.public().clone()).is_none());
        assert!(dir.register("b", b.public().clone()).is_none());
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.lookup("a"), Some(a.public()));
        assert!(dir.lookup("c").is_none());
        // Replacement returns the old key.
        let old = dir.register("a", b.public().clone());
        assert_eq!(old.as_ref(), Some(a.public()));
        assert_eq!(dir.lookup("a"), Some(b.public()));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = DsaParams::generate(128, 48, &mut rng);
        let k = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        dir.register("zeta", k.public().clone());
        dir.register("alpha", k.public().clone());
        let names: Vec<&str> = dir.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
