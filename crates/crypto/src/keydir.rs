//! The public-key directory hosts use to verify each other.

use std::collections::BTreeMap;
use std::sync::Arc;

use refstate_telemetry as telemetry;

use crate::dsa::DsaPublicKey;

/// A registry mapping principal names (host identifiers, owner names) to
/// DSA public keys.
///
/// In the paper's setting every host can verify every other host's
/// signatures; the directory models the PKI that distribution would require
/// without simulating certificate chains (which the paper also assumes
/// away).
///
/// Every stored key carries its own lazily-built fixed-base
/// exponentiation table (see [`DsaPublicKey::precompute`]), shared with
/// all clones of that key. A directory that will verify many signatures —
/// the owner-side batch flush, a fleet engine's PKI — can force all
/// tables up front with [`KeyDirectory::warm`] so no journey pays a
/// first-use table build.
///
/// # Namespaces
///
/// A multi-tenant service keeps one master directory and hands each tenant
/// a [`namespaced`](KeyDirectory::namespaced) view: lookups under the view
/// for `"h1"` resolve the master entry `"owner/h1"`. Views share the
/// underlying key table by reference — creating or cloning one copies no
/// keys — and are copy-on-write: registering through a view diverges the
/// view without touching the parent.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
/// let mut dir = KeyDirectory::new();
/// dir.register("host-a", keys.public().clone());
/// assert!(dir.lookup("host-a").is_some());
/// assert!(dir.lookup("host-b").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyDirectory {
    keys: Arc<BTreeMap<String, DsaPublicKey>>,
    namespace: Option<Arc<str>>,
}

impl KeyDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        KeyDirectory::default()
    }

    /// The full stored name for `name` under this directory's namespace.
    fn scoped(&self, name: &str) -> String {
        match &self.namespace {
            Some(ns) => format!("{ns}/{name}"),
            None => name.to_owned(),
        }
    }

    /// Returns a view of this directory scoped to namespace `ns`: lookups
    /// and iteration under the view see only entries stored as
    /// `"{ns}/{name}"`, addressed by their bare `name`.
    ///
    /// The view shares the key table by reference — no keys are cloned —
    /// and namespaces compose: `dir.namespaced("a").namespaced("b")`
    /// resolves `"a/b/{name}"`.
    pub fn namespaced(&self, ns: &str) -> KeyDirectory {
        KeyDirectory {
            keys: Arc::clone(&self.keys),
            namespace: Some(match &self.namespace {
                Some(outer) => format!("{outer}/{ns}").into(),
                None => ns.into(),
            }),
        }
    }

    /// The namespace this directory is scoped to, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// Registers (or replaces) the key for `name`, returning any previous
    /// key.
    ///
    /// On a namespaced view the entry is stored under the scoped name;
    /// if other views share the table this copies it first (copy-on-write),
    /// so registration stays out of hot paths — register at tenant setup,
    /// then hand out views.
    pub fn register(&mut self, name: impl Into<String>, key: DsaPublicKey) -> Option<DsaPublicKey> {
        let stored = self.scoped(&name.into());
        Arc::make_mut(&mut self.keys).insert(stored, key)
    }

    /// Looks up the key for `name` (scoped by this view's namespace).
    pub fn lookup(&self, name: &str) -> Option<&DsaPublicKey> {
        match &self.namespace {
            Some(_) => self.keys.get(&self.scoped(name)),
            None => self.keys.get(name),
        }
    }

    /// Builds the verification tables (Montgomery context, `g`- and
    /// `y`-tables) of every key visible to this view now, instead of on
    /// each key's first verification.
    ///
    /// Idempotent and cheap to repeat: keys whose tables exist (their own
    /// or via a clone elsewhere — pooled fleet keys share caches) are
    /// skipped by the underlying `OnceLock`.
    pub fn warm(&self) {
        let _span = telemetry::span("crypto.keydir_warm", "crypto");
        for (_, key) in self.iter() {
            key.precompute();
        }
    }

    /// Returns the number of principals visible to this view.
    pub fn len(&self) -> usize {
        match &self.namespace {
            Some(_) => self.iter().count(),
            None => self.keys.len(),
        }
    }

    /// Returns `true` if no principals are visible to this view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(name, key)` pairs in name order. On a namespaced
    /// view, only entries in the namespace are yielded, with the prefix
    /// stripped.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DsaPublicKey)> {
        let prefix = self.namespace.as_deref();
        self.keys.iter().filter_map(move |(n, k)| match prefix {
            Some(ns) => {
                let rest = n.strip_prefix(ns)?;
                let bare = rest.strip_prefix('/')?;
                Some((bare, k))
            }
            None => Some((n.as_str(), k)),
        })
    }

    /// Writes every entry visible to this view into the store under
    /// `namespace` (key = the entry's visible name, value = the public
    /// key's wire encoding). On a master directory that persists the full
    /// scoped names, so [`KeyDirectory::load_from`] restores a directory
    /// whose tenant views resolve exactly as before.
    ///
    /// # Errors
    ///
    /// Propagates the store's failure.
    pub fn persist_to(
        &self,
        store: &dyn refstate_store::StateStore,
        namespace: &str,
    ) -> Result<(), refstate_store::StoreError> {
        for (name, key) in self.iter() {
            store.put(namespace, name.as_bytes(), &refstate_wire::to_wire(key))?;
        }
        Ok(())
    }

    /// Rebuilds a master directory from entries previously written by
    /// [`KeyDirectory::persist_to`].
    ///
    /// # Errors
    ///
    /// Propagates store failures; an entry that no longer decodes as a
    /// public key (or whose name is not UTF-8) is reported as
    /// [`refstate_store::StoreError::Corrupt`].
    pub fn load_from(
        store: &dyn refstate_store::StateStore,
        namespace: &str,
    ) -> Result<KeyDirectory, refstate_store::StoreError> {
        let mut directory = KeyDirectory::new();
        for (index, (name, value)) in store.scan(namespace)?.into_iter().enumerate() {
            let corrupt = |detail: String| refstate_store::StoreError::Corrupt {
                segment: format!("kv namespace {namespace}"),
                offset: index as u64,
                detail,
            };
            let name = String::from_utf8(name)
                .map_err(|_| corrupt("principal name is not UTF-8".to_owned()))?;
            let key: DsaPublicKey =
                refstate_wire::from_wire(&value).map_err(|e| corrupt(e.to_string()))?;
            directory.register(name, key);
        }
        Ok(directory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::{DsaKeyPair, DsaParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = DsaParams::generate(128, 48, &mut rng);
        let a = DsaKeyPair::generate(&params, &mut rng);
        let b = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        assert!(dir.is_empty());
        assert!(dir.register("a", a.public().clone()).is_none());
        assert!(dir.register("b", b.public().clone()).is_none());
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.lookup("a"), Some(a.public()));
        assert!(dir.lookup("c").is_none());
        // Replacement returns the old key.
        let old = dir.register("a", b.public().clone());
        assert_eq!(old.as_ref(), Some(a.public()));
        assert_eq!(dir.lookup("a"), Some(b.public()));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = DsaParams::generate(128, 48, &mut rng);
        let k = DsaKeyPair::generate(&params, &mut rng);
        let mut dir = KeyDirectory::new();
        dir.register("zeta", k.public().clone());
        dir.register("alpha", k.public().clone());
        let names: Vec<&str> = dir.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn namespaced_views_isolate_tenants() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = DsaParams::generate(128, 48, &mut rng);
        let ka = DsaKeyPair::generate(&params, &mut rng);
        let kb = DsaKeyPair::generate(&params, &mut rng);
        let mut master = KeyDirectory::new();
        master.register("alice/h1", ka.public().clone());
        master.register("bob/h1", kb.public().clone());
        master.register("loose", ka.public().clone());

        let alice = master.namespaced("alice");
        let bob = master.namespaced("bob");
        assert_eq!(alice.lookup("h1"), Some(ka.public()));
        assert_eq!(bob.lookup("h1"), Some(kb.public()));
        // Views never see each other's or unscoped entries.
        assert!(alice.lookup("loose").is_none());
        assert!(alice.lookup("bob/h1").is_none());
        assert_eq!(alice.len(), 1);
        assert_eq!(bob.len(), 1);
        assert_eq!(master.len(), 3);
        let names: Vec<&str> = alice.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["h1"]);
        assert_eq!(alice.namespace(), Some("alice"));
        assert_eq!(master.namespace(), None);
    }

    #[test]
    fn register_through_view_scopes_and_copies_on_write() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = DsaParams::generate(128, 48, &mut rng);
        let k = DsaKeyPair::generate(&params, &mut rng);
        let master = KeyDirectory::new();
        let mut view = master.namespaced("carol");
        view.register("h1", k.public().clone());
        assert_eq!(view.lookup("h1"), Some(k.public()));
        // The view diverged; the parent is untouched.
        assert!(master.is_empty());
    }

    #[test]
    fn namespaces_compose() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = DsaParams::generate(128, 48, &mut rng);
        let k = DsaKeyPair::generate(&params, &mut rng);
        let mut master = KeyDirectory::new();
        master.register("a/b/h1", k.public().clone());
        let inner = master.namespaced("a").namespaced("b");
        assert_eq!(inner.namespace(), Some("a/b"));
        assert_eq!(inner.lookup("h1"), Some(k.public()));
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn persist_and_load_round_trip_preserves_tenant_views() {
        use refstate_store::MemoryStore;
        let mut rng = StdRng::seed_from_u64(7);
        let params = DsaParams::generate(128, 48, &mut rng);
        let ka = DsaKeyPair::generate(&params, &mut rng);
        let kb = DsaKeyPair::generate(&params, &mut rng);
        let mut master = KeyDirectory::new();
        master.register("alice/h1", ka.public().clone());
        master.register("alice/h2", kb.public().clone());
        master.register("bob/h1", kb.public().clone());

        let store = MemoryStore::new();
        master.persist_to(&store, "keydir").unwrap();
        let restored = KeyDirectory::load_from(&store, "keydir").unwrap();
        assert_eq!(restored.len(), 3);
        let alice = restored.namespaced("alice");
        assert_eq!(alice.lookup("h1"), Some(ka.public()));
        assert_eq!(alice.lookup("h2"), Some(kb.public()));
        assert_eq!(restored.namespaced("bob").len(), 1);

        // Persisting a *view* writes bare names under the namespace.
        let view_store = MemoryStore::new();
        master
            .namespaced("alice")
            .persist_to(&view_store, "keys")
            .unwrap();
        use refstate_store::StateStore;
        let names: Vec<Vec<u8>> = view_store
            .scan("keys")
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(names, vec![b"h1".to_vec(), b"h2".to_vec()]);

        // Undecodable entries are reported as corruption.
        store.put("keydir", b"mallory/h1", b"garbage").unwrap();
        assert!(matches!(
            KeyDirectory::load_from(&store, "keydir"),
            Err(refstate_store::StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn prefix_matching_requires_separator() {
        let mut rng = StdRng::seed_from_u64(6);
        let params = DsaParams::generate(128, 48, &mut rng);
        let k = DsaKeyPair::generate(&params, &mut rng);
        let mut master = KeyDirectory::new();
        // "ab/h1" must not be visible to namespace "a".
        master.register("ab/h1", k.public().clone());
        let a = master.namespaced("a");
        assert!(a.is_empty());
        assert!(a.lookup("h1").is_none());
        assert!(a.iter().next().is_none());
    }
}
