//! HMAC-SHA-256 (FIPS 198-1 / RFC 2104).

use crate::digest::Digest;
use crate::sha256::Sha256;

/// HMAC keyed with SHA-256.
///
/// Used by the platform for cheap session-transcript authentication between
/// hosts that already share a channel key (signatures remain the mechanism
/// for third-party-verifiable statements).
///
/// # Examples
///
/// ```
/// use refstate_crypto::HmacSha256;
///
/// let mac = HmacSha256::mac(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(mac.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8");
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a new MAC instance for `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let d = crate::sha256::sha256(key);
            key_block[..d.len()].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-shape verification of a received MAC.
    pub fn verify(key: &[u8], message: &[u8], expected: &Digest) -> bool {
        let actual = Self::mac(key, message);
        // Byte-wise comparison without early exit.
        let a = actual.as_bytes();
        let b = expected.as_bytes();
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = HmacSha256::mac(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key (hashed down).
        let key = [0xaau8; 131];
        let mac = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &mac));
        assert!(!HmacSha256::verify(b"k", b"m2", &mac));
        assert!(!HmacSha256::verify(b"k2", b"m", &mac));
        assert!(!HmacSha256::verify(b"k", b"m", &crate::sha1::sha1(b"m")));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"part one part two"));
    }
}
