//! Warm-restart coverage: a service stopped and reopened on the same
//! state dir restores its registrations, streams, and caches, and a
//! resumed soak produces byte-identical verdicts to an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use refstate_serve::{
    run_soak, RegisterOwner, Request, Response, ServeConfig, Service, SoakConfig,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("refstate-serve-{tag}-{}-{seq}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn serve_config(state_dir: Option<&Path>) -> ServeConfig {
    ServeConfig {
        key_pool: 8,
        state_dir: state_dir.map(Path::to_path_buf),
        ..ServeConfig::default()
    }
}

/// Concatenates each owner's lines from `legs` in owner order — the
/// grouped-stream merge a restart-spanning run needs before it can be
/// compared byte-for-byte with a single uninterrupted run.
fn merge_by_owner(legs: &[&str], owners: usize) -> String {
    let mut merged = String::new();
    for index in 0..owners {
        let owner = SoakConfig::owner_name(index);
        for leg in legs {
            for line in leg.lines() {
                if line.split_whitespace().next() == Some(owner.as_str()) {
                    merged.push_str(line);
                    merged.push('\n');
                }
            }
        }
    }
    merged
}

#[test]
fn resumed_soak_stream_matches_an_uninterrupted_run() {
    let dir = TempDir::new("resume");
    let base = SoakConfig {
        owners: 3,
        journeys: 24,
        seed: 23,
        tick_every: 4,
        ..SoakConfig::default()
    };

    // The uninterrupted reference: one cold service, all 24 journeys.
    let mut cold = Service::new(serve_config(None));
    let cold_outcome = run_soak(&mut cold, &base);
    assert_eq!(cold_outcome.dropped, 0);

    // Leg 1: half the journeys against a durable service, then the
    // soak's Shutdown stops it and the process-side state drops.
    let mut leg1_service = Service::new(serve_config(Some(dir.path())));
    let leg1 = run_soak(
        &mut leg1_service,
        &SoakConfig {
            journeys: 12,
            ..base.clone()
        },
    );
    assert_eq!(leg1.dropped, 0);
    drop(leg1_service);

    // Leg 2: reopen the same dir and resume where leg 1 stopped.
    let mut leg2_service = Service::new(serve_config(Some(dir.path())));
    let leg2 = run_soak(
        &mut leg2_service,
        &SoakConfig {
            journeys: 12,
            start: 12,
            resume: true,
            ..base.clone()
        },
    );
    assert_eq!(leg2.dropped, 0);

    // The resume handshake observed a real warm start: generation 2,
    // every owner's durable stream checkpointed at its leg-1 share.
    let warm = leg2.warm_start.as_ref().expect("resumed run records meta");
    assert_eq!(warm.generation, 2, "second open of the same state dir");
    assert_eq!(warm.resume_offset, 12);
    assert!(warm.checkpoints.iter().all(|c| c.offset == 4));

    // The restart-spanning history, merged per owner, is byte-identical
    // to the uninterrupted run — the drain invariant survived the stop.
    assert_eq!(
        merge_by_owner(&[&leg1.stream, &leg2.stream], base.owners),
        cold_outcome.stream,
        "resumed verdict stream diverged from the uninterrupted run"
    );
}

#[test]
fn warm_replay_cache_serves_hits_on_restart() {
    let dir = TempDir::new("cache");
    let submit_and_settle = |service: &Service| {
        for journey in 0..8u64 {
            let reply = service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }), "{reply:?}");
        }
        service.handle(Request::Tick);
        let Response::Stats(stats) = service.handle(Request::Stats {
            owner: "alice".into(),
        }) else {
            panic!("stats");
        };
        stats
    };

    let first = Service::new(serve_config(Some(dir.path())));
    let reply = first.handle(Request::Register(RegisterOwner {
        owner: "alice".into(),
        seed: 7,
        preset: "mixed".into(),
        mechanism: "protocol".into(),
    }));
    assert!(matches!(reply, Response::Registered { .. }), "{reply:?}");
    let cold_stats = submit_and_settle(&first);
    assert!(cold_stats.cache_misses > 0, "a cold cache misses");
    // A clean stop persists the caches and syncs the log.
    assert!(matches!(
        first.handle(Request::Shutdown),
        Response::ShuttingDown { .. }
    ));
    drop(first);

    // The restarted service needs no registration — and re-running the
    // same journeys hits the preloaded replay cache where the first
    // process missed.
    let second = Service::new(serve_config(Some(dir.path())));
    let warm_stats = submit_and_settle(&second);
    assert_eq!(warm_stats.verified, 8, "restored owner settles journeys");
    assert!(
        warm_stats.cache_hits > cold_stats.cache_hits,
        "warm cache hits ({}) must beat cold hits ({})",
        warm_stats.cache_hits,
        cold_stats.cache_hits
    );
    assert!(
        warm_stats.cache_misses < cold_stats.cache_misses,
        "warm cache misses ({}) must undercut cold misses ({})",
        warm_stats.cache_misses,
        cold_stats.cache_misses
    );
    // The durable stream kept counting across the restart while the
    // process-local verified counter started over.
    assert_eq!(warm_stats.stream_offset, 16);
}

#[test]
#[should_panic(expected = "state dir was created with seed")]
fn reopening_under_a_different_seed_panics() {
    let dir = TempDir::new("seed");
    drop(Service::new(ServeConfig {
        seed: 1,
        ..serve_config(Some(dir.path()))
    }));
    let _ = Service::new(ServeConfig {
        seed: 2,
        ..serve_config(Some(dir.path()))
    });
}
