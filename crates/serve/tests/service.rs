//! Service-level guarantees: admission control, the drain invariant,
//! worker-, connection-, and telemetry-invariant golden verdict
//! streams, per-owner lock independence, and the TCP transport
//! (lockstep and pipelined).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use refstate_serve::{
    run_soak, run_soak_concurrent, Client, LocalPipelined, PipelinedClient, RegisterOwner,
    RejectReason, Request, Response, ServeConfig, Server, Service, SoakConfig, TickDriver,
    TickDriverConfig,
};
use refstate_telemetry as telemetry;

fn register(endpoint: &mut Service, owner: &str, seed: u64, preset: &str, mechanism: &str) {
    let reply = endpoint.handle(Request::Register(RegisterOwner {
        owner: owner.into(),
        seed,
        preset: preset.into(),
        mechanism: mechanism.into(),
    }));
    assert!(matches!(reply, Response::Registered { .. }), "{reply:?}");
}

#[test]
fn backpressure_rejects_past_the_bound_and_recovers_after_a_tick() {
    let mut service = Service::new(ServeConfig {
        queue_capacity: 3,
        ..ServeConfig::default()
    });
    register(&mut service, "alice", 5, "all-honest", "protocol");

    let mut accepted = 0;
    let mut rejected = 0;
    for journey in 0..5u64 {
        match service.handle(Request::Submit {
            owner: "alice".into(),
            journey,
        }) {
            Response::Accepted { .. } => accepted += 1,
            Response::Rejected {
                reason: RejectReason::QueueFull,
                journey: j,
                ..
            } => {
                rejected += 1;
                assert!(j >= 3, "the first `capacity` submissions are admitted");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(accepted, 3);
    assert_eq!(rejected, 2);

    // A tick drains the queue; the refused journeys are admissible again.
    service.handle(Request::Tick);
    for journey in 3..5u64 {
        let reply = service.handle(Request::Submit {
            owner: "alice".into(),
            journey,
        });
        assert!(matches!(reply, Response::Accepted { .. }), "{reply:?}");
    }
}

#[test]
fn graceful_shutdown_settles_every_accepted_journey() {
    let mut service = Service::new(ServeConfig {
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    register(&mut service, "alice", 11, "single-tamperer", "protocol");
    register(&mut service, "bob", 12, "mixed", "appraisal");
    for journey in 0..5u64 {
        for owner in ["alice", "bob"] {
            let reply = service.handle(Request::Submit {
                owner: owner.into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }));
        }
    }

    // Shutdown with a full ingress queue: everything accepted settles.
    let reply = service.handle(Request::Shutdown);
    assert_eq!(reply, Response::ShuttingDown { settled: 10 });

    // New work is refused after shutdown...
    let late = service.handle(Request::Submit {
        owner: "alice".into(),
        journey: 99,
    });
    assert!(matches!(
        late,
        Response::Rejected {
            reason: RejectReason::ShuttingDown,
            ..
        }
    ));
    let late_owner = service.handle(Request::Register(RegisterOwner {
        owner: "carol".into(),
        seed: 1,
        preset: "mixed".into(),
        mechanism: "protocol".into(),
    }));
    assert!(matches!(
        late_owner,
        Response::Rejected {
            reason: RejectReason::ShuttingDown,
            ..
        }
    ));

    // ...but outboxes stay drainable, and nothing accepted was dropped.
    for owner in ["alice", "bob"] {
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: owner.into(),
        }) else {
            panic!("drain after shutdown");
        };
        assert_eq!(verdicts.len(), 5, "{owner}'s verdicts all delivered");
        let Response::Stats(stats) = service.handle(Request::Stats {
            owner: owner.into(),
        }) else {
            panic!("stats after shutdown");
        };
        assert_eq!(stats.accepted, stats.verified, "{owner}: drain invariant");
        assert_eq!(stats.pending, 0);
    }
}

fn soak_stream(check_workers: usize, seed: u64, preset: &str, mechanism: &str) -> String {
    let mut service = Service::new(ServeConfig {
        check_workers,
        queue_capacity: 16,
        key_pool: 16,
        ..ServeConfig::default()
    });
    let config = SoakConfig {
        owners: 4,
        journeys: 48,
        seed,
        preset: preset.into(),
        mechanism: mechanism.into(),
        tick_every: 12,
        ..SoakConfig::default()
    };
    let outcome = run_soak(&mut service, &config);
    assert_eq!(outcome.dropped, 0);
    assert_eq!(outcome.verified, 48);
    outcome.stream
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The tentpole determinism contract: for a fixed seed and request order,
/// the per-owner verdict stream is byte-identical across runs, worker
/// counts, and telemetry levels — pinned against a committed fixture.
/// Regenerate with `REGEN_GOLDEN=1 cargo test -p refstate-serve`.
fn check_golden_stream(fixture: &str, preset: &str, mechanism: &str) {
    let seed = 42;
    let baseline = soak_stream(1, seed, preset, mechanism);

    let path = golden_path(fixture);
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &baseline).unwrap();
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); run with REGEN_GOLDEN=1")
    });
    assert_eq!(baseline, golden, "verdict stream drifted from the fixture");

    for check_workers in [2, 8] {
        assert_eq!(
            soak_stream(check_workers, seed, preset, mechanism),
            baseline,
            "stream must be invariant under check_workers={check_workers}"
        );
    }

    let before = telemetry::level();
    for level in [
        telemetry::TelemetryLevel::Counters,
        telemetry::TelemetryLevel::Full,
    ] {
        telemetry::set_level(level);
        let stream = soak_stream(4, seed, preset, mechanism);
        telemetry::set_level(before);
        assert_eq!(
            stream, baseline,
            "stream must be invariant under telemetry={level:?}"
        );
    }
}

#[test]
fn verdict_stream_is_golden_across_workers_and_telemetry() {
    check_golden_stream("soak_mixed_seed42.stream", "mixed", "protocol");
}

#[test]
fn cooperating_verdict_stream_is_golden_across_workers_and_telemetry() {
    // The disjoint-set soak: witness hosts (`v0..`) resolve through the
    // per-owner directory, and the cooperating mechanism's verdict
    // stream is pinned byte for byte like the linear one.
    check_golden_stream(
        "soak_cooperating_seed42.stream",
        "cooperating",
        "cooperating",
    );
}

/// The sharding determinism contract, across deployment shapes: the
/// per-owner verdict stream the lockstep single-connection soak
/// produces is byte-identical when the same load is driven over 1, 4,
/// or 16 pipelined connections, with and without the background tick
/// driver racing the clients' own ticks.
#[test]
fn verdict_stream_is_identical_across_connection_counts_and_tick_pacing() {
    let serve_config = ServeConfig {
        queue_capacity: 16,
        key_pool: 16,
        ..ServeConfig::default()
    };
    let config = SoakConfig {
        owners: 4,
        journeys: 48,
        seed: 42,
        preset: "mixed".into(),
        mechanism: "protocol".into(),
        tick_every: 12,
        ..SoakConfig::default()
    };

    let mut lockstep = Service::new(serve_config.clone());
    let baseline = run_soak(&mut lockstep, &config);
    assert_eq!(baseline.dropped, 0);

    for connections in [1, 4, 16] {
        for drive in [false, true] {
            let service = Arc::new(Service::new(serve_config.clone()));
            let driver =
                drive.then(|| TickDriver::start(Arc::clone(&service), TickDriverConfig::default()));
            let outcome = run_soak_concurrent(
                |_| LocalPipelined::new(Arc::clone(&service)),
                &config,
                connections,
                serve_config.queue_capacity,
            );
            if let Some(driver) = driver {
                driver.stop();
            }
            assert_eq!(outcome.dropped, 0);
            assert_eq!(
                outcome.stream, baseline.stream,
                "stream must be invariant under connections={connections} \
                 tick_driver={drive}"
            );
        }
    }
}

/// Per-owner lock independence: while one owner's tick is mid-settle
/// (its exec lock held for a long batch), other owners' submits, ticks,
/// and drains run to completion instead of queueing behind it — the
/// property the old service-wide mutex could not offer.
#[test]
fn other_owners_progress_while_one_owner_is_mid_settle() {
    let service = Arc::new(Service::new(ServeConfig {
        queue_capacity: 256,
        key_pool: 16,
        ..ServeConfig::default()
    }));
    for (owner, seed) in [("carol", 42), ("alice", 7), ("bob", 8)] {
        let reply = service.handle(Request::Register(RegisterOwner {
            owner: owner.into(),
            seed,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(reply, Response::Registered { .. }), "{reply:?}");
    }

    // A settle long enough to still be running while alice and bob do a
    // full submit → tick → drain round (~two orders of magnitude less
    // work) on this thread.
    let carol_batch = 256u64;
    for journey in 0..carol_batch {
        let reply = service.handle(Request::Submit {
            owner: "carol".into(),
            journey,
        });
        assert!(matches!(reply, Response::Accepted { .. }), "{reply:?}");
    }
    let settled = Arc::new(AtomicBool::new(false));
    let ticker = {
        let service = Arc::clone(&service);
        let settled = Arc::clone(&settled);
        std::thread::spawn(move || {
            let reply = service.handle(Request::TickOwners(vec!["carol".into()]));
            settled.store(true, Ordering::SeqCst);
            reply
        })
    };
    // Carol's tick drains her ingress queue first (pending drops to 0,
    // Stats never needs her exec lock), then settles; observing the
    // empty queue before the settle flag means she is mid-settle now.
    loop {
        let Response::Stats(stats) = service.handle(Request::Stats {
            owner: "carol".into(),
        }) else {
            panic!("stats while ticking");
        };
        if stats.pending == 0 {
            break;
        }
        std::thread::yield_now();
    }

    for journey in 0..4u64 {
        for owner in ["alice", "bob"] {
            let reply = service.handle(Request::Submit {
                owner: owner.into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }), "{reply:?}");
        }
    }
    let reply = service.handle(Request::TickOwners(vec!["alice".into(), "bob".into()]));
    assert_eq!(reply, Response::Ticked { settled: 8 });
    for owner in ["alice", "bob"] {
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: owner.into(),
        }) else {
            panic!("drain while carol settles");
        };
        assert_eq!(verdicts.len(), 4, "{owner}'s round completed");
    }
    assert!(
        !settled.load(Ordering::SeqCst),
        "alice and bob finished a full round while carol was still settling"
    );

    let reply = ticker.join().expect("ticker thread");
    assert_eq!(
        reply,
        Response::Ticked {
            settled: carol_batch
        }
    );
    let Response::Verdicts(verdicts) = service.handle(Request::Drain {
        owner: "carol".into(),
    }) else {
        panic!("drain carol");
    };
    assert_eq!(verdicts.len(), carol_batch as usize);
}

/// The pipelined transport: many requests streamed before the first
/// read, responses arriving strictly in request order.
#[test]
fn pipelined_tcp_responses_come_back_in_request_order() {
    let server = Server::bind(
        Service::new(ServeConfig {
            queue_capacity: 64,
            key_pool: 8,
            ..ServeConfig::default()
        }),
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut client = PipelinedClient::connect(server.addr()).expect("connect");

    client
        .send(&Request::Register(RegisterOwner {
            owner: "carol".into(),
            seed: 9,
            preset: "single-tamperer".into(),
            mechanism: "protocol".into(),
        }))
        .expect("send register");
    assert!(matches!(
        client.recv().expect("registered"),
        Response::Registered { .. }
    ));

    // A window of 32 submits with no intervening reads; the replies must
    // come back as `Accepted` in exactly the order sent.
    let window = 32u64;
    for journey in 0..window {
        client
            .send(&Request::Submit {
                owner: "carol".into(),
                journey,
            })
            .expect("send submit");
    }
    for journey in 0..window {
        match client.recv().expect("accepted") {
            Response::Accepted { journey: j, .. } => {
                assert_eq!(j, journey, "responses must be request-ordered")
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
    }

    client
        .send(&Request::TickOwners(vec!["carol".into()]))
        .expect("send tick");
    assert_eq!(
        client.recv().expect("ticked"),
        Response::Ticked { settled: window }
    );
    client
        .send(&Request::Drain {
            owner: "carol".into(),
        })
        .expect("send drain");
    let Response::Verdicts(verdicts) = client.recv().expect("verdicts") else {
        panic!("drain reply");
    };
    let journeys: Vec<u64> = verdicts.iter().map(|v| v.journey).collect();
    assert_eq!(
        journeys,
        (0..window).collect::<Vec<_>>(),
        "verdicts deliver in admission order"
    );

    client.send(&Request::Shutdown).expect("send shutdown");
    assert!(matches!(
        client.recv().expect("shutting down"),
        Response::ShuttingDown { .. }
    ));
    // join waits for every connection to close; hang up first.
    drop(client);
    server.join();
}

#[test]
fn tcp_roundtrip_matches_in_process_service() {
    // The same request sequence, once in process and once over TCP,
    // must produce identical verdict streams: the transport adds framing
    // only, never semantics.
    let config = SoakConfig {
        owners: 2,
        journeys: 12,
        seed: 7,
        preset: "single-tamperer".into(),
        mechanism: "protocol".into(),
        tick_every: 4,
        ..SoakConfig::default()
    };
    let serve_config = ServeConfig {
        key_pool: 8,
        ..ServeConfig::default()
    };

    let mut local = Service::new(serve_config.clone());
    let local_outcome = run_soak(&mut local, &config);

    let server = Server::bind(Service::new(serve_config), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let remote_outcome = run_soak(&mut client, &config);
    assert_eq!(remote_outcome.stream, local_outcome.stream);
    assert_eq!(remote_outcome.dropped, 0);

    // The soak sent Shutdown; the accept loop notices and exits. join
    // waits for every connection to close, so hang up first.
    drop(client);
    server.join();
}

#[test]
fn tcp_malformed_frame_gets_a_typed_error_reply() {
    use std::io::{Read, Write};

    let server = Server::bind(Service::new(ServeConfig::default()), "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    // A frame whose payload is a bogus request tag.
    stream.write_all(&1u32.to_le_bytes()).unwrap();
    stream.write_all(&[250u8]).unwrap();
    stream.flush().unwrap();
    let mut reader = refstate_wire::FrameReader::new(&mut stream, refstate_wire::DEFAULT_MAX_FRAME);
    let reply: Response = reader
        .read_message()
        .expect("server replies before closing")
        .expect("one error frame");
    match reply {
        Response::Error { message } => assert!(message.contains("bad request frame")),
        other => panic!("expected an error reply, got {other:?}"),
    }
    // The server closed the connection after the error.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.stop();
    server.join();
}

#[test]
fn oversized_tcp_frame_is_refused_not_buffered() {
    use std::io::Write;

    let server = Server::bind(Service::new(ServeConfig::default()), "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    // Declare a frame far past the cap; the server must refuse without
    // allocating or waiting for the (never-sent) payload.
    let declared = (refstate_wire::DEFAULT_MAX_FRAME as u32) + 1;
    stream.write_all(&declared.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = refstate_wire::FrameReader::new(&mut stream, refstate_wire::DEFAULT_MAX_FRAME);
    let reply: Response = reader
        .read_message()
        .expect("server replies before closing")
        .expect("one error frame");
    assert!(matches!(reply, Response::Error { .. }));
    server.stop();
    server.join();
}
