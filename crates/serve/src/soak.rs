//! The soak driver: sustained multi-owner load with client-observed SLO
//! percentiles.
//!
//! A soak run registers `owners` tenants, streams `journeys` submissions
//! round-robin across them, ticks the service every `tick_every`
//! accepted submissions, and drains verdicts after every tick. Latency
//! is measured *client-side* — submit instant to drain instant — so the
//! percentiles are end-to-end service numbers, while the verdict stream
//! itself stays timing-free and therefore byte-identical for a fixed
//! seed across runs, worker counts, and telemetry levels.
//!
//! The outcome serializes as schema-checked JSON
//! (`refstate-soak-slo-v1`, validated by the bench crate's
//! `check_bench_json --slo`), and the concatenated per-owner verdict
//! stream is returned for golden-fixture comparison.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use refstate_fleet::scenario::scenario_seed;

use crate::proto::{OwnerStats, RegisterOwner, RejectReason, Request, Response, VerdictReply};
use crate::service::Service;

/// Anything that can answer protocol requests: the in-process service or
/// a TCP [`crate::net::Client`].
pub trait Endpoint {
    /// Sends one request, returns its response.
    fn call(&mut self, request: Request) -> Response;
}

impl Endpoint for Service {
    fn call(&mut self, request: Request) -> Response {
        self.handle(request)
    }
}

impl Endpoint for crate::net::Client {
    fn call(&mut self, request: Request) -> Response {
        match crate::net::Client::call(self, &request) {
            Ok(response) => response,
            Err(error) => Response::Error {
                message: format!("transport failure: {error}"),
            },
        }
    }
}

/// Soak-load shape (the service's own knobs live in
/// [`crate::service::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Number of tenants to register.
    pub owners: usize,
    /// Total journey submissions across all tenants.
    pub journeys: u64,
    /// The soak seed; owner seeds derive from it.
    pub seed: u64,
    /// Scenario preset name, passed through to each registration.
    pub preset: String,
    /// Mechanism name, passed through to each registration.
    pub mechanism: String,
    /// Tick (and drain) after this many accepted submissions.
    pub tick_every: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            owners: 4,
            journeys: 200,
            seed: 42,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
            tick_every: 32,
        }
    }
}

impl SoakConfig {
    /// The deterministic name of tenant `index`.
    pub fn owner_name(index: usize) -> String {
        format!("owner-{index}")
    }

    /// The deterministic scenario seed of tenant `index`.
    pub fn owner_seed(&self, index: usize) -> u64 {
        scenario_seed(self.seed, 0x0a11_ce00 + index as u64)
    }
}

/// Client-observed latency percentiles, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloPercentiles {
    /// Median verdict latency.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl SloPercentiles {
    fn from_latencies(latencies: &mut [Duration]) -> SloPercentiles {
        if latencies.is_empty() {
            return SloPercentiles::default();
        }
        latencies.sort_unstable();
        let at = |q: f64| -> u64 {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx].as_micros() as u64
        };
        SloPercentiles {
            p50_us: at(0.50),
            p95_us: at(0.95),
            p99_us: at(0.99),
            max_us: latencies[latencies.len() - 1].as_micros() as u64,
        }
    }
}

/// Everything one soak run produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The load shape that ran.
    pub config: SoakConfig,
    /// Submissions attempted (accepted + rejected attempts).
    pub submitted: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions refused (each refused attempt counts once; a refused
    /// journey is retried after a tick and may be admitted then).
    pub rejected: u64,
    /// Verdicts drained.
    pub verified: u64,
    /// Verdicts that flagged their journey.
    pub detected: u64,
    /// Accepted journeys that never produced a verdict — the drain
    /// invariant; must be zero after shutdown.
    pub dropped: u64,
    /// Client-observed verdict latency.
    pub latency: SloPercentiles,
    /// Per-owner closing stats, in registration order.
    pub owners: Vec<OwnerStats>,
    /// The concatenated verdict stream (one [`VerdictReply::stream_line`]
    /// per verdict, in drain order) — the golden-fixture payload.
    pub stream: String,
}

impl SoakOutcome {
    /// Replay-cache hits summed over owners.
    pub fn cache_hits(&self) -> u64 {
        self.owners.iter().map(|o| o.cache_hits).sum()
    }

    /// Replay-cache misses summed over owners.
    pub fn cache_misses(&self) -> u64 {
        self.owners.iter().map(|o| o.cache_misses).sum()
    }

    /// Replay-cache hit rate over all owners (0 when no cache traffic).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// FNV-1a digest of the verdict stream, as printed in the SLO JSON.
    pub fn stream_digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.stream.as_bytes() {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// The schema-checked SLO JSON artifact (`refstate-soak-slo-v1`).
    pub fn to_json(&self, check_workers: usize, queue_capacity: usize) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"refstate-soak-slo-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"owners\": {},\n", self.config.owners));
        out.push_str(&format!("  \"journeys\": {},\n", self.config.journeys));
        out.push_str(&format!(
            "  \"preset\": {},\n",
            json_str(&self.config.preset)
        ));
        out.push_str(&format!(
            "  \"mechanism\": {},\n",
            json_str(&self.config.mechanism)
        ));
        out.push_str(&format!("  \"tick_every\": {},\n", self.config.tick_every));
        out.push_str(&format!("  \"check_workers\": {check_workers},\n"));
        out.push_str(&format!("  \"queue_capacity\": {queue_capacity},\n"));
        out.push_str("  \"counts\": {\n");
        out.push_str(&format!("    \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("    \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("    \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("    \"verified\": {},\n", self.verified));
        out.push_str(&format!("    \"detected\": {},\n", self.detected));
        out.push_str(&format!("    \"dropped\": {}\n", self.dropped));
        out.push_str("  },\n");
        out.push_str("  \"latency_us\": {\n");
        out.push_str(&format!("    \"p50\": {},\n", self.latency.p50_us));
        out.push_str(&format!("    \"p95\": {},\n", self.latency.p95_us));
        out.push_str(&format!("    \"p99\": {},\n", self.latency.p99_us));
        out.push_str(&format!("    \"max\": {}\n", self.latency.max_us));
        out.push_str("  },\n");
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!("    \"hits\": {},\n", self.cache_hits()));
        out.push_str(&format!("    \"misses\": {},\n", self.cache_misses()));
        out.push_str(&format!("    \"hit_rate\": {:.6}\n", self.cache_hit_rate()));
        out.push_str("  },\n");
        out.push_str("  \"owners_detail\": [\n");
        for (i, owner) in self.owners.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"owner\": {}, ", json_str(&owner.owner)));
            out.push_str(&format!("\"accepted\": {}, ", owner.accepted));
            out.push_str(&format!("\"rejected\": {}, ", owner.rejected));
            out.push_str(&format!("\"verified\": {}, ", owner.verified));
            out.push_str(&format!("\"detected\": {}, ", owner.detected));
            out.push_str(&format!("\"final_checks\": {}, ", owner.final_checks));
            out.push_str(&format!(
                "\"flush_verifications\": {}, ",
                owner.flush_verifications
            ));
            out.push_str(&format!("\"flush_failures\": {}", owner.flush_failures));
            out.push('}');
            if i + 1 < self.owners.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"stream_digest\": {}\n",
            json_str(&self.stream_digest())
        ));
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Drives one soak run against `endpoint`.
///
/// Submissions go round-robin across owners (submission `k` targets
/// owner `k % owners` with journey id `k / owners`); a
/// [`RejectReason::QueueFull`] refusal triggers one tick-and-retry, so
/// sustained overload degrades to tick-paced admission instead of loss.
/// After the last submission the driver sends [`Request::Shutdown`]
/// (settling everything admitted) and drains every owner a final time.
///
/// # Panics
///
/// Panics if the endpoint rejects a registration or replies out of
/// protocol — a soak against a misconfigured service is a setup error,
/// not a measurement.
pub fn run_soak(endpoint: &mut dyn Endpoint, config: &SoakConfig) -> SoakOutcome {
    assert!(config.owners > 0, "soak needs at least one owner");
    assert!(config.tick_every > 0, "tick_every must be positive");
    let owner_names: Vec<String> = (0..config.owners).map(SoakConfig::owner_name).collect();
    for (index, name) in owner_names.iter().enumerate() {
        let reply = endpoint.call(Request::Register(RegisterOwner {
            owner: name.clone(),
            seed: config.owner_seed(index),
            preset: config.preset.clone(),
            mechanism: config.mechanism.clone(),
        }));
        assert!(
            matches!(reply, Response::Registered { .. }),
            "registration of {name} failed: {reply:?}"
        );
    }

    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut detected = 0u64;
    let mut in_flight: HashMap<(String, u64), Instant> = HashMap::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(config.journeys as usize);
    let mut stream = String::new();
    let mut verified = 0u64;
    let mut since_tick = 0usize;

    let drain_all = |endpoint: &mut dyn Endpoint,
                     in_flight: &mut HashMap<(String, u64), Instant>,
                     latencies: &mut Vec<Duration>,
                     stream: &mut String,
                     verified: &mut u64,
                     detected: &mut u64| {
        for name in &owner_names {
            let reply = endpoint.call(Request::Drain {
                owner: name.clone(),
            });
            let Response::Verdicts(verdicts) = reply else {
                panic!("drain of {name} failed: {reply:?}");
            };
            for verdict in verdicts {
                record_verdict(verdict, in_flight, latencies, stream, verified, detected);
            }
        }
    };

    for k in 0..config.journeys {
        let index = (k % config.owners as u64) as usize;
        let owner = &owner_names[index];
        let journey = k / config.owners as u64;
        let mut attempts = 0;
        loop {
            attempts += 1;
            submitted += 1;
            let queued = Instant::now();
            let reply = endpoint.call(Request::Submit {
                owner: owner.clone(),
                journey,
            });
            match reply {
                Response::Accepted { .. } => {
                    in_flight.insert((owner.clone(), journey), queued);
                    accepted += 1;
                    since_tick += 1;
                    break;
                }
                Response::Rejected {
                    reason: RejectReason::QueueFull,
                    ..
                } => {
                    rejected += 1;
                    // Relieve pressure, then retry; two refusals in a row
                    // would mean the tick itself cannot drain the queue,
                    // which the bounded-queue design makes impossible.
                    assert!(attempts < 3, "submission refused after a tick drained");
                    endpoint.call(Request::Tick);
                    since_tick = 0;
                    drain_all(
                        endpoint,
                        &mut in_flight,
                        &mut latencies,
                        &mut stream,
                        &mut verified,
                        &mut detected,
                    );
                }
                other => panic!("submission of {owner}/{journey} failed: {other:?}"),
            }
        }
        if since_tick >= config.tick_every {
            endpoint.call(Request::Tick);
            since_tick = 0;
            drain_all(
                endpoint,
                &mut in_flight,
                &mut latencies,
                &mut stream,
                &mut verified,
                &mut detected,
            );
        }
    }

    // Shutdown settles every admitted journey; the final drain empties
    // the outboxes. Anything left in `in_flight` afterwards was dropped.
    let reply = endpoint.call(Request::Shutdown);
    assert!(
        matches!(reply, Response::ShuttingDown { .. }),
        "shutdown failed: {reply:?}"
    );
    drain_all(
        endpoint,
        &mut in_flight,
        &mut latencies,
        &mut stream,
        &mut verified,
        &mut detected,
    );

    let owners = owner_names
        .iter()
        .map(|name| {
            let reply = endpoint.call(Request::Stats {
                owner: name.clone(),
            });
            let Response::Stats(stats) = reply else {
                panic!("stats of {name} failed: {reply:?}");
            };
            stats
        })
        .collect();

    SoakOutcome {
        config: config.clone(),
        submitted,
        accepted,
        rejected,
        verified,
        detected,
        dropped: in_flight.len() as u64,
        latency: SloPercentiles::from_latencies(&mut latencies),
        owners,
        stream,
    }
}

fn record_verdict(
    verdict: VerdictReply,
    in_flight: &mut HashMap<(String, u64), Instant>,
    latencies: &mut Vec<Duration>,
    stream: &mut String,
    verified: &mut u64,
    detected: &mut u64,
) {
    if let Some(queued) = in_flight.remove(&(verdict.owner.clone(), verdict.journey)) {
        latencies.push(queued.elapsed());
    }
    *verified += 1;
    if verdict.detected {
        *detected += 1;
    }
    stream.push_str(&verdict.stream_line());
    stream.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn soak_drains_everything_it_accepts() {
        let mut service = Service::new(ServeConfig {
            queue_capacity: 8,
            ..ServeConfig::default()
        });
        let config = SoakConfig {
            owners: 2,
            journeys: 30,
            seed: 9,
            tick_every: 5,
            ..SoakConfig::default()
        };
        let outcome = run_soak(&mut service, &config);
        assert_eq!(outcome.accepted, 30);
        assert_eq!(outcome.verified, 30);
        assert_eq!(outcome.dropped, 0, "no accepted journey goes unverified");
        assert_eq!(outcome.stream.lines().count(), 30);
        assert!(outcome.latency.p50_us <= outcome.latency.max_us);
    }

    #[test]
    fn slo_json_has_schema_and_digest() {
        let mut service = Service::new(ServeConfig::default());
        let config = SoakConfig {
            owners: 1,
            journeys: 6,
            seed: 3,
            tick_every: 3,
            preset: "all-honest".into(),
            ..SoakConfig::default()
        };
        let outcome = run_soak(&mut service, &config);
        let json = outcome.to_json(1, 64);
        assert!(json.contains("\"schema\": \"refstate-soak-slo-v1\""));
        assert!(json.contains(&format!(
            "\"stream_digest\": \"{}\"",
            outcome.stream_digest()
        )));
        assert!(json.contains("\"dropped\": 0"));
    }
}
