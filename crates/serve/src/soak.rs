//! The soak driver: sustained multi-owner load with client-observed SLO
//! percentiles, over one lockstep connection or N pipelined connections.
//!
//! A soak run registers `owners` tenants, streams `journeys` submissions
//! round-robin across them, paces the service with ticks (client ticks
//! in [`run_soak`]; per-partition [`Request::TickOwners`] hints — or the
//! server-side driver alone — in [`run_soak_concurrent`]), and drains
//! verdicts as they settle. Latency is measured *client-side* — submit
//! instant to drain instant — so the percentiles are end-to-end service
//! numbers.
//!
//! The verdict stream is reported **grouped by owner** (each owner's
//! verdicts in admission order, owners concatenated in registration
//! order), not in drain order: per-owner admission order is the
//! service's determinism contract, while drain interleaving depends on
//! tick pacing and connection count. Grouping makes the stream — and its
//! digest — byte-identical for a fixed seed across runs, worker counts,
//! connection counts, tick pacing, and telemetry levels.
//!
//! The concurrent driver partitions owners across connections (owner
//! `i` belongs to connection `i % connections`) so each owner's journeys
//! are submitted from exactly one connection, in order — the one
//! client-side obligation the determinism contract places on a
//! pipelining deployment. Each connection keeps a bounded burst of
//! submissions in flight and syncs (tick + drain) before any owner's
//! queue can reach the service's admission bound, so nothing is ever
//! refused and nothing is ever dropped.
//!
//! The outcome serializes as schema-checked JSON
//! (`refstate-soak-slo-v1`, validated by the bench crate's
//! `check_bench_json --slo`) carrying aggregate journeys/s and
//! per-connection breakdowns alongside the counts, percentiles, and the
//! stream digest.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use refstate_fleet::scenario::scenario_seed;

use crate::net::PipelinedClient;
use crate::proto::{
    OwnerStats, RegisterOwner, RejectReason, Request, Response, StreamCheckpoint, VerdictReply,
};
use crate::service::Service;

/// Anything that can answer protocol requests in lockstep: the
/// in-process service or a TCP [`crate::net::Client`].
pub trait Endpoint {
    /// Sends one request, returns its response.
    fn call(&mut self, request: Request) -> Response;
}

impl Endpoint for Service {
    fn call(&mut self, request: Request) -> Response {
        self.handle(request)
    }
}

impl Endpoint for Arc<Service> {
    fn call(&mut self, request: Request) -> Response {
        self.handle(request)
    }
}

impl Endpoint for crate::net::Client {
    fn call(&mut self, request: Request) -> Response {
        match crate::net::Client::call(self, &request) {
            Ok(response) => response,
            Err(error) => Response::Error {
                message: format!("transport failure: {error}"),
            },
        }
    }
}

/// A transport that can keep many requests in flight: buffered sends, an
/// explicit flush, and strictly request-ordered receives. The concurrent
/// soak driver windows over this; errors are reported as strings because
/// a soak treats any transport failure as fatal.
pub trait PipelinedEndpoint: Send {
    /// Queues one request (may buffer without transmitting).
    fn send(&mut self, request: Request) -> Result<(), String>;
    /// Transmits everything queued.
    fn flush(&mut self) -> Result<(), String>;
    /// Receives the response to the oldest unanswered request.
    fn recv(&mut self) -> Result<Response, String>;
}

impl PipelinedEndpoint for PipelinedClient {
    fn send(&mut self, request: Request) -> Result<(), String> {
        PipelinedClient::send(self, &request).map_err(|error| format!("send failed: {error}"))
    }

    fn flush(&mut self) -> Result<(), String> {
        PipelinedClient::flush(self).map_err(|error| format!("flush failed: {error}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        PipelinedClient::recv(self).map_err(|error| format!("recv failed: {error}"))
    }
}

/// An in-process pipelined endpoint: requests are handled synchronously
/// against a shared [`Service`], responses queue until received. Several
/// of these across threads model several TCP connections into one
/// server, without the sockets.
pub struct LocalPipelined {
    service: Arc<Service>,
    replies: VecDeque<Response>,
}

impl LocalPipelined {
    /// Wraps a shared service as one pipelined "connection".
    pub fn new(service: Arc<Service>) -> LocalPipelined {
        LocalPipelined {
            service,
            replies: VecDeque::new(),
        }
    }
}

impl PipelinedEndpoint for LocalPipelined {
    fn send(&mut self, request: Request) -> Result<(), String> {
        let response = self.service.handle(request);
        self.replies.push_back(response);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, String> {
        self.replies
            .pop_front()
            .ok_or_else(|| "recv with no request in flight".into())
    }
}

/// Soak-load shape (the service's own knobs live in
/// [`crate::service::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Number of tenants to register.
    pub owners: usize,
    /// Total journey submissions across all tenants.
    pub journeys: u64,
    /// The soak seed; owner seeds derive from it.
    pub seed: u64,
    /// Scenario preset name, passed through to each registration.
    pub preset: String,
    /// Mechanism name, passed through to each registration.
    pub mechanism: String,
    /// Tick (and drain) after this many accepted submissions.
    pub tick_every: usize,
    /// First global submission index. Submission `k` targets owner
    /// `k % owners` with journey id `k / owners`, so a resumed soak sets
    /// `start` to the previous legs' total and journey ids continue
    /// exactly where the interrupted run stopped.
    pub start: u64,
    /// Resume against a warm-restarted server: registrations restored
    /// from its state dir (reported as [`RejectReason::DuplicateOwner`])
    /// are accepted, and the server's durable stream checkpoints are
    /// verified to sit exactly at `start`'s per-owner offsets before any
    /// journey is submitted.
    pub resume: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            owners: 4,
            journeys: 200,
            seed: 42,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
            tick_every: 32,
            start: 0,
            resume: false,
        }
    }
}

impl SoakConfig {
    /// The deterministic name of tenant `index`.
    pub fn owner_name(index: usize) -> String {
        format!("owner-{index}")
    }

    /// The deterministic scenario seed of tenant `index`.
    pub fn owner_seed(&self, index: usize) -> u64 {
        scenario_seed(self.seed, 0x0a11_ce00 + index as u64)
    }

    /// How many of the first `n` global submissions the round-robin
    /// assigns to tenant `index` (submission `k` targets owner
    /// `k % owners`).
    fn share(&self, n: u64, index: usize) -> u64 {
        let owners = self.owners as u64;
        n / owners + u64::from((index as u64) < n % owners)
    }

    /// How many journeys this leg (`start..start + journeys`) assigns to
    /// tenant `index`.
    fn journeys_for(&self, index: usize) -> u64 {
        self.share(self.start + self.journeys, index) - self.share(self.start, index)
    }

    /// The first journey id tenant `index` receives in this leg — also
    /// the durable stream offset a resumed server must report for it.
    fn first_journey_for(&self, index: usize) -> u64 {
        self.share(self.start, index)
    }
}

/// Client-observed latency percentiles, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloPercentiles {
    /// Median verdict latency.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl SloPercentiles {
    fn from_latencies(latencies: &mut [Duration]) -> SloPercentiles {
        if latencies.is_empty() {
            return SloPercentiles::default();
        }
        latencies.sort_unstable();
        // Nearest-rank percentiles: the q-th percentile is the value at
        // 1-based rank ⌈q·n⌉ — the smallest observation with at least a
        // q fraction of the sample at or below it. (The previous
        // `round((n-1)·q)` interpolation over-reported small samples:
        // with two observations it called the *larger* one the median,
        // and with 100 it returned the 51st value as p50.)
        let at = |q: f64| -> u64 {
            let rank = (latencies.len() as f64 * q).ceil() as usize;
            latencies[rank.clamp(1, latencies.len()) - 1].as_micros() as u64
        };
        SloPercentiles {
            p50_us: at(0.50),
            p95_us: at(0.95),
            p99_us: at(0.99),
            max_us: latencies[latencies.len() - 1].as_micros() as u64,
        }
    }
}

/// What one connection contributed to a soak run.
#[derive(Debug, Clone)]
pub struct ConnectionOutcome {
    /// The connection index (also its partition of the owner space).
    pub connection: usize,
    /// How many owners this connection drove.
    pub owners: usize,
    /// Submissions attempted on this connection.
    pub submitted: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions refused (always zero on the concurrent path, whose
    /// capacity accounting makes refusal impossible).
    pub rejected: u64,
    /// Verdicts this connection drained.
    pub verified: u64,
    /// This connection's client-observed verdict latency.
    pub latency: SloPercentiles,
}

/// The server-side tick-driver pacing a soak ran under, echoed into the
/// SLO JSON so the artifact records how the run was driven.
#[derive(Debug, Clone)]
pub struct TickDriverMeta {
    /// Scan interval.
    pub interval: Duration,
    /// Batch-amortization threshold.
    pub batch_min: usize,
    /// Latency deadline.
    pub max_age: Duration,
}

/// What a resumed soak observed about the server's warm start, echoed
/// into the SLO JSON (`warm_start` block) so the artifact records that
/// the run continued a durable history rather than starting cold.
#[derive(Debug, Clone)]
pub struct WarmStartMeta {
    /// The state store's open-generation stamp (≥ 2 on a real restart;
    /// 0 means the server had no state dir).
    pub generation: u64,
    /// The global submission index this leg resumed from.
    pub resume_offset: u64,
    /// The per-owner stream checkpoints the server reported at resume,
    /// each verified against the offset the resume expected.
    pub checkpoints: Vec<StreamCheckpoint>,
}

/// Everything one soak run produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The load shape that ran.
    pub config: SoakConfig,
    /// Submissions attempted (accepted + rejected attempts).
    pub submitted: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions refused (each refused attempt counts once; a refused
    /// journey is retried after a tick and may be admitted then).
    pub rejected: u64,
    /// Verdicts drained.
    pub verified: u64,
    /// Verdicts that flagged their journey.
    pub detected: u64,
    /// Accepted journeys that never produced a verdict — the drain
    /// invariant; must be zero after shutdown.
    pub dropped: u64,
    /// Client-observed verdict latency over every connection.
    pub latency: SloPercentiles,
    /// Per-owner closing stats, in registration order.
    pub owners: Vec<OwnerStats>,
    /// The verdict stream, grouped by owner (each owner's verdicts in
    /// admission order, owners in registration order; one
    /// [`VerdictReply::stream_line`] per verdict) — the golden-fixture
    /// payload, invariant across connection counts and tick pacing.
    pub stream: String,
    /// How many client connections drove the load.
    pub connections: usize,
    /// Wall time from first submission to last drain.
    pub elapsed: Duration,
    /// Per-connection breakdown, in connection order.
    pub per_connection: Vec<ConnectionOutcome>,
    /// The server-side tick-driver pacing, when one ran (set by the
    /// caller that started the driver).
    pub tick_driver: Option<TickDriverMeta>,
    /// The warm-start handshake, when this was a resumed run.
    pub warm_start: Option<WarmStartMeta>,
    /// Aggregate journeys/s of a single-connection lockstep baseline run,
    /// when the caller measured one for comparison.
    pub baseline_journeys_per_sec: Option<f64>,
    /// Hardware parallelism of the host the soak ran on
    /// (`std::thread::available_parallelism`). Recorded so throughput
    /// ratios can be interpreted: on a single-core host a CPU-bound
    /// soak cannot beat its own serial baseline no matter how many
    /// connections drive it.
    pub parallelism: usize,
}

impl SoakOutcome {
    /// Replay-cache hits summed over owners.
    pub fn cache_hits(&self) -> u64 {
        self.owners.iter().map(|o| o.cache_hits).sum()
    }

    /// Replay-cache misses summed over owners.
    pub fn cache_misses(&self) -> u64 {
        self.owners.iter().map(|o| o.cache_misses).sum()
    }

    /// Replay-cache hit rate over all owners (0 when no cache traffic).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Aggregate throughput: verdicts drained per wall-clock second.
    pub fn journeys_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.verified as f64 / secs
        }
    }

    /// Aggregate journeys/s over the single-connection baseline's, when a
    /// baseline was measured.
    pub fn throughput_ratio_vs_single(&self) -> Option<f64> {
        let baseline = self.baseline_journeys_per_sec?;
        if baseline <= 0.0 {
            return None;
        }
        Some(self.journeys_per_sec() / baseline)
    }

    /// FNV-1a digest of the verdict stream, as printed in the SLO JSON.
    pub fn stream_digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.stream.as_bytes() {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// The schema-checked SLO JSON artifact (`refstate-soak-slo-v1`).
    pub fn to_json(&self, check_workers: usize, queue_capacity: usize) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"refstate-soak-slo-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"owners\": {},\n", self.config.owners));
        out.push_str(&format!("  \"journeys\": {},\n", self.config.journeys));
        out.push_str(&format!(
            "  \"preset\": {},\n",
            json_str(&self.config.preset)
        ));
        out.push_str(&format!(
            "  \"mechanism\": {},\n",
            json_str(&self.config.mechanism)
        ));
        out.push_str(&format!("  \"tick_every\": {},\n", self.config.tick_every));
        out.push_str(&format!("  \"start\": {},\n", self.config.start));
        out.push_str(&format!("  \"check_workers\": {check_workers},\n"));
        out.push_str(&format!("  \"queue_capacity\": {queue_capacity},\n"));
        out.push_str(&format!("  \"connections\": {},\n", self.connections));
        out.push_str("  \"aggregate\": {\n");
        out.push_str(&format!(
            "    \"elapsed_us\": {},\n",
            self.elapsed.as_micros().max(1)
        ));
        out.push_str(&format!(
            "    \"journeys_per_sec\": {:.3},\n",
            self.journeys_per_sec()
        ));
        out.push_str(&format!("    \"parallelism\": {}\n", self.parallelism));
        out.push_str("  },\n");
        if let Some(driver) = &self.tick_driver {
            out.push_str("  \"tick_driver\": {\n");
            out.push_str(&format!(
                "    \"interval_us\": {},\n",
                driver.interval.as_micros()
            ));
            out.push_str(&format!("    \"batch_min\": {},\n", driver.batch_min));
            out.push_str(&format!(
                "    \"max_age_us\": {}\n",
                driver.max_age.as_micros()
            ));
            out.push_str("  },\n");
        }
        out.push_str("  \"counts\": {\n");
        out.push_str(&format!("    \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("    \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("    \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("    \"verified\": {},\n", self.verified));
        out.push_str(&format!("    \"detected\": {},\n", self.detected));
        out.push_str(&format!("    \"dropped\": {}\n", self.dropped));
        out.push_str("  },\n");
        out.push_str("  \"latency_us\": {\n");
        out.push_str(&format!("    \"p50\": {},\n", self.latency.p50_us));
        out.push_str(&format!("    \"p95\": {},\n", self.latency.p95_us));
        out.push_str(&format!("    \"p99\": {},\n", self.latency.p99_us));
        out.push_str(&format!("    \"max\": {}\n", self.latency.max_us));
        out.push_str("  },\n");
        out.push_str("  \"per_connection\": [\n");
        for (i, conn) in self.per_connection.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"connection\": {}, ", conn.connection));
            out.push_str(&format!("\"owners\": {}, ", conn.owners));
            out.push_str(&format!("\"submitted\": {}, ", conn.submitted));
            out.push_str(&format!("\"accepted\": {}, ", conn.accepted));
            out.push_str(&format!("\"rejected\": {}, ", conn.rejected));
            out.push_str(&format!("\"verified\": {}, ", conn.verified));
            out.push_str(&format!(
                "\"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                conn.latency.p50_us, conn.latency.p95_us, conn.latency.p99_us, conn.latency.max_us
            ));
            out.push('}');
            if i + 1 < self.per_connection.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!("    \"hits\": {},\n", self.cache_hits()));
        out.push_str(&format!("    \"misses\": {},\n", self.cache_misses()));
        out.push_str(&format!("    \"hit_rate\": {:.6}\n", self.cache_hit_rate()));
        out.push_str("  },\n");
        out.push_str("  \"owners_detail\": [\n");
        for (i, owner) in self.owners.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"owner\": {}, ", json_str(&owner.owner)));
            out.push_str(&format!("\"accepted\": {}, ", owner.accepted));
            out.push_str(&format!("\"rejected\": {}, ", owner.rejected));
            out.push_str(&format!("\"verified\": {}, ", owner.verified));
            out.push_str(&format!("\"detected\": {}, ", owner.detected));
            out.push_str(&format!("\"final_checks\": {}, ", owner.final_checks));
            out.push_str(&format!(
                "\"flush_verifications\": {}, ",
                owner.flush_verifications
            ));
            out.push_str(&format!("\"flush_failures\": {}", owner.flush_failures));
            out.push('}');
            if i + 1 < self.owners.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        if let Some(warm) = &self.warm_start {
            out.push_str("  \"warm_start\": {\n");
            out.push_str(&format!("    \"generation\": {},\n", warm.generation));
            out.push_str(&format!("    \"resume_offset\": {},\n", warm.resume_offset));
            out.push_str("    \"checkpoints\": [\n");
            for (i, checkpoint) in warm.checkpoints.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"owner\": {}, \"offset\": {}, \"digest\": {}}}",
                    json_str(&checkpoint.owner),
                    checkpoint.offset,
                    json_str(&checkpoint.digest)
                ));
                if i + 1 < warm.checkpoints.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("    ]\n");
            out.push_str("  },\n");
        }
        if let (Some(baseline), Some(ratio)) = (
            self.baseline_journeys_per_sec,
            self.throughput_ratio_vs_single(),
        ) {
            out.push_str("  \"single_connection_baseline\": {\n");
            out.push_str(&format!("    \"journeys_per_sec\": {baseline:.3}\n"));
            out.push_str("  },\n");
            out.push_str(&format!("  \"throughput_ratio_vs_single\": {ratio:.3},\n"));
        }
        out.push_str(&format!(
            "  \"stream_digest\": {}\n",
            json_str(&self.stream_digest())
        ));
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Drives one lockstep soak run against `endpoint` (one request in
/// flight at a time — the single-connection baseline the concurrent
/// driver is measured against).
///
/// Submissions go round-robin across owners (submission `k` targets
/// owner `k % owners` with journey id `k / owners`); a
/// [`RejectReason::QueueFull`] refusal triggers one tick-and-retry, so
/// sustained overload degrades to tick-paced admission instead of loss.
/// After the last submission the driver sends [`Request::Shutdown`]
/// (settling everything admitted) and drains every owner a final time.
///
/// # Panics
///
/// Panics if the endpoint rejects a registration or replies out of
/// protocol — a soak against a misconfigured service is a setup error,
/// not a measurement.
pub fn run_soak(endpoint: &mut dyn Endpoint, config: &SoakConfig) -> SoakOutcome {
    assert!(config.owners > 0, "soak needs at least one owner");
    assert!(config.tick_every > 0, "tick_every must be positive");
    let owner_names: Vec<String> = (0..config.owners).map(SoakConfig::owner_name).collect();
    let name_to_index: HashMap<String, usize> = owner_names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), i))
        .collect();
    for (index, name) in owner_names.iter().enumerate() {
        let reply = endpoint.call(Request::Register(RegisterOwner {
            owner: name.clone(),
            seed: config.owner_seed(index),
            preset: config.preset.clone(),
            mechanism: config.mechanism.clone(),
        }));
        // A resumed leg finds its owners restored from the server's
        // state dir; the duplicate rejection is the expected handshake.
        let restored = config.resume
            && matches!(
                reply,
                Response::Rejected {
                    reason: RejectReason::DuplicateOwner,
                    ..
                }
            );
        assert!(
            matches!(reply, Response::Registered { .. }) || restored,
            "registration of {name} failed: {reply:?}"
        );
    }

    // Before a resumed leg submits anything, verify the server's durable
    // streams stand exactly where the interrupted run left them: owner
    // `i`'s stream offset must equal the number of journeys the first
    // `start` submissions assigned it. A mismatch means the state dir
    // lost (or duplicated) verdicts — the drain invariant across the
    // restart — so the soak refuses to continue.
    let warm_start = config.resume.then(|| {
        let reply = endpoint.call(Request::StreamState);
        let Response::StreamState { generation, owners } = reply else {
            panic!("stream-state query failed: {reply:?}");
        };
        for (index, name) in owner_names.iter().enumerate() {
            let expected = config.first_journey_for(index);
            let checkpoint = owners
                .iter()
                .find(|c| &c.owner == name)
                .unwrap_or_else(|| panic!("server reports no stream checkpoint for {name}"));
            assert_eq!(
                checkpoint.offset, expected,
                "resume mismatch: {name}'s durable stream is at offset {}, expected {expected}",
                checkpoint.offset
            );
        }
        WarmStartMeta {
            generation,
            resume_offset: config.start,
            checkpoints: owners,
        }
    });

    let started = Instant::now();
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut detected = 0u64;
    let mut in_flight: HashMap<(String, u64), Instant> = HashMap::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(config.journeys as usize);
    let mut streams: Vec<String> = vec![String::new(); config.owners];
    let mut verified = 0u64;
    let mut since_tick = 0usize;

    let drain_all = |endpoint: &mut dyn Endpoint,
                     in_flight: &mut HashMap<(String, u64), Instant>,
                     latencies: &mut Vec<Duration>,
                     streams: &mut [String],
                     verified: &mut u64,
                     detected: &mut u64| {
        for name in &owner_names {
            let reply = endpoint.call(Request::Drain {
                owner: name.clone(),
            });
            let Response::Verdicts(verdicts) = reply else {
                panic!("drain of {name} failed: {reply:?}");
            };
            for verdict in verdicts {
                record_verdict(
                    verdict,
                    in_flight,
                    latencies,
                    streams,
                    &name_to_index,
                    verified,
                    detected,
                );
            }
        }
    };

    for k in config.start..config.start + config.journeys {
        let index = (k % config.owners as u64) as usize;
        let owner = &owner_names[index];
        let journey = k / config.owners as u64;
        let mut attempts = 0;
        loop {
            attempts += 1;
            submitted += 1;
            let queued = Instant::now();
            let reply = endpoint.call(Request::Submit {
                owner: owner.clone(),
                journey,
            });
            match reply {
                Response::Accepted { .. } => {
                    in_flight.insert((owner.clone(), journey), queued);
                    accepted += 1;
                    since_tick += 1;
                    break;
                }
                Response::Rejected {
                    reason: RejectReason::QueueFull,
                    ..
                } => {
                    rejected += 1;
                    // Relieve pressure, then retry; two refusals in a row
                    // would mean the tick itself cannot drain the queue,
                    // which the bounded-queue design makes impossible.
                    assert!(attempts < 3, "submission refused after a tick drained");
                    endpoint.call(Request::Tick);
                    since_tick = 0;
                    drain_all(
                        endpoint,
                        &mut in_flight,
                        &mut latencies,
                        &mut streams,
                        &mut verified,
                        &mut detected,
                    );
                }
                other => panic!("submission of {owner}/{journey} failed: {other:?}"),
            }
        }
        if since_tick >= config.tick_every {
            endpoint.call(Request::Tick);
            since_tick = 0;
            drain_all(
                endpoint,
                &mut in_flight,
                &mut latencies,
                &mut streams,
                &mut verified,
                &mut detected,
            );
        }
    }

    // Shutdown settles every admitted journey; the final drain empties
    // the outboxes. Anything left in `in_flight` afterwards was dropped.
    let reply = endpoint.call(Request::Shutdown);
    assert!(
        matches!(reply, Response::ShuttingDown { .. }),
        "shutdown failed: {reply:?}"
    );
    drain_all(
        endpoint,
        &mut in_flight,
        &mut latencies,
        &mut streams,
        &mut verified,
        &mut detected,
    );
    let elapsed = started.elapsed();

    let owners = owner_names
        .iter()
        .map(|name| {
            let reply = endpoint.call(Request::Stats {
                owner: name.clone(),
            });
            let Response::Stats(stats) = reply else {
                panic!("stats of {name} failed: {reply:?}");
            };
            stats
        })
        .collect();

    let latency = SloPercentiles::from_latencies(&mut latencies);
    SoakOutcome {
        config: config.clone(),
        submitted,
        accepted,
        rejected,
        verified,
        detected,
        dropped: in_flight.len() as u64,
        latency,
        owners,
        stream: streams.concat(),
        connections: 1,
        elapsed,
        per_connection: vec![ConnectionOutcome {
            connection: 0,
            owners: config.owners,
            submitted,
            accepted,
            rejected,
            verified,
            latency,
        }],
        tick_driver: None,
        warm_start,
        baseline_journeys_per_sec: None,
        parallelism: host_parallelism(),
    }
}

/// `std::thread::available_parallelism`, degraded to 1 when the host
/// refuses to answer.
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn record_verdict(
    verdict: VerdictReply,
    in_flight: &mut HashMap<(String, u64), Instant>,
    latencies: &mut Vec<Duration>,
    streams: &mut [String],
    name_to_index: &HashMap<String, usize>,
    verified: &mut u64,
    detected: &mut u64,
) {
    if let Some(queued) = in_flight.remove(&(verdict.owner.clone(), verdict.journey)) {
        latencies.push(queued.elapsed());
    }
    *verified += 1;
    if verdict.detected {
        *detected += 1;
    }
    if let Some(&index) = name_to_index.get(&verdict.owner) {
        streams[index].push_str(&verdict.stream_line());
        streams[index].push('\n');
    }
}

/// What the soak worker expects the next in-order response to answer.
enum Pending {
    Submit { owner: usize, journey: u64 },
    Ticked,
    Drained { owner: usize },
}

/// One connection's slice of a concurrent soak.
struct WorkerResult {
    submitted: u64,
    accepted: u64,
    verified: u64,
    detected: u64,
    dropped: u64,
    latencies: Vec<Duration>,
    /// `(global owner index, that owner's verdict stream)`.
    streams: Vec<(usize, String)>,
    /// `(global owner index, closing stats)`.
    stats: Vec<(usize, OwnerStats)>,
}

/// Shared coordination for the concurrent soak workers.
struct WorkerContext<'a> {
    config: &'a SoakConfig,
    owner_names: &'a [String],
    name_to_index: &'a HashMap<String, usize>,
    connections: usize,
    queue_capacity: usize,
    /// Every worker has received every submission response.
    submit_done: &'a Barrier,
    /// Connection 0 has completed the shutdown round trip.
    shutdown_done: &'a Barrier,
}

/// Per-connection soak state: the pipeline window bookkeeping and the
/// per-owner verdict accounting.
struct ConnState<'a> {
    my_owners: &'a [usize],
    my_names: &'a [String],
    name_to_index: &'a HashMap<String, usize>,
    pending: VecDeque<Pending>,
    in_flight: HashMap<(usize, u64), Instant>,
    latencies: Vec<Duration>,
    streams: HashMap<usize, String>,
    submitted: u64,
    accepted: u64,
    verified: u64,
    detected: u64,
}

impl ConnState<'_> {
    fn submit(
        &mut self,
        endpoint: &mut dyn PipelinedEndpoint,
        owner: usize,
        name: &str,
        journey: u64,
    ) -> Result<(), String> {
        endpoint.send(Request::Submit {
            owner: name.into(),
            journey,
        })?;
        self.pending.push_back(Pending::Submit { owner, journey });
        self.in_flight.insert((owner, journey), Instant::now());
        self.submitted += 1;
        Ok(())
    }

    /// Queues a tick over this connection's owners plus one drain per
    /// owner, then receives every outstanding response.
    fn sync(&mut self, endpoint: &mut dyn PipelinedEndpoint) -> Result<(), String> {
        if !self.my_owners.is_empty() {
            endpoint.send(Request::TickOwners(self.my_names.to_vec()))?;
            self.pending.push_back(Pending::Ticked);
            self.queue_drains(endpoint)?;
        }
        self.settle(endpoint)
    }

    fn queue_drains(&mut self, endpoint: &mut dyn PipelinedEndpoint) -> Result<(), String> {
        for (&owner, name) in self.my_owners.iter().zip(self.my_names) {
            endpoint.send(Request::Drain {
                owner: name.clone(),
            })?;
            self.pending.push_back(Pending::Drained { owner });
        }
        Ok(())
    }

    /// Flushes and receives responses until nothing is outstanding.
    fn settle(&mut self, endpoint: &mut dyn PipelinedEndpoint) -> Result<(), String> {
        endpoint.flush()?;
        while let Some(expected) = self.pending.pop_front() {
            let response = endpoint.recv()?;
            match (expected, response) {
                (Pending::Submit { .. }, Response::Accepted { .. }) => self.accepted += 1,
                (Pending::Submit { owner, journey }, other) => {
                    return Err(format!(
                        "submission of {}/{journey} failed: {other:?}",
                        self.my_names[self.slot_of(owner)]
                    ));
                }
                (Pending::Ticked, Response::Ticked { .. }) => {}
                (Pending::Ticked, other) => return Err(format!("tick failed: {other:?}")),
                (Pending::Drained { .. }, Response::Verdicts(verdicts)) => {
                    for verdict in verdicts {
                        self.record(verdict);
                    }
                }
                (Pending::Drained { owner }, other) => {
                    return Err(format!(
                        "drain of {} failed: {other:?}",
                        self.my_names[self.slot_of(owner)]
                    ));
                }
            }
        }
        Ok(())
    }

    fn slot_of(&self, owner: usize) -> usize {
        self.my_owners
            .iter()
            .position(|&o| o == owner)
            .expect("owner belongs to this connection")
    }

    fn record(&mut self, verdict: VerdictReply) {
        let Some(&owner) = self.name_to_index.get(&verdict.owner) else {
            return;
        };
        if let Some(queued) = self.in_flight.remove(&(owner, verdict.journey)) {
            self.latencies.push(queued.elapsed());
        }
        self.verified += 1;
        if verdict.detected {
            self.detected += 1;
        }
        if let Some(stream) = self.streams.get_mut(&owner) {
            stream.push_str(&verdict.stream_line());
            stream.push('\n');
        }
    }
}

/// One connection's worth of concurrent soak: submit this partition's
/// journeys in order with a bounded burst in flight, sync before any
/// owner's queue can reach the admission bound, and collect verdicts.
fn soak_worker(
    endpoint: &mut dyn PipelinedEndpoint,
    connection: usize,
    ctx: &WorkerContext<'_>,
) -> Result<WorkerResult, String> {
    let my_owners: Vec<usize> = (0..ctx.config.owners)
        .filter(|i| i % ctx.connections == connection)
        .collect();
    let my_names: Vec<String> = my_owners
        .iter()
        .map(|&i| ctx.owner_names[i].clone())
        .collect();
    let rounds = my_owners
        .iter()
        .map(|&i| ctx.config.journeys_for(i))
        .max()
        .unwrap_or(0);
    // Each owner gains at most one queued journey per round, so syncing
    // every `burst` rounds keeps every owner's queue within the service's
    // admission bound — no submission is ever refused.
    let burst = ctx.config.tick_every.min(ctx.queue_capacity).max(1) as u64;

    let mut state = ConnState {
        my_owners: &my_owners,
        my_names: &my_names,
        name_to_index: ctx.name_to_index,
        pending: VecDeque::new(),
        in_flight: HashMap::new(),
        latencies: Vec::new(),
        streams: my_owners.iter().map(|&i| (i, String::new())).collect(),
        submitted: 0,
        accepted: 0,
        verified: 0,
        detected: 0,
    };

    for round in 0..rounds {
        for (slot, &owner) in my_owners.iter().enumerate() {
            if round < ctx.config.journeys_for(owner) {
                state.submit(endpoint, owner, &my_names[slot], round)?;
            }
        }
        if (round + 1) % burst == 0 {
            state.sync(endpoint)?;
        }
    }
    state.sync(endpoint)?;

    // Everyone has collected every submission response before connection
    // 0 shuts the service down; everyone waits for the shutdown (which
    // settles any service-side stragglers) before the final sweep.
    ctx.submit_done.wait();
    if connection == 0 {
        endpoint.send(Request::Shutdown)?;
        match endpoint.recv()? {
            Response::ShuttingDown { .. } => {}
            other => return Err(format!("shutdown failed: {other:?}")),
        }
    }
    ctx.shutdown_done.wait();

    state.queue_drains(endpoint)?;
    state.settle(endpoint)?;

    let mut stats = Vec::new();
    for name in &my_names {
        endpoint.send(Request::Stats {
            owner: name.clone(),
        })?;
    }
    endpoint.flush()?;
    for (&owner, name) in my_owners.iter().zip(&my_names) {
        match endpoint.recv()? {
            Response::Stats(owner_stats) => stats.push((owner, owner_stats)),
            other => return Err(format!("stats of {name} failed: {other:?}")),
        }
    }

    let mut streams: Vec<(usize, String)> = state.streams.into_iter().collect();
    streams.sort_by_key(|(owner, _)| *owner);
    Ok(WorkerResult {
        submitted: state.submitted,
        accepted: state.accepted,
        verified: state.verified,
        detected: state.detected,
        dropped: state.in_flight.len() as u64,
        latencies: state.latencies,
        streams,
        stats,
    })
}

/// Drives a concurrent soak over `connections` pipelined endpoints
/// (`connect(i)` builds connection `i`; index 0 also registers the
/// owners before the load starts).
///
/// Owners are partitioned across connections (`owner i` → connection
/// `i % connections`), each connection submits its owners' journeys in
/// order with a bounded burst in flight, and `queue_capacity` (the
/// service's admission bound) caps the burst so nothing is ever refused.
/// Ticking may additionally happen server-side (a background
/// [`crate::driver::TickDriver`]); the workers' own
/// [`Request::TickOwners`] syncs make the run self-sufficient without
/// one.
///
/// The merged outcome's verdict stream is grouped by owner and
/// byte-identical to a [`run_soak`] of the same shape — the determinism
/// contract this driver exists to demonstrate under concurrency.
///
/// # Panics
///
/// Panics if any connection fails mid-run (transport error, rejected
/// registration, out-of-protocol reply) — a soak against a broken
/// deployment is a setup error, not a measurement.
pub fn run_soak_concurrent<E, F>(
    connect: F,
    config: &SoakConfig,
    connections: usize,
    queue_capacity: usize,
) -> SoakOutcome
where
    E: PipelinedEndpoint,
    F: Fn(usize) -> E + Sync,
{
    assert!(config.owners > 0, "soak needs at least one owner");
    assert!(connections > 0, "soak needs at least one connection");
    assert!(config.tick_every > 0, "tick_every must be positive");
    assert!(queue_capacity > 0, "queue_capacity must be positive");
    assert!(
        config.start == 0 && !config.resume,
        "resumed soaks run over a single lockstep connection (run_soak)"
    );

    let owner_names: Vec<String> = (0..config.owners).map(SoakConfig::owner_name).collect();
    let name_to_index: HashMap<String, usize> = owner_names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), i))
        .collect();

    // Register everything on connection 0 before any load exists, so
    // the tenant universe is identical however many connections follow.
    let mut first = connect(0);
    for (index, name) in owner_names.iter().enumerate() {
        first
            .send(Request::Register(RegisterOwner {
                owner: name.clone(),
                seed: config.owner_seed(index),
                preset: config.preset.clone(),
                mechanism: config.mechanism.clone(),
            }))
            .unwrap_or_else(|error| panic!("registration of {name} failed: {error}"));
        match first.recv() {
            Ok(Response::Registered { .. }) => {}
            other => panic!("registration of {name} failed: {other:?}"),
        }
    }

    let submit_done = Barrier::new(connections);
    let shutdown_done = Barrier::new(connections);
    let ctx = WorkerContext {
        config,
        owner_names: &owner_names,
        name_to_index: &name_to_index,
        connections,
        queue_capacity,
        submit_done: &submit_done,
        shutdown_done: &shutdown_done,
    };

    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        let mut first = Some(first);
        let ctx = &ctx;
        let connect = &connect;
        for connection in 0..connections {
            let first = first.take();
            handles.push(scope.spawn(move || {
                let mut endpoint = match first {
                    Some(endpoint) => endpoint,
                    None => connect(connection),
                };
                soak_worker(&mut endpoint, connection, ctx)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(connection, handle)| {
                handle
                    .join()
                    .expect("soak worker panicked")
                    .unwrap_or_else(|error| panic!("connection {connection}: {error}"))
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut streams: Vec<String> = vec![String::new(); config.owners];
    let mut owner_stats: Vec<Option<OwnerStats>> = vec![None; config.owners];
    let mut per_connection = Vec::with_capacity(connections);
    let mut all_latencies: Vec<Duration> = Vec::new();
    let (mut submitted, mut accepted, mut verified, mut detected, mut dropped) = (0, 0, 0, 0, 0);
    for (connection, mut result) in results.into_iter().enumerate() {
        submitted += result.submitted;
        accepted += result.accepted;
        verified += result.verified;
        detected += result.detected;
        dropped += result.dropped;
        per_connection.push(ConnectionOutcome {
            connection,
            owners: result.streams.len(),
            submitted: result.submitted,
            accepted: result.accepted,
            rejected: 0,
            verified: result.verified,
            latency: SloPercentiles::from_latencies(&mut result.latencies),
        });
        all_latencies.extend(result.latencies);
        for (owner, stream) in result.streams {
            streams[owner] = stream;
        }
        for (owner, stats) in result.stats {
            owner_stats[owner] = Some(stats);
        }
    }

    SoakOutcome {
        config: config.clone(),
        submitted,
        accepted,
        rejected: 0,
        verified,
        detected,
        dropped,
        latency: SloPercentiles::from_latencies(&mut all_latencies),
        owners: owner_stats
            .into_iter()
            .map(|stats| stats.expect("every owner belongs to exactly one connection"))
            .collect(),
        stream: streams.concat(),
        connections,
        elapsed,
        per_connection,
        tick_driver: None,
        warm_start: None,
        baseline_journeys_per_sec: None,
        parallelism: host_parallelism(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn percentiles_of(values_us: &[u64]) -> SloPercentiles {
        let mut latencies: Vec<Duration> = values_us
            .iter()
            .map(|&v| Duration::from_micros(v))
            .collect();
        SloPercentiles::from_latencies(&mut latencies)
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // n = 1: every percentile is the one observation.
        let one = percentiles_of(&[7]);
        assert_eq!(
            (one.p50_us, one.p95_us, one.p99_us, one.max_us),
            (7, 7, 7, 7)
        );
        // n = 2: rank ⌈0.5·2⌉ = 1, so p50 is the *lower* observation —
        // the old round((n-1)·q) code reported the larger one.
        let two = percentiles_of(&[1, 2]);
        assert_eq!(two.p50_us, 1, "p50 of two samples is the lower one");
        assert_eq!(two.p95_us, 2);
        assert_eq!(two.p99_us, 2);
        assert_eq!(two.max_us, 2);
        // n = 3: p50 is the middle value, the tail percentiles the max.
        let three = percentiles_of(&[30, 10, 20]);
        assert_eq!(three.p50_us, 20);
        assert_eq!(three.p95_us, 30);
        assert_eq!(three.p99_us, 30);
        // n = 100 over 1..=100: pN is exactly N (rank ⌈N⌉) — the old
        // code returned 51 for p50.
        let hundred: Vec<u64> = (1..=100).collect();
        let p = percentiles_of(&hundred);
        assert_eq!(p.p50_us, 50);
        assert_eq!(p.p95_us, 95);
        assert_eq!(p.p99_us, 99);
        assert_eq!(p.max_us, 100);
        // Empty input stays all-zero.
        assert_eq!(percentiles_of(&[]).max_us, 0);
    }

    #[test]
    fn leg_math_continues_the_round_robin() {
        // 7 journeys over 3 owners, split 4 + 3 across two legs: the
        // second leg's first journey ids continue where the first ended.
        let leg1 = SoakConfig {
            owners: 3,
            journeys: 4,
            ..SoakConfig::default()
        };
        let leg2 = SoakConfig {
            owners: 3,
            journeys: 3,
            start: 4,
            ..SoakConfig::default()
        };
        let whole = SoakConfig {
            owners: 3,
            journeys: 7,
            ..SoakConfig::default()
        };
        for index in 0..3 {
            assert_eq!(leg2.first_journey_for(index), leg1.journeys_for(index));
            assert_eq!(
                leg1.journeys_for(index) + leg2.journeys_for(index),
                whole.journeys_for(index)
            );
        }
    }

    #[test]
    fn slo_json_carries_warm_start_block_when_resumed() {
        let mut service = Service::new(ServeConfig::default());
        let config = SoakConfig {
            owners: 1,
            journeys: 4,
            tick_every: 2,
            ..SoakConfig::default()
        };
        let mut outcome = run_soak(&mut service, &config);
        assert!(outcome.warm_start.is_none());
        assert!(!outcome.to_json(1, 64).contains("\"warm_start\""));
        outcome.warm_start = Some(WarmStartMeta {
            generation: 2,
            resume_offset: 4,
            checkpoints: vec![StreamCheckpoint {
                owner: "owner-0".into(),
                offset: 4,
                digest: "00000000deadbeef".into(),
            }],
        });
        let json = outcome.to_json(1, 64);
        assert!(json.contains("\"warm_start\": {"));
        assert!(json.contains("\"generation\": 2"));
        assert!(json.contains("\"resume_offset\": 4"));
        assert!(json
            .contains("{\"owner\": \"owner-0\", \"offset\": 4, \"digest\": \"00000000deadbeef\"}"));
    }

    #[test]
    fn soak_drains_everything_it_accepts() {
        let mut service = Service::new(ServeConfig {
            queue_capacity: 8,
            ..ServeConfig::default()
        });
        let config = SoakConfig {
            owners: 2,
            journeys: 30,
            seed: 9,
            tick_every: 5,
            ..SoakConfig::default()
        };
        let outcome = run_soak(&mut service, &config);
        assert_eq!(outcome.accepted, 30);
        assert_eq!(outcome.verified, 30);
        assert_eq!(outcome.dropped, 0, "no accepted journey goes unverified");
        assert_eq!(outcome.stream.lines().count(), 30);
        assert!(outcome.latency.p50_us <= outcome.latency.max_us);
        assert_eq!(outcome.connections, 1);
        assert_eq!(outcome.per_connection.len(), 1);
        assert_eq!(outcome.per_connection[0].verified, 30);
        assert!(outcome.journeys_per_sec() > 0.0);
    }

    #[test]
    fn slo_json_has_schema_and_digest() {
        let mut service = Service::new(ServeConfig::default());
        let config = SoakConfig {
            owners: 1,
            journeys: 6,
            seed: 3,
            tick_every: 3,
            preset: "all-honest".into(),
            ..SoakConfig::default()
        };
        let outcome = run_soak(&mut service, &config);
        let json = outcome.to_json(1, 64);
        assert!(json.contains("\"schema\": \"refstate-soak-slo-v1\""));
        assert!(json.contains(&format!(
            "\"stream_digest\": \"{}\"",
            outcome.stream_digest()
        )));
        assert!(json.contains("\"dropped\": 0"));
        assert!(json.contains("\"connections\": 1"));
        assert!(json.contains("\"per_connection\": ["));
        assert!(json.contains("\"aggregate\": {"));
        // No driver and no baseline ran, so neither block is emitted.
        assert!(!json.contains("\"tick_driver\""));
        assert!(!json.contains("\"single_connection_baseline\""));
    }

    #[test]
    fn slo_json_carries_driver_and_baseline_blocks_when_present() {
        let mut service = Service::new(ServeConfig::default());
        let config = SoakConfig {
            owners: 1,
            journeys: 4,
            tick_every: 2,
            ..SoakConfig::default()
        };
        let mut outcome = run_soak(&mut service, &config);
        outcome.tick_driver = Some(TickDriverMeta {
            interval: Duration::from_millis(1),
            batch_min: 16,
            max_age: Duration::from_millis(5),
        });
        outcome.baseline_journeys_per_sec = Some(outcome.journeys_per_sec() / 3.0);
        let json = outcome.to_json(1, 64);
        assert!(json.contains("\"tick_driver\": {"));
        assert!(json.contains("\"interval_us\": 1000"));
        assert!(json.contains("\"single_connection_baseline\": {"));
        assert!(json.contains("\"throughput_ratio_vs_single\": 3.000"));
    }

    #[test]
    fn concurrent_soak_matches_the_single_connection_stream() {
        let config = SoakConfig {
            owners: 3,
            journeys: 24,
            seed: 11,
            tick_every: 4,
            ..SoakConfig::default()
        };
        let serve_config = ServeConfig {
            queue_capacity: 8,
            key_pool: 8,
            ..ServeConfig::default()
        };

        let mut single = Service::new(serve_config.clone());
        let baseline = run_soak(&mut single, &config);

        let shared = Arc::new(Service::new(serve_config.clone()));
        let concurrent = run_soak_concurrent(
            |_| LocalPipelined::new(Arc::clone(&shared)),
            &config,
            2,
            serve_config.queue_capacity,
        );

        assert_eq!(
            concurrent.stream, baseline.stream,
            "stream must not depend on connections"
        );
        assert_eq!(concurrent.verified, baseline.verified);
        assert_eq!(concurrent.dropped, 0);
        assert_eq!(
            concurrent.rejected, 0,
            "capacity accounting forbids refusals"
        );
        assert_eq!(concurrent.connections, 2);
        assert_eq!(concurrent.per_connection.len(), 2);
        // owner-0 and owner-2 on connection 0, owner-1 on connection 1.
        assert_eq!(concurrent.per_connection[0].owners, 2);
        assert_eq!(concurrent.per_connection[1].owners, 1);
        assert_eq!(
            concurrent
                .per_connection
                .iter()
                .map(|c| c.verified)
                .sum::<u64>(),
            concurrent.verified
        );
    }

    #[test]
    fn concurrent_soak_tolerates_more_connections_than_owners() {
        let config = SoakConfig {
            owners: 2,
            journeys: 10,
            seed: 5,
            tick_every: 3,
            ..SoakConfig::default()
        };
        let serve_config = ServeConfig {
            queue_capacity: 4,
            key_pool: 8,
            ..ServeConfig::default()
        };
        let shared = Arc::new(Service::new(serve_config.clone()));
        let outcome = run_soak_concurrent(
            |_| LocalPipelined::new(Arc::clone(&shared)),
            &config,
            4,
            serve_config.queue_capacity,
        );
        assert_eq!(outcome.verified, 10);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(outcome.per_connection.len(), 4);
        // Connections 2 and 3 own no owners and drive no load.
        assert_eq!(outcome.per_connection[2].submitted, 0);
        assert_eq!(outcome.per_connection[3].owners, 0);
    }
}
