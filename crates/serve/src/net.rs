//! The TCP transport: framed requests in, framed responses out,
//! pipelined per connection.
//!
//! The transport is a thin shell around [`Service::handle`]: the service
//! is internally locked (per-owner shards — see the service module
//! docs), so every connection thread calls straight into it with no
//! transport-level mutex. Each connection runs two threads:
//!
//! * the **reader** decodes length-prefixed [`Request`] frames
//!   ([`refstate_wire::FrameReader`]) and handles each one as it
//!   arrives, pushing the [`Response`] into a bounded queue — the
//!   connection's *pipeline window*. A client may therefore stream many
//!   requests before reading the first reply; once the window fills,
//!   the reader blocks, which backpressures the socket.
//! * the **writer** drains that queue into response frames, batching
//!   opportunistically: it keeps writing while responses are ready and
//!   flushes when the queue runs dry, so a lockstep client still sees
//!   one flush per reply while a pipelining client gets batched writes.
//!
//! Responses always come back in request order (the reader handles
//! requests serially), so the 1:1 request/response protocol contract
//! holds under pipelining.
//!
//! Determinism note: per-owner verdict streams are pinned by the service
//! regardless of how many connections submit, tick, or drain — only each
//! owner's submission order matters. Clients that need a reproducible
//! stream submit each owner's journeys from one connection, in order
//! (the soak driver partitions owners across connections exactly this
//! way); how ticks and drains interleave is then irrelevant.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use refstate_telemetry as telemetry;
use refstate_wire::{write_message, FrameError, FrameReader};

use crate::driver::{TickDriver, TickDriverConfig};
use crate::proto::{Request, Response};
use crate::service::Service;

/// How many handled-but-unwritten responses a connection may buffer
/// before its reader stops decoding new requests (the per-connection
/// pipeline window).
const PIPELINE_WINDOW: usize = 128;

/// A running TCP server: the bound address, the accept-loop handle, and
/// the shared service (plus an optional background tick driver).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_loop: JoinHandle<()>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    service: Arc<Service>,
    driver: Option<TickDriver>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections; each connection is served on its own
    /// reader/writer thread pair against the shared service.
    pub fn bind(service: Service, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the shutdown flag
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let service = Arc::new(service);
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_loop = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let next_conn = AtomicU32::new(0);
            thread::spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        telemetry::count("serve.net.connections", 1);
                        let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
                        let service = Arc::clone(&service);
                        let shutdown = Arc::clone(&shutdown);
                        let handle = thread::spawn(move || {
                            serve_connection(stream, service, shutdown, conn_id)
                        });
                        connections
                            .lock()
                            .expect("connection registry")
                            .push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept_loop,
            connections,
            service,
            driver: None,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service, for in-process callers (a co-located tick
    /// driver, post-mortem stats) running beside the TCP clients.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Starts the background tick driver over this server's service.
    /// Replaces (stopping) any previous driver.
    pub fn start_tick_driver(&mut self, config: TickDriverConfig) {
        self.driver = Some(TickDriver::start(Arc::clone(&self.service), config));
    }

    /// Whether a `Shutdown` request has been processed.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop to exit (it exits after a client sends
    /// [`Request::Shutdown`], or after [`Server::stop`]), then for every
    /// connection to close. Waiting on the connections matters after a
    /// shutdown: outboxes stay drainable, and clients on *other*
    /// connections than the one that sent `Shutdown` may still be
    /// draining verdicts — exiting while they do would reset their
    /// sockets mid-read. Stops the tick driver, and returns the shared
    /// service for post-mortem inspection.
    pub fn join(mut self) -> Arc<Service> {
        if let Some(driver) = self.driver.take() {
            driver.stop();
        }
        let _ = self.accept_loop.join();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection registry"));
        for handle in handles {
            let _ = handle.join();
        }
        self.service
    }

    /// Requests the accept loop to stop without a client shutdown.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

fn serve_connection(
    stream: TcpStream,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    conn_id: u32,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // The pipeline window: handled responses queue here for the writer
    // thread; a full window blocks the reader (socket backpressure).
    let (tx, rx) = mpsc::sync_channel::<Response>(PIPELINE_WINDOW);
    let writer_thread = thread::spawn(move || {
        let mut writer = io::BufWriter::new(write_half);
        while let Ok(response) = rx.recv() {
            if write_message(&mut writer, &response, refstate_wire::DEFAULT_MAX_FRAME).is_err() {
                return;
            }
            // Opportunistic batching: drain whatever else is already
            // settled before paying the flush.
            while let Ok(next) = rx.try_recv() {
                if write_message(&mut writer, &next, refstate_wire::DEFAULT_MAX_FRAME).is_err() {
                    return;
                }
            }
            if writer.flush().is_err() {
                return;
            }
        }
    });

    let mut reader = FrameReader::new(stream, refstate_wire::DEFAULT_MAX_FRAME);
    loop {
        match reader.read_message::<Request>() {
            Ok(Some(request)) => {
                telemetry::count_indexed("serve.conn.requests", conn_id, 1);
                let is_shutdown = matches!(request, Request::Shutdown);
                let response = service.handle(request);
                if tx.send(response).is_err() {
                    break; // writer died (client stopped reading)
                }
                if is_shutdown {
                    // The service has drained; stop accepting new
                    // connections. This connection stays open so the
                    // client can still drain outboxes and read stats.
                    shutdown.store(true, Ordering::SeqCst);
                }
            }
            Ok(None) => break, // clean EOF at a frame boundary
            Err(error) => {
                // Malformed frame: reply with a typed error, then close
                // (framing is lost once a frame is bad).
                let _ = tx.send(Response::Error {
                    message: frame_error_message(&error),
                });
                break;
            }
        }
    }
    drop(tx);
    let _ = writer_thread.join();
}

fn frame_error_message(error: &FrameError) -> String {
    format!("bad request frame: {error}")
}

/// A blocking client for the framed protocol: one request, one response.
pub struct Client {
    writer: io::BufWriter<TcpStream>,
    reader: FrameReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = io::BufWriter::new(stream.try_clone()?);
        Ok(Client {
            writer,
            reader: FrameReader::new(stream, refstate_wire::DEFAULT_MAX_FRAME),
        })
    }

    /// Sends one request and reads the matching response.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_message(&mut self.writer, request, refstate_wire::DEFAULT_MAX_FRAME)?;
        self.writer.flush().map_err(FrameError::Io)?;
        match self.reader.read_message::<Response>()? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            ))),
        }
    }
}

/// A pipelining client: decoupled send and receive halves over one
/// connection, so a caller can keep a window of requests in flight and
/// collect the (request-ordered) responses as they settle.
///
/// The caller is responsible for windowing — pair every [`send`] with a
/// later [`recv`] and keep the gap bounded (the server's own window will
/// backpressure past ~[`128`](self) in-flight requests per connection).
///
/// [`send`]: PipelinedClient::send
/// [`recv`]: PipelinedClient::recv
pub struct PipelinedClient {
    writer: io::BufWriter<TcpStream>,
    reader: FrameReader<TcpStream>,
    unflushed: bool,
}

impl PipelinedClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = io::BufWriter::new(stream.try_clone()?);
        Ok(PipelinedClient {
            writer,
            reader: FrameReader::new(stream, refstate_wire::DEFAULT_MAX_FRAME),
            unflushed: false,
        })
    }

    /// Queues one request frame without flushing; consecutive sends
    /// batch into one socket write.
    pub fn send(&mut self, request: &Request) -> Result<(), FrameError> {
        write_message(&mut self.writer, request, refstate_wire::DEFAULT_MAX_FRAME)?;
        self.unflushed = true;
        Ok(())
    }

    /// Flushes any queued request frames to the socket.
    pub fn flush(&mut self) -> Result<(), FrameError> {
        if self.unflushed {
            self.writer.flush().map_err(FrameError::Io)?;
            self.unflushed = false;
        }
        Ok(())
    }

    /// Reads the next response (flushing queued requests first, so a
    /// recv can never deadlock on its own unsent request).
    pub fn recv(&mut self) -> Result<Response, FrameError> {
        self.flush()?;
        match self.reader.read_message::<Response>()? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            ))),
        }
    }
}
