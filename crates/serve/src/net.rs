//! The TCP transport: framed requests in, framed responses out.
//!
//! The transport is a thin shell around [`Service::handle`]: each
//! connection reads length-prefixed [`Request`] frames
//! ([`refstate_wire::FrameReader`]), serializes them into the shared
//! service behind a mutex, and writes the [`Response`] frame back. All
//! protocol semantics — admission, ticks, draining — live in the service;
//! the transport adds only framing and connection lifecycle.
//!
//! Determinism note: the service itself is deterministic in its *request
//! order*. A single client (or clients that externally coordinate their
//! submissions and ticks, as the soak driver does) therefore gets
//! byte-identical verdict streams; uncoordinated concurrent clients race
//! for the mutex and define their own interleaving.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use refstate_telemetry as telemetry;
use refstate_wire::{write_message, FrameError, FrameReader};

use crate::proto::{Request, Response};
use crate::service::Service;

/// A running TCP server: the bound address plus the accept-loop handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_loop: JoinHandle<()>,
    service: Arc<Mutex<Service>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections; each connection is served on its own
    /// thread against the shared service.
    pub fn bind(service: Service, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the shutdown flag
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let service = Arc::new(Mutex::new(service));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_loop = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        telemetry::count("serve.net.connections", 1);
                        let service = Arc::clone(&service);
                        let shutdown = Arc::clone(&shutdown);
                        thread::spawn(move || serve_connection(stream, service, shutdown));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept_loop,
            service,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `Shutdown` request has been processed.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop to exit (it exits after a client sends
    /// [`Request::Shutdown`], or after [`Server::stop`]). Returns the
    /// service for post-mortem inspection.
    pub fn join(self) -> Service {
        let _ = self.accept_loop.join();
        match Arc::try_unwrap(self.service) {
            Ok(mutex) => mutex.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(shared) => {
                // A connection thread still holds a reference (client
                // vanished mid-request); hand back a drained clone of
                // nothing — the caller only loses post-mortem stats.
                drop(shared);
                Service::new(crate::service::ServeConfig::default())
            }
        }
    }

    /// Requests the accept loop to stop without a client shutdown.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

fn serve_connection(stream: TcpStream, service: Arc<Mutex<Service>>, shutdown: Arc<AtomicBool>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = FrameReader::new(stream, refstate_wire::DEFAULT_MAX_FRAME);
    loop {
        let request = match reader.read_message::<Request>() {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(error) => {
                // Malformed frame: reply with a typed error, then close
                // (framing is lost once a frame is bad).
                let reply = Response::Error {
                    message: frame_error_message(&error),
                };
                let _ = write_message(&mut writer, &reply, refstate_wire::DEFAULT_MAX_FRAME);
                let _ = writer.flush();
                return;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = {
            let mut service = service.lock().unwrap_or_else(|e| e.into_inner());
            service.handle(request)
        };
        if write_message(&mut writer, &response, refstate_wire::DEFAULT_MAX_FRAME).is_err() {
            return;
        }
        if writer.flush().is_err() {
            return;
        }
        if is_shutdown {
            // The service has drained; stop accepting new connections.
            // This connection stays open so the client can still drain
            // outboxes and read stats.
            shutdown.store(true, Ordering::SeqCst);
        }
    }
}

fn frame_error_message(error: &FrameError) -> String {
    format!("bad request frame: {error}")
}

/// A blocking client for the framed protocol: one request, one response.
pub struct Client {
    writer: io::BufWriter<TcpStream>,
    reader: FrameReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = io::BufWriter::new(stream.try_clone()?);
        Ok(Client {
            writer,
            reader: FrameReader::new(stream, refstate_wire::DEFAULT_MAX_FRAME),
        })
    }

    /// Sends one request and reads the matching response.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_message(&mut self.writer, request, refstate_wire::DEFAULT_MAX_FRAME)?;
        self.writer.flush().map_err(FrameError::Io)?;
        match self.reader.read_message::<Response>()? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            ))),
        }
    }
}
