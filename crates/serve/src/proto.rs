//! The service wire protocol: requests, replies, and their canonical
//! encodings.
//!
//! Every message implements [`Encode`] / [`Decode`] on the workspace's
//! canonical codec, so a framed byte stream
//! ([`refstate_wire::FrameReader`] / [`refstate_wire::write_message`])
//! carries the whole conversation — over TCP, a Unix pipe, or an
//! in-process buffer alike. Every [`Request`] gets exactly one
//! [`Response`], in request order per connection, but connections may
//! *pipeline*: a client can have a bounded window of requests in flight
//! before reading the first reply. Verification runs wherever a tick
//! fires — an explicit [`Request::Tick`] / [`Request::TickOwners`], the
//! server's background tick driver, or the shutdown drain — and the
//! per-owner verdict stream is byte-identical regardless, because
//! verdict order is pinned to admission order within each owner (see the
//! service docs for the full determinism contract).

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

/// Why the service refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The owner's bounded ingress queue is full; resubmit after a tick.
    QueueFull,
    /// The named owner was never registered.
    UnknownOwner,
    /// An owner with this name is already registered.
    DuplicateOwner,
    /// The registration named a scenario preset the generator lacks.
    UnknownPreset,
    /// The registration named a mechanism the registry lacks.
    UnknownMechanism,
    /// The service is draining for shutdown; no new work is admitted.
    ShuttingDown,
}

impl RejectReason {
    /// Stable display / artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::UnknownOwner => "unknown-owner",
            RejectReason::DuplicateOwner => "duplicate-owner",
            RejectReason::UnknownPreset => "unknown-preset",
            RejectReason::UnknownMechanism => "unknown-mechanism",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Registers one tenant: the owner's scenario universe and mechanism.
///
/// The owner's journeys are generated exactly like a fleet run's — pure
/// functions of `(seed, journey id, preset)` — so a service-side journey
/// is reproducible from the registration plus the submitted id alone; no
/// agent images cross the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterOwner {
    /// Tenant name; also the owner's key-directory namespace.
    pub owner: String,
    /// The owner's scenario seed.
    pub seed: u64,
    /// Scenario family name (see `refstate_fleet::Preset::name`).
    pub preset: String,
    /// Mechanism registry name (see
    /// `refstate_mechanisms::api::MechanismRegistry`).
    pub mechanism: String,
}

/// A client request, one frame each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register a tenant.
    Register(RegisterOwner),
    /// Submit journey `journey` of `owner`'s scenario universe for
    /// verification. Admission-controlled: the reply is either
    /// [`Response::Accepted`] or [`Response::Rejected`].
    Submit {
        /// The tenant.
        owner: String,
        /// The journey (scenario) id in the owner's universe.
        journey: u64,
    },
    /// Run one service tick: every admitted journey executes, and each
    /// owner's pending owner-side work settles in one amortized batch.
    /// With a server-side tick driver running this is an optional pacing
    /// hint, not the only verification engine.
    Tick,
    /// Run a tick restricted to the named owners, so concurrent
    /// connections driving disjoint owner partitions never contend on
    /// each other's shards. Unknown names are rejected.
    TickOwners(
        /// The owners to tick.
        Vec<String>,
    ),
    /// Move `owner`'s completed verdicts out of the service.
    Drain {
        /// The tenant.
        owner: String,
    },
    /// Read `owner`'s counters.
    Stats {
        /// The tenant.
        owner: String,
    },
    /// Stop admitting work, settle everything already accepted, reply
    /// [`Response::ShuttingDown`].
    Shutdown,
    /// Read the durable-stream position of every owner: the store
    /// generation plus one [`StreamCheckpoint`] per owner in registration
    /// order. A resuming soak client calls this first to verify the
    /// server's checkpoints line up with where its previous leg stopped.
    StreamState,
}

/// One journey's final verdict, streamed back on [`Request::Drain`].
///
/// Carries no timing and no cache counters — everything in this struct is
/// deterministic for a fixed registration and submission order, which is
/// what the golden-stream fixtures pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictReply {
    /// The tenant.
    pub owner: String,
    /// The journey id.
    pub journey: u64,
    /// The mechanism that produced the verdict.
    pub mechanism: String,
    /// The mechanism flagged the run.
    pub detected: bool,
    /// The hosts the mechanism blamed (bare host names, owner-scoped).
    pub accused: Vec<String>,
    /// The journey ran to its halt instruction.
    pub completed: bool,
    /// The journey died of an infrastructure failure.
    pub infra_error: bool,
}

impl VerdictReply {
    /// The canonical one-line form golden stream fixtures are built from.
    pub fn stream_line(&self) -> String {
        format!(
            "{} {} {} detected={} accused=[{}] completed={} infra={}",
            self.owner,
            self.journey,
            self.mechanism,
            self.detected,
            self.accused.join(","),
            self.completed,
            self.infra_error,
        )
    }
}

/// One owner's service counters, read via [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnerStats {
    /// The tenant.
    pub owner: String,
    /// Journeys admitted past the ingress bound.
    pub accepted: u64,
    /// Journeys refused (any [`RejectReason`]).
    pub rejected: u64,
    /// Verdicts produced (accepted journeys fully settled).
    pub verified: u64,
    /// Verdicts that flagged the run.
    pub detected: u64,
    /// Admitted journeys awaiting the next tick.
    pub pending: u64,
    /// Verdicts sitting in the outbox, not yet drained.
    pub undrained: u64,
    /// The ingress bound admission control enforces.
    pub queue_capacity: u64,
    /// Owner-side final re-execution checks settled for this owner.
    pub final_checks: u64,
    /// Deferred signatures settled in this owner's batch flushes.
    pub flush_verifications: u64,
    /// Deferred signatures that failed a flush.
    pub flush_failures: u64,
    /// Replay-cache hits recorded by this owner's pipeline.
    pub cache_hits: u64,
    /// Replay-cache misses recorded by this owner's pipeline.
    pub cache_misses: u64,
    /// Verdicts appended to this owner's durable stream across every
    /// generation (equals `verified` summed over the state dir's whole
    /// history; equals this process's `verified` when no state dir is
    /// configured).
    pub stream_offset: u64,
}

/// One owner's durable verdict-stream position, reported by
/// [`Response::StreamState`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// The tenant.
    pub owner: String,
    /// Verdicts appended to the owner's stream so far (across restarts).
    pub offset: u64,
    /// Running FNV-1a digest over the stream's lines (each
    /// [`VerdictReply::stream_line`] plus `'\n'`), printed as 16 hex
    /// digits — the same fold the soak's `stream_digest` uses.
    pub digest: String,
}

/// A service reply, one frame each, always matching the request 1:1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The registration succeeded.
    Registered {
        /// The tenant.
        owner: String,
    },
    /// The submission was admitted; its verdict will appear in a
    /// subsequent [`Request::Drain`].
    Accepted {
        /// The tenant.
        owner: String,
        /// The admitted journey id.
        journey: u64,
    },
    /// The request was refused.
    Rejected {
        /// The tenant (empty when the reject predates owner resolution).
        owner: String,
        /// The refused journey id (0 for non-submit rejects).
        journey: u64,
        /// Why.
        reason: RejectReason,
    },
    /// A tick ran.
    Ticked {
        /// Verdicts produced by this tick (all owners).
        settled: u64,
    },
    /// The drained verdicts, in admission order.
    Verdicts(Vec<VerdictReply>),
    /// The owner's counters.
    Stats(OwnerStats),
    /// The service drained every accepted journey and is stopping.
    ShuttingDown {
        /// Verdicts produced during the drain.
        settled: u64,
    },
    /// Every owner's durable stream position, in registration order.
    StreamState {
        /// The state store's open-generation stamp (1 on a fresh state
        /// dir, incremented per restart; 0 when no state dir is
        /// configured).
        generation: u64,
        /// One checkpoint per owner, registration order.
        owners: Vec<StreamCheckpoint>,
    },
    /// A malformed or out-of-protocol request.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Encode for RejectReason {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            RejectReason::QueueFull => 0,
            RejectReason::UnknownOwner => 1,
            RejectReason::DuplicateOwner => 2,
            RejectReason::UnknownPreset => 3,
            RejectReason::UnknownMechanism => 4,
            RejectReason::ShuttingDown => 5,
        });
    }
}

impl Decode for RejectReason {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => RejectReason::QueueFull,
            1 => RejectReason::UnknownOwner,
            2 => RejectReason::DuplicateOwner,
            3 => RejectReason::UnknownPreset,
            4 => RejectReason::UnknownMechanism,
            5 => RejectReason::ShuttingDown,
            tag => {
                return Err(WireError::InvalidTag {
                    context: "RejectReason",
                    tag,
                })
            }
        })
    }
}

impl Encode for RegisterOwner {
    fn encode(&self, w: &mut Writer) {
        self.owner.encode(w);
        self.seed.encode(w);
        self.preset.encode(w);
        self.mechanism.encode(w);
    }
}

impl Decode for RegisterOwner {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RegisterOwner {
            owner: String::decode(r)?,
            seed: u64::decode(r)?,
            preset: String::decode(r)?,
            mechanism: String::decode(r)?,
        })
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Register(reg) => {
                w.put_u8(0);
                reg.encode(w);
            }
            Request::Submit { owner, journey } => {
                w.put_u8(1);
                owner.encode(w);
                journey.encode(w);
            }
            Request::Tick => w.put_u8(2),
            Request::Drain { owner } => {
                w.put_u8(3);
                owner.encode(w);
            }
            Request::Stats { owner } => {
                w.put_u8(4);
                owner.encode(w);
            }
            Request::Shutdown => w.put_u8(5),
            Request::TickOwners(owners) => {
                w.put_u8(6);
                owners.encode(w);
            }
            Request::StreamState => w.put_u8(7),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => Request::Register(RegisterOwner::decode(r)?),
            1 => Request::Submit {
                owner: String::decode(r)?,
                journey: u64::decode(r)?,
            },
            2 => Request::Tick,
            3 => Request::Drain {
                owner: String::decode(r)?,
            },
            4 => Request::Stats {
                owner: String::decode(r)?,
            },
            5 => Request::Shutdown,
            6 => Request::TickOwners(Vec::decode(r)?),
            7 => Request::StreamState,
            tag => {
                return Err(WireError::InvalidTag {
                    context: "Request",
                    tag,
                })
            }
        })
    }
}

impl Encode for VerdictReply {
    fn encode(&self, w: &mut Writer) {
        self.owner.encode(w);
        self.journey.encode(w);
        self.mechanism.encode(w);
        self.detected.encode(w);
        self.accused.encode(w);
        self.completed.encode(w);
        self.infra_error.encode(w);
    }
}

impl Decode for VerdictReply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VerdictReply {
            owner: String::decode(r)?,
            journey: u64::decode(r)?,
            mechanism: String::decode(r)?,
            detected: bool::decode(r)?,
            accused: Vec::decode(r)?,
            completed: bool::decode(r)?,
            infra_error: bool::decode(r)?,
        })
    }
}

impl Encode for OwnerStats {
    fn encode(&self, w: &mut Writer) {
        self.owner.encode(w);
        self.accepted.encode(w);
        self.rejected.encode(w);
        self.verified.encode(w);
        self.detected.encode(w);
        self.pending.encode(w);
        self.undrained.encode(w);
        self.queue_capacity.encode(w);
        self.final_checks.encode(w);
        self.flush_verifications.encode(w);
        self.flush_failures.encode(w);
        self.cache_hits.encode(w);
        self.cache_misses.encode(w);
        self.stream_offset.encode(w);
    }
}

impl Encode for StreamCheckpoint {
    fn encode(&self, w: &mut Writer) {
        self.owner.encode(w);
        self.offset.encode(w);
        self.digest.encode(w);
    }
}

impl Decode for StreamCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StreamCheckpoint {
            owner: String::decode(r)?,
            offset: u64::decode(r)?,
            digest: String::decode(r)?,
        })
    }
}

impl Decode for OwnerStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OwnerStats {
            owner: String::decode(r)?,
            accepted: u64::decode(r)?,
            rejected: u64::decode(r)?,
            verified: u64::decode(r)?,
            detected: u64::decode(r)?,
            pending: u64::decode(r)?,
            undrained: u64::decode(r)?,
            queue_capacity: u64::decode(r)?,
            final_checks: u64::decode(r)?,
            flush_verifications: u64::decode(r)?,
            flush_failures: u64::decode(r)?,
            cache_hits: u64::decode(r)?,
            cache_misses: u64::decode(r)?,
            stream_offset: u64::decode(r)?,
        })
    }
}

impl Encode for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Registered { owner } => {
                w.put_u8(0);
                owner.encode(w);
            }
            Response::Accepted { owner, journey } => {
                w.put_u8(1);
                owner.encode(w);
                journey.encode(w);
            }
            Response::Rejected {
                owner,
                journey,
                reason,
            } => {
                w.put_u8(2);
                owner.encode(w);
                journey.encode(w);
                reason.encode(w);
            }
            Response::Ticked { settled } => {
                w.put_u8(3);
                settled.encode(w);
            }
            Response::Verdicts(verdicts) => {
                w.put_u8(4);
                verdicts.encode(w);
            }
            Response::Stats(stats) => {
                w.put_u8(5);
                stats.encode(w);
            }
            Response::ShuttingDown { settled } => {
                w.put_u8(6);
                settled.encode(w);
            }
            Response::Error { message } => {
                w.put_u8(7);
                message.encode(w);
            }
            Response::StreamState { generation, owners } => {
                w.put_u8(8);
                generation.encode(w);
                owners.encode(w);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => Response::Registered {
                owner: String::decode(r)?,
            },
            1 => Response::Accepted {
                owner: String::decode(r)?,
                journey: u64::decode(r)?,
            },
            2 => Response::Rejected {
                owner: String::decode(r)?,
                journey: u64::decode(r)?,
                reason: RejectReason::decode(r)?,
            },
            3 => Response::Ticked {
                settled: u64::decode(r)?,
            },
            4 => Response::Verdicts(Vec::decode(r)?),
            5 => Response::Stats(OwnerStats::decode(r)?),
            6 => Response::ShuttingDown {
                settled: u64::decode(r)?,
            },
            7 => Response::Error {
                message: String::decode(r)?,
            },
            8 => Response::StreamState {
                generation: u64::decode(r)?,
                owners: Vec::decode(r)?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    context: "Response",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_wire(&value);
        assert_eq!(from_wire::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Register(RegisterOwner {
            owner: "alice".into(),
            seed: 42,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        round_trip(Request::Submit {
            owner: "alice".into(),
            journey: 7,
        });
        round_trip(Request::Tick);
        round_trip(Request::Drain {
            owner: "bob".into(),
        });
        round_trip(Request::Stats {
            owner: "bob".into(),
        });
        round_trip(Request::Shutdown);
        round_trip(Request::TickOwners(vec!["alice".into(), "bob".into()]));
        round_trip(Request::TickOwners(Vec::new()));
        round_trip(Request::StreamState);
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Response::Registered {
            owner: "alice".into(),
        });
        round_trip(Response::Accepted {
            owner: "alice".into(),
            journey: 3,
        });
        for reason in [
            RejectReason::QueueFull,
            RejectReason::UnknownOwner,
            RejectReason::DuplicateOwner,
            RejectReason::UnknownPreset,
            RejectReason::UnknownMechanism,
            RejectReason::ShuttingDown,
        ] {
            round_trip(Response::Rejected {
                owner: "alice".into(),
                journey: 9,
                reason,
            });
        }
        round_trip(Response::Ticked { settled: 12 });
        round_trip(Response::Verdicts(vec![VerdictReply {
            owner: "alice".into(),
            journey: 3,
            mechanism: "protocol".into(),
            detected: true,
            accused: vec!["h2".into()],
            completed: false,
            infra_error: false,
        }]));
        round_trip(Response::Stats(OwnerStats {
            owner: "alice".into(),
            accepted: 10,
            rejected: 2,
            verified: 8,
            detected: 3,
            pending: 2,
            undrained: 1,
            queue_capacity: 64,
            final_checks: 8,
            flush_verifications: 40,
            flush_failures: 0,
            cache_hits: 5,
            cache_misses: 30,
            stream_offset: 8,
        }));
        round_trip(Response::ShuttingDown { settled: 2 });
        round_trip(Response::Error {
            message: "bad frame".into(),
        });
        round_trip(Response::StreamState {
            generation: 2,
            owners: vec![
                StreamCheckpoint {
                    owner: "alice".into(),
                    offset: 120,
                    digest: "cbf29ce484222325".into(),
                },
                StreamCheckpoint::default(),
            ],
        });
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(
            from_wire::<Request>(&[250]),
            Err(WireError::InvalidTag {
                context: "Request",
                ..
            })
        ));
        assert!(matches!(
            from_wire::<Response>(&[250]),
            Err(WireError::InvalidTag {
                context: "Response",
                ..
            })
        ));
        assert!(matches!(
            from_wire::<RejectReason>(&[6]),
            Err(WireError::InvalidTag {
                context: "RejectReason",
                ..
            })
        ));
    }

    #[test]
    fn stream_line_is_stable() {
        let verdict = VerdictReply {
            owner: "o".into(),
            journey: 5,
            mechanism: "protocol".into(),
            detected: true,
            accused: vec!["h1".into(), "h2".into()],
            completed: true,
            infra_error: false,
        };
        assert_eq!(
            verdict.stream_line(),
            "o 5 protocol detected=true accused=[h1,h2] completed=true infra=false"
        );
    }
}
