//! The server-side tick driver: a background thread that paces
//! verification so clients don't have to.
//!
//! Historically ticks ran only when a client sent [`Request::Tick`] —
//! verification was *client-paced*, and a stalled client stalled its
//! owners' settlements. The driver inverts that: it periodically scans
//! the owner shards and ticks the ones whose queues are worth settling,
//! making client `Tick` / `TickOwners` requests optional pacing hints.
//!
//! The scan is **batching-aware** ([`TickPolicy`]): an owner is ticked
//! when its queue has reached `batch_min` journeys (the amortization
//! sweet spot — one `settle_owner_batch` covers the lot) *or* when its
//! oldest queued journey has waited `max_age` (the latency bound that
//! keeps a trickle of submissions from waiting forever). Owners with
//! empty or not-yet-eligible queues are skipped without taking their
//! exec locks.
//!
//! Determinism: a driver tick is the same operation as a client tick —
//! it drains whole ingress batches under each owner's exec lock — so
//! per-owner verdict streams are byte-identical whether, when, and how
//! often the driver fires (see the service module docs).
//!
//! [`Request::Tick`]: crate::Request::Tick

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use refstate_telemetry as telemetry;

use crate::service::Service;

/// When a scanned owner becomes eligible for a driver tick.
#[derive(Debug, Clone)]
pub struct TickPolicy {
    /// Tick an owner once its queue holds at least this many journeys
    /// (the batch-amortization threshold). `1` means "any queued work".
    pub batch_min: usize,
    /// Tick an owner regardless of depth once its oldest queued journey
    /// has waited this long (the latency deadline).
    pub max_age: Duration,
}

impl Default for TickPolicy {
    fn default() -> Self {
        TickPolicy {
            batch_min: 16,
            max_age: Duration::from_millis(5),
        }
    }
}

/// Tick driver configuration: how often to scan, and when a scanned
/// owner is worth ticking.
#[derive(Debug, Clone)]
pub struct TickDriverConfig {
    /// Pause between scans.
    pub interval: Duration,
    /// Per-owner eligibility policy.
    pub policy: TickPolicy,
}

impl Default for TickDriverConfig {
    fn default() -> Self {
        TickDriverConfig {
            interval: Duration::from_millis(1),
            policy: TickPolicy::default(),
        }
    }
}

/// A running background tick driver. Stops (and joins its thread) on
/// [`TickDriver::stop`] or drop; also exits on its own once the service
/// starts shutting down.
pub struct TickDriver {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TickDriver {
    /// Spawns the driver thread over `service`.
    pub fn start(service: Arc<Service>, config: TickDriverConfig) -> TickDriver {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("refstate-tick-driver".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) && !service.is_shutting_down() {
                    service.drive_tick(&config.policy);
                    std::thread::sleep(config.interval);
                }
            })
            .expect("spawn tick driver thread");
        TickDriver {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the driver thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TickDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Service {
    /// One driver pass: scan every owner's queue depth and age, tick the
    /// eligible ones (in parallel across `settle_workers`). Returns the
    /// number of verdicts produced.
    ///
    /// Instrumented under `serve.tick_driver.*`: scan latency
    /// (`scan_us`), a queue-age histogram over non-empty queues
    /// (`queue_age_us`), how many owners were skipped as idle or
    /// below-threshold (`idle_skips`), and how many driver ticks actually
    /// fired (`ticks`).
    pub fn drive_tick(&self, policy: &TickPolicy) -> u64 {
        let timer = telemetry::Timer::start();
        let shards = self.shards();
        let mut eligible = Vec::new();
        let mut skipped = 0u64;
        for shard in &shards {
            let (depth, age) = shard.queue_depth_and_age();
            if depth == 0 {
                skipped += 1;
                continue;
            }
            let age = age.unwrap_or_default();
            telemetry::observe("serve.tick_driver.queue_age_us", age.as_micros() as u64);
            if depth >= policy.batch_min || age >= policy.max_age {
                eligible.push(Arc::clone(shard));
            } else {
                skipped += 1;
            }
        }
        let scan = timer.finish("serve.tick_driver.scan", "serve");
        telemetry::observe("serve.tick_driver.scan_us", scan.as_micros() as u64);
        if skipped > 0 {
            telemetry::count("serve.tick_driver.idle_skips", skipped);
        }
        if eligible.is_empty() {
            return 0;
        }
        telemetry::count("serve.tick_driver.ticks", 1);
        self.tick_shards(&eligible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{RegisterOwner, Request, Response};
    use crate::service::ServeConfig;

    fn register(service: &Service, owner: &str, seed: u64) {
        let reply = service.handle(Request::Register(RegisterOwner {
            owner: owner.into(),
            seed,
            preset: "single-tamperer".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(reply, Response::Registered { .. }), "{reply:?}");
    }

    #[test]
    fn drive_tick_respects_batch_min_until_the_deadline() {
        let service = Service::new(ServeConfig {
            key_pool: 8,
            ..ServeConfig::default()
        });
        register(&service, "alice", 7);
        service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 0,
        });
        // Depth 1 < batch_min 8 and the deadline is far away: no tick.
        let policy = TickPolicy {
            batch_min: 8,
            max_age: Duration::from_secs(3600),
        };
        assert_eq!(service.drive_tick(&policy), 0);
        // The age deadline alone makes it eligible.
        let impatient = TickPolicy {
            batch_min: 8,
            max_age: Duration::ZERO,
        };
        assert_eq!(service.drive_tick(&impatient), 1);
    }

    #[test]
    fn drive_tick_fires_at_batch_min_depth() {
        let service = Service::new(ServeConfig {
            key_pool: 8,
            ..ServeConfig::default()
        });
        register(&service, "alice", 7);
        for journey in 0..4u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        let policy = TickPolicy {
            batch_min: 4,
            max_age: Duration::from_secs(3600),
        };
        assert_eq!(service.drive_tick(&policy), 4);
        // Nothing queued: the next pass is a no-op.
        assert_eq!(service.drive_tick(&policy), 0);
    }

    #[test]
    fn shutdown_settles_a_queue_too_young_and_shallow_for_the_driver() {
        // One queued journey, depth far below batch_min and age far below
        // max_age: the running driver will never find it eligible, so the
        // shutdown drain must settle it unconditionally — and must not
        // lose it to a driver tick caught mid-settle.
        let service = Arc::new(Service::new(ServeConfig {
            key_pool: 8,
            ..ServeConfig::default()
        }));
        register(&service, "alice", 7);
        let driver = TickDriver::start(
            Arc::clone(&service),
            TickDriverConfig {
                interval: Duration::from_micros(100),
                policy: TickPolicy {
                    batch_min: 64,
                    max_age: Duration::from_secs(3600),
                },
            },
        );
        let reply = service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 0,
        });
        assert!(matches!(reply, Response::Accepted { .. }));
        let reply = service.handle(Request::Shutdown);
        assert!(matches!(reply, Response::ShuttingDown { .. }));
        driver.stop();
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(
            verdicts.len(),
            1,
            "the queued journey settles during shutdown"
        );
    }

    #[test]
    fn background_driver_settles_without_client_ticks() {
        let service = Arc::new(Service::new(ServeConfig {
            key_pool: 8,
            ..ServeConfig::default()
        }));
        register(&service, "alice", 7);
        let driver = TickDriver::start(
            Arc::clone(&service),
            TickDriverConfig {
                interval: Duration::from_millis(1),
                policy: TickPolicy {
                    batch_min: 1,
                    max_age: Duration::ZERO,
                },
            },
        );
        for journey in 0..6u64 {
            let reply = service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }));
        }
        // No client Tick anywhere: the driver alone settles everything.
        let mut verdicts = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while verdicts.len() < 6 {
            assert!(
                std::time::Instant::now() < deadline,
                "driver failed to settle: {} of 6",
                verdicts.len()
            );
            let Response::Verdicts(batch) = service.handle(Request::Drain {
                owner: "alice".into(),
            }) else {
                panic!("drain");
            };
            verdicts.extend(batch);
            std::thread::sleep(Duration::from_millis(1));
        }
        driver.stop();
        assert_eq!(
            verdicts.iter().map(|v| v.journey).collect::<Vec<_>>(),
            (0..6u64).collect::<Vec<_>>(),
            "driver ticks preserve admission order"
        );
    }
}
