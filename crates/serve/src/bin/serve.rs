//! The service CLI: run a resident TCP server (with a background tick
//! driver), or drive a soak load — lockstep or over N pipelined
//! connections — and report SLOs.
//!
//! ```text
//! # resident server on a fixed port, server-paced ticks every 1ms
//! cargo run --release -p refstate-serve --bin serve -- --listen 127.0.0.1:7440
//!
//! # in-process soak: 8 pipelined connections, 8 owners, 10k journeys,
//! # throughput ratio vs a single lockstep connection, SLO JSON to a file
//! cargo run --release -p refstate-serve --bin serve -- --soak \
//!     --connections 8 --compare-single --owners 8 --journeys 10000 \
//!     --seed 42 --preset mixed --mechanism protocol --slo-out slo.json
//!
//! # soak against a running server over 4 pipelined connections
//! cargo run --release -p refstate-serve --bin serve -- --soak \
//!     --connect 127.0.0.1:7440 --connections 4 --owners 4 --journeys 2000
//! ```
//!
//! Flags:
//!
//! * `--listen ADDR` — serve the framed TCP protocol on `ADDR` until a
//!   client sends `Shutdown`; a background tick driver paces settlement
//!   (disable with `--tick-interval 0`)
//! * `--soak` — drive a soak run (in-process unless `--connect`)
//! * `--connect ADDR` — soak against a remote server instead of an
//!   in-process service
//! * `--connections N` — drive the soak over `N` pipelined connections
//!   (owners partition across them; default 1 = lockstep)
//! * `--compare-single` — also run a single-connection lockstep baseline
//!   (settle-workers 1, no driver), record the throughput ratio in the
//!   SLO artifact, and fail unless the verdict streams are byte-identical
//! * `--require-ratio X` — with `--compare-single`, fail unless the
//!   throughput ratio reaches `X`; pick `X` from the host's parallelism
//!   (the artifact records it) — ≥3 is the expectation on ≥8 cores,
//!   while a single core caps any CPU-bound ratio near 1
//! * `--owners N`, `--journeys N`, `--seed S`, `--preset P`,
//!   `--mechanism M`, `--tick-every N` — soak shape
//! * `--start N` — first global submission index (a resumed leg passes
//!   the previous legs' total so journey ids continue)
//! * `--resume` — resume a soak against a warm-restarted server: accept
//!   restored registrations and verify the server's durable stream
//!   checkpoints sit exactly at `--start`'s offsets (single lockstep
//!   connection only)
//! * `--key-pool N`, `--queue-capacity N`, `--check-workers N`,
//!   `--settle-workers N` (0 = one per core), `--no-replay-cache` —
//!   service knobs (in-process / `--listen`)
//! * `--state-dir DIR` — durable state: persist registrations, the key
//!   directory, the replay cache, the VM compile table, and per-owner
//!   verdict streams to an append-only log store in `DIR`, so a
//!   restarted server warm-starts with its caches hot and its streams
//!   checkpointed
//! * `--tick-interval MS` (0 = off), `--tick-batch-min N`,
//!   `--tick-max-age MS` — tick-driver pacing (`--listen` defaults to a
//!   1ms driver; in-process soaks run driverless unless given an
//!   interval)
//! * `--slo-out PATH` — write the `refstate-soak-slo-v1` JSON artifact
//! * `--stream-out PATH` — write the verdict stream (golden-fixture
//!   format, grouped by owner)
//! * `--telemetry off|counters|full` — observability level (default off;
//!   verdict streams are byte-identical at every level)

use std::sync::Arc;
use std::time::Duration;

use refstate_serve::{
    run_soak, run_soak_concurrent, Client, LocalPipelined, PipelinedClient, ServeConfig, Server,
    Service, SoakConfig, SoakOutcome, TickDriver, TickDriverConfig, TickDriverMeta, TickPolicy,
};
use refstate_telemetry as telemetry;

fn usage(exit: i32) -> ! {
    eprintln!(
        "usage: serve --listen ADDR [service knobs] [tick-driver knobs]\n\
         \x20      serve --soak [--connect ADDR] [--connections N] \
         [--compare-single] [--owners N] [--journeys N] [--seed S] \
         [--preset P] [--mechanism M] [--tick-every N] [--start N] \
         [--resume] [--slo-out PATH] \
         [--stream-out PATH] [service knobs] [tick-driver knobs]\n\
         service knobs: --key-pool N --queue-capacity N --check-workers N \
         --settle-workers N --no-replay-cache --state-dir DIR \
         --telemetry off|counters|full\n\
         tick-driver knobs: --tick-interval MS --tick-batch-min N \
         --tick-max-age MS"
    );
    std::process::exit(exit);
}

struct Options {
    listen: Option<String>,
    soak: bool,
    connect: Option<String>,
    connections: usize,
    compare_single: bool,
    require_ratio: Option<f64>,
    soak_config: SoakConfig,
    serve_config: ServeConfig,
    /// `None` = mode default (1ms for `--listen`, off for soaks);
    /// `Some(ZERO)` = explicitly off.
    tick_interval: Option<Duration>,
    tick_policy: TickPolicy,
    slo_out: Option<String>,
    stream_out: Option<String>,
    telemetry: telemetry::TelemetryLevel,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut options = Options {
        listen: None,
        soak: false,
        connect: None,
        connections: 1,
        compare_single: false,
        require_ratio: None,
        soak_config: SoakConfig::default(),
        serve_config: ServeConfig::default(),
        tick_interval: None,
        tick_policy: TickPolicy::default(),
        slo_out: None,
        stream_out: None,
        telemetry: telemetry::TelemetryLevel::Off,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage(2))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => options.listen = Some(value(&mut i)),
            "--soak" => options.soak = true,
            "--connect" => options.connect = Some(value(&mut i)),
            "--connections" => {
                options.connections = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--compare-single" => options.compare_single = true,
            "--require-ratio" => {
                options.require_ratio = Some(value(&mut i).parse().unwrap_or_else(|_| usage(2)))
            }
            "--owners" => {
                options.soak_config.owners = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--journeys" => {
                options.soak_config.journeys = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--seed" => {
                let seed = value(&mut i).parse().unwrap_or_else(|_| usage(2));
                options.soak_config.seed = seed;
                options.serve_config.seed = seed;
            }
            "--preset" => options.soak_config.preset = value(&mut i),
            "--mechanism" => options.soak_config.mechanism = value(&mut i),
            "--tick-every" => {
                options.soak_config.tick_every = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--key-pool" => {
                options.serve_config.key_pool = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--queue-capacity" => {
                options.serve_config.queue_capacity =
                    value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--check-workers" => {
                options.serve_config.check_workers =
                    value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--settle-workers" => {
                options.serve_config.settle_workers =
                    value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--no-replay-cache" => options.serve_config.replay_cache = false,
            "--state-dir" => {
                options.serve_config.state_dir = Some(std::path::PathBuf::from(value(&mut i)))
            }
            "--start" => {
                options.soak_config.start = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--resume" => options.soak_config.resume = true,
            "--tick-interval" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage(2));
                options.tick_interval = Some(Duration::from_millis(ms));
            }
            "--tick-batch-min" => {
                options.tick_policy.batch_min = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--tick-max-age" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage(2));
                options.tick_policy.max_age = Duration::from_millis(ms);
            }
            "--slo-out" => options.slo_out = Some(value(&mut i)),
            "--stream-out" => options.stream_out = Some(value(&mut i)),
            "--telemetry" => {
                let name = value(&mut i);
                options.telemetry = telemetry::TelemetryLevel::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown telemetry level {name:?} (off | counters | full)");
                    usage(2)
                });
            }
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
        i += 1;
    }
    if options.listen.is_none() && !options.soak {
        usage(2);
    }
    if options.listen.is_some() && options.soak {
        eprintln!("--listen and --soak are exclusive; soak a server via --connect");
        usage(2);
    }
    if options.connections == 0 {
        eprintln!("--connections must be at least 1");
        usage(2);
    }
    if options.require_ratio.is_some() && !options.compare_single {
        eprintln!("--require-ratio needs the baseline from --compare-single");
        usage(2);
    }
    if (options.soak_config.resume || options.soak_config.start > 0) && options.connections > 1 {
        eprintln!("--resume / --start run over a single lockstep connection");
        usage(2);
    }
    if options.soak_config.resume && options.compare_single {
        eprintln!("--resume continues a durable history; --compare-single starts one cold");
        usage(2);
    }
    options
}

fn write_file(path: &str, contents: &str) {
    if let Err(error) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

/// The tick-driver configuration a mode resolved to, if any.
fn driver_config(
    options: &Options,
    default_interval: Option<Duration>,
) -> Option<TickDriverConfig> {
    let interval = options.tick_interval.or(default_interval)?;
    if interval.is_zero() {
        return None;
    }
    Some(TickDriverConfig {
        interval,
        policy: options.tick_policy.clone(),
    })
}

fn driver_meta(config: &TickDriverConfig) -> TickDriverMeta {
    TickDriverMeta {
        interval: config.interval,
        batch_min: config.policy.batch_min,
        max_age: config.policy.max_age,
    }
}

/// Runs the soak shape in whichever deployment the flags selected.
fn run_load(options: &Options) -> SoakOutcome {
    let config = &options.soak_config;
    let queue_capacity = options.serve_config.queue_capacity;
    match &options.connect {
        Some(addr) if options.connections > 1 => run_soak_concurrent(
            |connection| {
                PipelinedClient::connect(addr.as_str()).unwrap_or_else(|error| {
                    eprintln!("connection {connection}: cannot connect to {addr}: {error}");
                    std::process::exit(1);
                })
            },
            config,
            options.connections,
            queue_capacity,
        ),
        Some(addr) => {
            let mut client = match Client::connect(addr.as_str()) {
                Ok(client) => client,
                Err(error) => {
                    eprintln!("cannot connect to {addr}: {error}");
                    std::process::exit(1);
                }
            };
            run_soak(&mut client, config)
        }
        None => {
            let service = Arc::new(Service::new(options.serve_config.clone()));
            let driver = driver_config(options, None);
            let running = driver
                .as_ref()
                .map(|config| TickDriver::start(Arc::clone(&service), config.clone()));
            let mut outcome = if options.connections > 1 {
                run_soak_concurrent(
                    |_| LocalPipelined::new(Arc::clone(&service)),
                    config,
                    options.connections,
                    queue_capacity,
                )
            } else {
                let mut endpoint = Arc::clone(&service);
                run_soak(&mut endpoint, config)
            };
            if let Some(running) = running {
                running.stop();
            }
            outcome.tick_driver = driver.as_ref().map(driver_meta);
            outcome
        }
    }
}

fn main() {
    let options = parse_args();
    telemetry::set_level(options.telemetry);

    if let Some(addr) = &options.listen {
        let service = Service::new(options.serve_config.clone());
        let mut server = match Server::bind(service, addr.as_str()) {
            Ok(server) => server,
            Err(error) => {
                eprintln!("cannot bind {addr}: {error}");
                std::process::exit(1);
            }
        };
        // The resident server paces itself by default: clients need not
        // send a single Tick.
        if let Some(config) = driver_config(&options, Some(TickDriverConfig::default().interval)) {
            eprintln!(
                "tick driver: every {:?}, batch-min {}, max-age {:?}",
                config.interval, config.policy.batch_min, config.policy.max_age
            );
            server.start_tick_driver(config);
        }
        eprintln!("serving on {}", server.addr());
        server.join();
        eprintln!("shut down");
        return;
    }

    let mut outcome = run_load(&options);

    if options.compare_single {
        // The pre-sharding deployment: one lockstep connection, one
        // settle worker, no driver. The ratio this records is the
        // scaling claim; the byte-compare is the determinism claim.
        let mut baseline_service = Service::new(ServeConfig {
            settle_workers: 1,
            ..options.serve_config.clone()
        });
        let baseline = run_soak(&mut baseline_service, &options.soak_config);
        if baseline.stream != outcome.stream {
            eprintln!(
                "determinism violation: {}-connection stream diverged from the \
                 single-connection baseline",
                outcome.connections
            );
            std::process::exit(1);
        }
        outcome.baseline_journeys_per_sec = Some(baseline.journeys_per_sec());
        if let Some(ratio) = outcome.throughput_ratio_vs_single() {
            eprintln!(
                "throughput: {:.0} journeys/s over {} connections vs {:.0} single \
                 ({ratio:.2}x, {} cores)",
                outcome.journeys_per_sec(),
                outcome.connections,
                baseline.journeys_per_sec(),
                outcome.parallelism,
            );
            // The scaling gate is hardware-relative: a CPU-bound soak
            // cannot beat its serial baseline on a single core, so the
            // caller (CI) picks the floor the host can support.
            if let Some(required) = options.require_ratio {
                if ratio < required {
                    eprintln!(
                        "SLO violation: throughput ratio {ratio:.2} below required \
                         {required:.2} (parallelism {})",
                        outcome.parallelism
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    let json = outcome.to_json(
        options.serve_config.check_workers,
        options.serve_config.queue_capacity,
    );
    print!("{json}");
    if let Some(path) = &options.slo_out {
        write_file(path, &json);
    }
    if let Some(path) = &options.stream_out {
        write_file(path, &outcome.stream);
    }
    if outcome.dropped > 0 {
        eprintln!(
            "SLO violation: {} accepted journeys never produced a verdict",
            outcome.dropped
        );
        std::process::exit(1);
    }
}
