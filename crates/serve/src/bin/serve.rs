//! The service CLI: run a resident TCP server, or drive a soak load and
//! report SLOs.
//!
//! ```text
//! # resident server on a fixed port
//! cargo run --release -p refstate-serve --bin serve -- --listen 127.0.0.1:7440
//!
//! # in-process soak: 4 owners, 10k journeys, SLO JSON to a file
//! cargo run --release -p refstate-serve --bin serve -- --soak \
//!     --owners 4 --journeys 10000 --seed 42 --preset mixed \
//!     --mechanism protocol --slo-out slo.json --stream-out verdicts.stream
//!
//! # soak against a running server
//! cargo run --release -p refstate-serve --bin serve -- --soak \
//!     --connect 127.0.0.1:7440 --owners 2 --journeys 500
//! ```
//!
//! Flags:
//!
//! * `--listen ADDR` — serve the framed TCP protocol on `ADDR` until a
//!   client sends `Shutdown`
//! * `--soak` — drive a soak run (in-process unless `--connect`)
//! * `--connect ADDR` — soak against a remote server instead of an
//!   in-process service
//! * `--owners N`, `--journeys N`, `--seed S`, `--preset P`,
//!   `--mechanism M`, `--tick-every N` — soak shape
//! * `--key-pool N`, `--queue-capacity N`, `--check-workers N`,
//!   `--no-replay-cache` — service knobs (in-process / `--listen`)
//! * `--slo-out PATH` — write the `refstate-soak-slo-v1` JSON artifact
//! * `--stream-out PATH` — write the verdict stream (golden-fixture
//!   format)
//! * `--telemetry off|counters|full` — observability level (default off;
//!   verdict streams are byte-identical at every level)

use refstate_serve::{run_soak, Client, ServeConfig, Server, Service, SoakConfig};
use refstate_telemetry as telemetry;

fn usage(exit: i32) -> ! {
    eprintln!(
        "usage: serve --listen ADDR [service knobs]\n\
         \x20      serve --soak [--connect ADDR] [--owners N] [--journeys N] \
         [--seed S] [--preset P] [--mechanism M] [--tick-every N] \
         [--slo-out PATH] [--stream-out PATH] [service knobs]\n\
         service knobs: --key-pool N --queue-capacity N --check-workers N \
         --no-replay-cache --telemetry off|counters|full"
    );
    std::process::exit(exit);
}

struct Options {
    listen: Option<String>,
    soak: bool,
    connect: Option<String>,
    soak_config: SoakConfig,
    serve_config: ServeConfig,
    slo_out: Option<String>,
    stream_out: Option<String>,
    telemetry: telemetry::TelemetryLevel,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut options = Options {
        listen: None,
        soak: false,
        connect: None,
        soak_config: SoakConfig::default(),
        serve_config: ServeConfig::default(),
        slo_out: None,
        stream_out: None,
        telemetry: telemetry::TelemetryLevel::Off,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage(2))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => options.listen = Some(value(&mut i)),
            "--soak" => options.soak = true,
            "--connect" => options.connect = Some(value(&mut i)),
            "--owners" => {
                options.soak_config.owners = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--journeys" => {
                options.soak_config.journeys = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--seed" => {
                let seed = value(&mut i).parse().unwrap_or_else(|_| usage(2));
                options.soak_config.seed = seed;
                options.serve_config.seed = seed;
            }
            "--preset" => options.soak_config.preset = value(&mut i),
            "--mechanism" => options.soak_config.mechanism = value(&mut i),
            "--tick-every" => {
                options.soak_config.tick_every = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--key-pool" => {
                options.serve_config.key_pool = value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--queue-capacity" => {
                options.serve_config.queue_capacity =
                    value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--check-workers" => {
                options.serve_config.check_workers =
                    value(&mut i).parse().unwrap_or_else(|_| usage(2))
            }
            "--no-replay-cache" => options.serve_config.replay_cache = false,
            "--slo-out" => options.slo_out = Some(value(&mut i)),
            "--stream-out" => options.stream_out = Some(value(&mut i)),
            "--telemetry" => {
                let name = value(&mut i);
                options.telemetry = telemetry::TelemetryLevel::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown telemetry level {name:?} (off | counters | full)");
                    usage(2)
                });
            }
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
        i += 1;
    }
    if options.listen.is_none() && !options.soak {
        usage(2);
    }
    if options.listen.is_some() && options.soak {
        eprintln!("--listen and --soak are exclusive; soak a server via --connect");
        usage(2);
    }
    options
}

fn write_file(path: &str, contents: &str) {
    if let Err(error) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    let options = parse_args();
    telemetry::set_level(options.telemetry);

    if let Some(addr) = &options.listen {
        let service = Service::new(options.serve_config.clone());
        let server = match Server::bind(service, addr.as_str()) {
            Ok(server) => server,
            Err(error) => {
                eprintln!("cannot bind {addr}: {error}");
                std::process::exit(1);
            }
        };
        eprintln!("serving on {}", server.addr());
        server.join();
        eprintln!("shut down");
        return;
    }

    let outcome = match &options.connect {
        Some(addr) => {
            let mut client = match Client::connect(addr.as_str()) {
                Ok(client) => client,
                Err(error) => {
                    eprintln!("cannot connect to {addr}: {error}");
                    std::process::exit(1);
                }
            };
            run_soak(&mut client, &options.soak_config)
        }
        None => {
            let mut service = Service::new(options.serve_config.clone());
            run_soak(&mut service, &options.soak_config)
        }
    };

    let json = outcome.to_json(
        options.serve_config.check_workers,
        options.serve_config.queue_capacity,
    );
    print!("{json}");
    if let Some(path) = &options.slo_out {
        write_file(path, &json);
    }
    if let Some(path) = &options.stream_out {
        write_file(path, &outcome.stream);
    }
    if outcome.dropped > 0 {
        eprintln!(
            "SLO violation: {} accepted journeys never produced a verdict",
            outcome.dropped
        );
        std::process::exit(1);
    }
}
