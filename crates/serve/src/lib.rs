//! `refstate-serve`: the batch verification stack as a resident,
//! multi-tenant owner service.
//!
//! The paper's owner is the trusted endpoint every protected journey
//! reports back to: it re-executes the final session against reference
//! states and verifies the signatures the route collected. The fleet
//! engine exercises that role in batch — generate N scenarios, run them,
//! aggregate. This crate keeps the owner *resident*: tenants register a
//! scenario universe once, stream journey ids in over a framed wire
//! protocol, and read verdicts back out, while the service amortizes the
//! owner-side work across everything that arrived in a tick.
//!
//! Layers, bottom up:
//!
//! * [`proto`] — the request/response messages on the workspace's
//!   canonical codec, framed by `refstate_wire::frame`,
//! * [`service`] — per-owner sharded state (namespaced key-directory
//!   views, per-owner pipelines over one shared replay cache, bounded
//!   ingress queues) and the deterministic tick loop: every admitted
//!   journey runs host-side, then each owner settles in one amortized
//!   `settle_owner_batch`,
//! * [`net`] — a TCP shell (framed requests in, framed responses out)
//!   around the synchronous service,
//! * [`soak`] — the load driver: sustained multi-owner streams with
//!   client-observed p50/p95/p99 verdict latency, emitted as the
//!   schema-checked `refstate-soak-slo-v1` JSON artifact.
//!
//! The contract under all of it: for a fixed registration and request
//! order, each owner's verdict stream is **byte-identical** across runs,
//! `check_workers` settings, and telemetry levels — parallelism and
//! observability change cost, never outcomes. Golden fixtures in
//! `tests/` pin this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod proto;
pub mod service;
pub mod soak;

pub use net::{Client, Server};
pub use proto::{OwnerStats, RegisterOwner, RejectReason, Request, Response, VerdictReply};
pub use service::{ServeConfig, Service};
pub use soak::{run_soak, Endpoint, SloPercentiles, SoakConfig, SoakOutcome};
