//! `refstate-serve`: the batch verification stack as a resident,
//! multi-tenant owner service.
//!
//! The paper's owner is the trusted endpoint every protected journey
//! reports back to: it re-executes the final session against reference
//! states and verifies the signatures the route collected. The fleet
//! engine exercises that role in batch — generate N scenarios, run them,
//! aggregate. This crate keeps the owner *resident*: tenants register a
//! scenario universe once, stream journey ids in over a framed wire
//! protocol, and read verdicts back out, while the service amortizes the
//! owner-side work across everything that arrived in a tick.
//!
//! Layers, bottom up:
//!
//! * [`proto`] — the request/response messages on the workspace's
//!   canonical codec, framed by `refstate_wire::frame`,
//! * [`service`] — a lock-free routing layer over per-owner *shards*
//!   (namespaced key-directory views, per-owner pipelines over one
//!   shared replay cache, bounded ingress queues, per-owner exec locks).
//!   Submits for different owners never contend, and a tick settles
//!   independent owners in parallel across a small worker pool
//!   (`settle_workers`) — each owner still settles in one amortized
//!   `settle_owner_batch`,
//! * [`driver`] — the server-side tick driver: a background thread that
//!   scans the shards and ticks the ones whose queues are worth settling
//!   (batch-size or age eligibility), making client `Tick` requests
//!   optional pacing hints,
//! * [`net`] — a TCP shell with pipelined connections: each connection
//!   runs a reader/writer thread pair around a bounded response window,
//!   so clients can keep many requests in flight on one socket,
//! * [`soak`] — the load driver: sustained multi-owner streams, single
//!   lockstep connection or N pipelined connections, with
//!   client-observed p50/p95/p99 verdict latency and aggregate
//!   journeys/s, emitted as the schema-checked `refstate-soak-slo-v1`
//!   JSON artifact.
//!
//! The contract under all of it: for a fixed registration and per-owner
//! submission order, each owner's verdict stream is **byte-identical**
//! across runs, `check_workers` and `settle_workers` settings,
//! connection counts, tick pacing (client ticks, the background driver,
//! or both), and telemetry levels — parallelism and observability change
//! cost, never outcomes. Golden fixtures in `tests/` pin this. With a
//! durable state dir ([`ServeConfig::state_dir`]) the contract extends
//! *across process lifetimes*: a warm restart restores registrations,
//! caches, and checkpointed per-owner verdict streams, and a resumed
//! run's stream is byte-identical to an uninterrupted one
//! (`tests/warm_restart.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod net;
pub mod proto;
pub mod service;
pub mod soak;

pub use driver::{TickDriver, TickDriverConfig, TickPolicy};
pub use net::{Client, PipelinedClient, Server};
pub use proto::{
    OwnerStats, RegisterOwner, RejectReason, Request, Response, StreamCheckpoint, VerdictReply,
};
pub use service::{ServeConfig, Service};
pub use soak::{
    run_soak, run_soak_concurrent, ConnectionOutcome, Endpoint, LocalPipelined, PipelinedEndpoint,
    SloPercentiles, SoakConfig, SoakOutcome, TickDriverMeta, WarmStartMeta,
};
