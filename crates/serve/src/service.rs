//! The resident owner service: multi-tenant state, admission control,
//! and the amortized verification tick.
//!
//! A [`Service`] is the paper's *agent owner* turned into a long-lived
//! endpoint. Tenants register a scenario universe (seed + preset +
//! mechanism), stream journey ids in, and read verdicts back out. The
//! service re-derives every journey from the registration — generation is
//! a pure function of `(seed, id, preset)`, exactly as in the fleet
//! engine — so no agent state crosses the wire and a service run is
//! reproducible from its request sequence alone.
//!
//! Three design rules keep the service deterministic and cheap:
//!
//! * **client-paced ticks** — verification happens only inside
//!   [`Service::handle`]'s `Tick`, never on a background thread, so the
//!   per-owner verdict stream is a pure function of the request order.
//!   Worker parallelism lives *inside* the tick
//!   (`check_workers`-distributed bulk session checking, which is
//!   verdict-order invariant), never across it.
//! * **cross-journey amortization** — every admitted journey runs its
//!   host-side part, and each owner's outstanding owner-side work (final
//!   re-execution checks, deferred signature verifications) settles in
//!   *one* `settle_owner_batch` per owner per tick: one bulk
//!   `check_sessions_with` pass and one batch signature flush, instead of
//!   one of each per journey.
//! * **bounded admission** — each owner has a bounded ingress queue;
//!   submissions past the bound are refused with
//!   [`RejectReason::QueueFull`] instead of queuing unboundedly, and a
//!   draining service refuses everything new while still settling every
//!   journey it already accepted.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::{ReplayCache, VerificationPipeline};
use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory};
use refstate_fleet::scenario::{self, Preset};
use refstate_mechanisms::api::{
    settle_owner_batch, JourneyVerdict, MechanismConfig, MechanismRegistry, PendingOwnerJourney,
    ProtectionMechanism, SplitVerdict,
};
use refstate_mechanisms::JourneyCtx;
use refstate_platform::{EventLog, Host};
use refstate_telemetry as telemetry;

use crate::proto::{OwnerStats, RegisterOwner, RejectReason, Request, Response, VerdictReply};

/// Service-wide configuration (tenant-independent).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed of the service's DSA key pool (tenant host keys are drawn
    /// from the pool deterministically by owner seed and host name).
    pub seed: u64,
    /// Size of the pre-generated key pool.
    pub key_pool: usize,
    /// Per-owner ingress bound; submissions past it are rejected.
    pub queue_capacity: usize,
    /// Worker threads for the owner-side bulk session-check pass inside
    /// a tick (`0` = one per core). Verdict streams are invariant in this.
    pub check_workers: usize,
    /// Share one sharded [`ReplayCache`] across every tenant's pipeline.
    pub replay_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            key_pool: 32,
            queue_capacity: 64,
            check_workers: 1,
            replay_cache: true,
        }
    }
}

/// Every host name a generated scenario can mention: linear routes up to
/// 25 hops (`h0..h24`), the replicated middle stages' replicas
/// (`h1r1..h5r2`), and the cooperating presets' off-route witnesses
/// (`v0..v3`). Registered per owner at registration time so the owner's
/// namespaced directory view covers any journey it can submit.
fn host_universe() -> Vec<String> {
    let mut names: Vec<String> = (0..25).map(|i| format!("h{i}")).collect();
    for stage in 1..=5 {
        for replica in 1..=2 {
            names.push(format!("h{stage}r{replica}"));
        }
    }
    for witness in 0..4 {
        names.push(format!("v{witness}"));
    }
    names
}

/// Deterministic pool index for `name` under `owner_seed` (FNV-1a over
/// the name, finalized through the scenario seed mixer).
fn key_index(owner_seed: u64, name: &str, pool: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (scenario::scenario_seed(owner_seed, hash) % pool as u64) as usize
}

/// One tenant's resident state.
struct OwnerState {
    name: String,
    seed: u64,
    preset: Preset,
    mechanism: Arc<dyn ProtectionMechanism>,
    /// The owner's namespaced view of the service key directory, warmed
    /// at registration; every journey of this owner shares it (no
    /// per-journey directory builds or clones).
    directory: KeyDirectory,
    /// The owner's verification pipeline (replay cache shared
    /// service-wide when enabled; hit/miss counters are per owner).
    pipeline: Arc<VerificationPipeline>,
    log: EventLog,
    config: MechanismConfig,
    /// Admitted journeys awaiting the next tick, in admission order.
    ingress: VecDeque<(u64, Instant)>,
    /// Settled verdicts awaiting a drain, in admission order.
    outbox: Vec<VerdictReply>,
    accepted: u64,
    rejected: u64,
    verified: u64,
    detected: u64,
    final_checks: u64,
    flush_verifications: u64,
    flush_failures: u64,
}

/// The resident multi-tenant verification service.
///
/// Synchronous by construction: [`Service::handle`] is the only entry
/// point, transports serialize requests into it (the TCP layer holds the
/// service behind a mutex), and all verification work happens inside the
/// explicit `Tick` request.
///
/// # Examples
///
/// ```
/// use refstate_serve::{Request, Response, RegisterOwner, Service, ServeConfig};
///
/// let mut service = Service::new(ServeConfig::default());
/// let reply = service.handle(Request::Register(RegisterOwner {
///     owner: "alice".into(),
///     seed: 7,
///     preset: "single-tamperer".into(),
///     mechanism: "protocol".into(),
/// }));
/// assert_eq!(reply, Response::Registered { owner: "alice".into() });
/// service.handle(Request::Submit { owner: "alice".into(), journey: 0 });
/// service.handle(Request::Tick);
/// let Response::Verdicts(verdicts) = service.handle(Request::Drain { owner: "alice".into() })
/// else { panic!("drain returns verdicts") };
/// assert_eq!(verdicts.len(), 1);
/// ```
pub struct Service {
    config: ServeConfig,
    params_pool: Vec<DsaKeyPair>,
    master: KeyDirectory,
    cache: Option<Arc<ReplayCache>>,
    registry: MechanismRegistry,
    owners: Vec<OwnerState>,
    shutting_down: bool,
}

impl Service {
    /// Builds a service: generates and pre-warms the key pool.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.key_pool > 0, "key pool must be non-empty");
        let _span = telemetry::span("serve.start", "serve");
        let params = DsaParams::test_group_256();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e12_ce00_0a11_ce5e);
        let params_pool: Vec<DsaKeyPair> = (0..config.key_pool)
            .map(|_| DsaKeyPair::generate(&params, &mut rng))
            .collect();
        for key in &params_pool {
            key.public().precompute();
        }
        let cache = config.replay_cache.then(|| Arc::new(ReplayCache::new()));
        Service {
            config,
            params_pool,
            master: KeyDirectory::new(),
            cache,
            registry: MechanismRegistry::builtin(),
            owners: Vec::new(),
            shutting_down: false,
        }
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Registered owner names, in registration order.
    pub fn owner_names(&self) -> Vec<&str> {
        self.owners.iter().map(|o| o.name.as_str()).collect()
    }

    fn owner_index(&self, name: &str) -> Option<usize> {
        self.owners.iter().position(|o| o.name == name)
    }

    /// Handles one request; every transport funnels through here.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Register(registration) => self.register(registration),
            Request::Submit { owner, journey } => self.submit(owner, journey),
            Request::Tick => Response::Ticked {
                settled: self.tick(),
            },
            Request::Drain { owner } => self.drain(owner),
            Request::Stats { owner } => self.stats(owner),
            Request::Shutdown => self.shutdown(),
        }
    }

    fn register(&mut self, registration: RegisterOwner) -> Response {
        let RegisterOwner {
            owner,
            seed,
            preset,
            mechanism,
        } = registration;
        let reject = |reason| Response::Rejected {
            owner: owner.clone(),
            journey: 0,
            reason,
        };
        if self.shutting_down {
            return reject(RejectReason::ShuttingDown);
        }
        if owner.is_empty() || owner.contains('/') {
            return Response::Error {
                message: format!("invalid owner name {owner:?} (non-empty, no '/')"),
            };
        }
        if self.owner_index(&owner).is_some() {
            return reject(RejectReason::DuplicateOwner);
        }
        let Some(preset) = Preset::parse(&preset) else {
            return reject(RejectReason::UnknownPreset);
        };
        let Some(mechanism) = self.registry.get(&mechanism) else {
            return reject(RejectReason::UnknownMechanism);
        };

        // The owner's PKI: every host name its generator can produce,
        // keyed deterministically from the pool, registered under the
        // owner's namespace and handed back as a view. The view is built
        // once and shared by every journey — no per-journey clones — and
        // warmed here so no first verification pays a table build.
        for name in host_universe() {
            let key = &self.params_pool[key_index(seed, &name, self.params_pool.len())];
            self.master
                .register(format!("{owner}/{name}"), key.public().clone());
        }
        let directory = self.master.namespaced(&owner);
        directory.warm();

        let pipeline = Arc::new(match &self.cache {
            Some(cache) => VerificationPipeline::with_cache(Arc::clone(cache)),
            None => VerificationPipeline::uncached(),
        });
        let config = MechanismConfig {
            check_workers: self.config.check_workers,
            ..MechanismConfig::default()
        };
        telemetry::count("serve.owner.registered", 1);
        self.owners.push(OwnerState {
            name: owner.clone(),
            seed,
            preset,
            mechanism,
            directory,
            pipeline,
            log: EventLog::new(),
            config,
            ingress: VecDeque::new(),
            outbox: Vec::new(),
            accepted: 0,
            rejected: 0,
            verified: 0,
            detected: 0,
            final_checks: 0,
            flush_verifications: 0,
            flush_failures: 0,
        });
        Response::Registered { owner }
    }

    fn submit(&mut self, owner: String, journey: u64) -> Response {
        let Some(index) = self.owner_index(&owner) else {
            return Response::Rejected {
                owner,
                journey,
                reason: RejectReason::UnknownOwner,
            };
        };
        let capacity = self.config.queue_capacity;
        let shutting_down = self.shutting_down;
        let state = &mut self.owners[index];
        let reason = if shutting_down {
            Some(RejectReason::ShuttingDown)
        } else if state.ingress.len() >= capacity {
            Some(RejectReason::QueueFull)
        } else {
            None
        };
        if let Some(reason) = reason {
            state.rejected += 1;
            telemetry::count_indexed("serve.owner.rejected", index as u32, 1);
            return Response::Rejected {
                owner,
                journey,
                reason,
            };
        }
        state.ingress.push_back((journey, Instant::now()));
        state.accepted += 1;
        telemetry::count_indexed("serve.owner.accepted", index as u32, 1);
        Response::Accepted { owner, journey }
    }

    /// Runs one service tick: every admitted journey executes its
    /// host-side part, then each owner's outstanding owner-side work
    /// settles in one amortized batch. Returns the number of verdicts
    /// produced.
    pub fn tick(&mut self) -> u64 {
        let _span = telemetry::span("serve.tick", "serve");
        let mut settled_total = 0u64;
        for index in 0..self.owners.len() {
            settled_total += self.tick_owner(index);
        }
        telemetry::count("serve.tick.verdicts", settled_total);
        settled_total
    }

    fn tick_owner(&mut self, index: usize) -> u64 {
        let check_workers = self.config.check_workers;
        let owner = &mut self.owners[index];
        if owner.ingress.is_empty() {
            return 0;
        }
        let jobs: Vec<(u64, Instant)> = owner.ingress.drain(..).collect();
        let owner = &self.owners[index];

        // Verdict slots in admission order: settled-inline journeys fill
        // theirs immediately, deferred ones after the amortized batch, so
        // the outbox order never depends on which path a journey took.
        let mut slots: Vec<Option<VerdictReply>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let mut pendings: Vec<PendingOwnerJourney> = Vec::new();
        let mut pending_slots: Vec<usize> = Vec::new();

        for (slot, (journey, queued_at)) in jobs.iter().enumerate() {
            let (journey, queued_at) = (*journey, *queued_at);
            telemetry::observe(
                "serve.queue_wait_us",
                queued_at.elapsed().as_micros() as u64,
            );
            let generated = scenario::generate(owner.seed, journey, owner.preset);
            let has_spares = generated
                .specs
                .iter()
                .any(|spec| !generated.route.contains(&spec.id));
            let compatible = owner
                .mechanism
                .profile()
                .compatible_with(generated.stages.is_some(), has_spares);
            if !compatible {
                // A topology mismatch (e.g. `replication` on a linear
                // preset) is the owner's registration error, surfaced as
                // an infrastructure verdict rather than a dropped journey.
                slots[slot] = Some(verdict_reply(
                    owner.name.clone(),
                    journey,
                    owner.mechanism.name(),
                    &JourneyVerdict::clean(false),
                ));
                continue;
            }
            let mut hosts: Vec<Host> = generated
                .specs
                .iter()
                .enumerate()
                .map(|(pos, spec)| {
                    let key = self.params_pool
                        [key_index(owner.seed, spec.id.as_str(), self.params_pool.len())]
                    .clone();
                    let session_seed =
                        scenario::scenario_seed(owner.seed, journey ^ ((pos as u64 + 1) << 48));
                    Host::with_keys(spec.clone(), key, session_seed)
                })
                .collect();
            let ctx_seed = scenario::scenario_seed(owner.seed, journey ^ (1u64 << 63));
            let _scope = telemetry::scoped(owner.mechanism.name());
            let mut ctx = JourneyCtx::new(
                &mut hosts,
                generated.route.clone(),
                generated.agent.clone(),
                &owner.directory,
                &owner.config,
                &owner.log,
                ctx_seed,
            )
            .with_pipeline(owner.pipeline.clone());
            if let Some(stages) = &generated.stages {
                ctx = ctx.with_stages(stages.clone());
            }
            match owner.mechanism.run_split(&mut ctx) {
                SplitVerdict::Settled(verdict) => {
                    slots[slot] = Some(verdict_reply(
                        owner.name.clone(),
                        journey,
                        owner.mechanism.name(),
                        &verdict,
                    ));
                }
                SplitVerdict::Pending(pending) => {
                    pendings.push(*pending);
                    pending_slots.push(slot);
                }
            }
        }

        // The amortized owner-side pass: one bulk session-check plus one
        // signature flush for everything this owner deferred this tick.
        let mut stats_delta = None;
        if !pendings.is_empty() {
            let journeys: Vec<u64> = pending_slots.iter().map(|&s| jobs[s].0).collect();
            let _scope = telemetry::scoped(owner.mechanism.name());
            let (verdicts, stats) = settle_owner_batch(
                pendings,
                &owner.config,
                &owner.pipeline,
                &owner.log,
                &owner.directory,
                check_workers,
            );
            for ((slot, journey), verdict) in pending_slots.into_iter().zip(journeys).zip(verdicts)
            {
                slots[slot] = Some(verdict_reply(
                    owner.name.clone(),
                    journey,
                    owner.mechanism.name(),
                    &verdict,
                ));
            }
            stats_delta = Some(stats);
        }

        let owner = &mut self.owners[index];
        if let Some(stats) = stats_delta {
            owner.final_checks += stats.final_checks as u64;
            owner.flush_verifications += stats.flush_verifications as u64;
            owner.flush_failures += (stats.flush_failures + stats.unattributed_failures) as u64;
        }
        let mut settled = 0u64;
        for slot in slots {
            let reply = slot.expect("every admitted journey settles in its tick");
            owner.verified += 1;
            if reply.detected {
                owner.detected += 1;
            }
            settled += 1;
            owner.outbox.push(reply);
        }
        telemetry::count_indexed("serve.owner.verified", index as u32, settled);
        settled
    }

    fn drain(&mut self, owner: String) -> Response {
        let Some(index) = self.owner_index(&owner) else {
            return Response::Rejected {
                owner,
                journey: 0,
                reason: RejectReason::UnknownOwner,
            };
        };
        Response::Verdicts(std::mem::take(&mut self.owners[index].outbox))
    }

    fn stats(&self, owner: String) -> Response {
        let Some(index) = self.owner_index(&owner) else {
            return Response::Rejected {
                owner,
                journey: 0,
                reason: RejectReason::UnknownOwner,
            };
        };
        let state = &self.owners[index];
        let replay = state.pipeline.snapshot();
        Response::Stats(OwnerStats {
            owner,
            accepted: state.accepted,
            rejected: state.rejected,
            verified: state.verified,
            detected: state.detected,
            pending: state.ingress.len() as u64,
            undrained: state.outbox.len() as u64,
            queue_capacity: self.config.queue_capacity as u64,
            final_checks: state.final_checks,
            flush_verifications: state.flush_verifications,
            flush_failures: state.flush_failures,
            cache_hits: replay.hits,
            cache_misses: replay.misses,
        })
    }

    /// Stops admitting work and settles every accepted journey. The
    /// outboxes stay drainable afterwards, so no accepted journey's
    /// verdict is ever dropped.
    fn shutdown(&mut self) -> Response {
        self.shutting_down = true;
        let mut settled = 0u64;
        while self.owners.iter().any(|o| !o.ingress.is_empty()) {
            settled += self.tick();
        }
        Response::ShuttingDown { settled }
    }
}

fn verdict_reply(
    owner: String,
    journey: u64,
    mechanism: &str,
    verdict: &JourneyVerdict,
) -> VerdictReply {
    VerdictReply {
        owner,
        journey,
        mechanism: mechanism.to_owned(),
        detected: verdict.detected,
        accused: verdict
            .accused
            .iter()
            .map(|h| h.as_str().to_owned())
            .collect(),
        completed: verdict.completed,
        infra_error: verdict.infra_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(service: &mut Service, owner: &str, seed: u64, preset: &str, mechanism: &str) {
        let reply = service.handle(Request::Register(RegisterOwner {
            owner: owner.into(),
            seed,
            preset: preset.into(),
            mechanism: mechanism.into(),
        }));
        assert_eq!(
            reply,
            Response::Registered {
                owner: owner.into()
            }
        );
    }

    #[test]
    fn register_validates_preset_mechanism_and_duplicates() {
        let mut service = Service::new(ServeConfig::default());
        register(&mut service, "alice", 1, "mixed", "protocol");
        let duplicate = service.handle(Request::Register(RegisterOwner {
            owner: "alice".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(
            duplicate,
            Response::Rejected {
                reason: RejectReason::DuplicateOwner,
                ..
            }
        ));
        let bad_preset = service.handle(Request::Register(RegisterOwner {
            owner: "bob".into(),
            seed: 2,
            preset: "wat".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(
            bad_preset,
            Response::Rejected {
                reason: RejectReason::UnknownPreset,
                ..
            }
        ));
        let bad_mechanism = service.handle(Request::Register(RegisterOwner {
            owner: "bob".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "wat".into(),
        }));
        assert!(matches!(
            bad_mechanism,
            Response::Rejected {
                reason: RejectReason::UnknownMechanism,
                ..
            }
        ));
        let bad_name = service.handle(Request::Register(RegisterOwner {
            owner: "a/b".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(bad_name, Response::Error { .. }));
    }

    #[test]
    fn submit_to_unknown_owner_is_rejected() {
        let mut service = Service::new(ServeConfig::default());
        let reply = service.handle(Request::Submit {
            owner: "ghost".into(),
            journey: 0,
        });
        assert!(matches!(
            reply,
            Response::Rejected {
                reason: RejectReason::UnknownOwner,
                ..
            }
        ));
    }

    #[test]
    fn tick_settles_submitted_journeys_in_admission_order() {
        let mut service = Service::new(ServeConfig::default());
        register(&mut service, "alice", 7, "single-tamperer", "protocol");
        for journey in [3u64, 0, 5] {
            let reply = service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }));
        }
        assert_eq!(
            service.handle(Request::Tick),
            Response::Ticked { settled: 3 }
        );
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };
        assert_eq!(
            verdicts.iter().map(|v| v.journey).collect::<Vec<_>>(),
            vec![3, 0, 5],
            "outbox preserves admission order"
        );
        // Single-tamperer scenarios under the protocol mechanism detect.
        assert!(verdicts.iter().all(|v| v.mechanism == "protocol"));
        assert!(verdicts.iter().any(|v| v.detected));
        // A second drain is empty (the outbox moved out).
        let Response::Verdicts(rest) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };
        assert!(rest.is_empty());
    }

    #[test]
    fn service_verdicts_match_fleet_engine_verdicts() {
        // The resident service and the batch fleet engine must agree on
        // what a journey's verdict is — the service is a re-packaging of
        // the same mechanism API, not a different checker. Fleet host
        // keys come from a different pool assignment, but verdicts do
        // not depend on which (registered) key a host signs with.
        let seed = 11u64;
        let mut service = Service::new(ServeConfig::default());
        register(&mut service, "alice", seed, "single-tamperer", "protocol");
        for journey in 0..8u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };

        let fleet = refstate_fleet::run_fleet(&refstate_fleet::FleetConfig {
            scenarios: 8,
            workers: 2,
            seed,
            preset: Preset::SingleTamperer,
            mechanisms: vec![MechanismRegistry::builtin().get("protocol").unwrap()],
            key_pool: 8,
            ..refstate_fleet::FleetConfig::default()
        });
        for (verdict, result) in verdicts.iter().zip(&fleet.results) {
            assert_eq!(verdict.journey, result.id);
            let run = &result.runs[0];
            assert_eq!(
                verdict.detected, run.detected,
                "journey {}",
                verdict.journey
            );
            assert_eq!(
                verdict.completed, run.completed,
                "journey {}",
                verdict.journey
            );
        }
    }

    #[test]
    fn stats_track_admission_and_settlement() {
        let mut service = Service::new(ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        register(&mut service, "alice", 3, "all-honest", "protocol");
        for journey in 0..4u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        let overflow = service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 4,
        });
        assert!(matches!(
            overflow,
            Response::Rejected {
                reason: RejectReason::QueueFull,
                ..
            }
        ));
        let Response::Stats(before) = service.handle(Request::Stats {
            owner: "alice".into(),
        }) else {
            panic!("stats");
        };
        assert_eq!(before.accepted, 4);
        assert_eq!(before.rejected, 1);
        assert_eq!(before.pending, 4);
        assert_eq!(before.verified, 0);
        assert_eq!(before.queue_capacity, 4);

        service.handle(Request::Tick);
        let Response::Stats(after) = service.handle(Request::Stats {
            owner: "alice".into(),
        }) else {
            panic!("stats");
        };
        assert_eq!(after.verified, 4);
        assert_eq!(after.pending, 0);
        assert_eq!(after.undrained, 4);
        assert!(
            after.flush_verifications > 0,
            "protocol journeys defer signatures into the amortized flush"
        );
    }

    #[test]
    fn owners_are_isolated() {
        // Two owners with the same seed and preset produce identical
        // verdict streams — and neither sees the other's journeys.
        let mut service = Service::new(ServeConfig::default());
        register(&mut service, "alice", 5, "mixed", "protocol");
        register(&mut service, "bob", 5, "mixed", "protocol");
        for journey in 0..6u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            service.handle(Request::Submit {
                owner: "bob".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(alice) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        let Response::Verdicts(bob) = service.handle(Request::Drain {
            owner: "bob".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(alice.len(), 6);
        assert_eq!(bob.len(), 6);
        for (a, b) in alice.iter().zip(&bob) {
            assert_eq!(a.owner, "alice");
            assert_eq!(b.owner, "bob");
            assert_eq!(a.journey, b.journey);
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.accused, b.accused);
        }
    }

    #[test]
    fn incompatible_topology_is_an_infra_verdict_not_a_drop() {
        let mut service = Service::new(ServeConfig::default());
        // `replication` needs staged scenarios; `mixed` never stages.
        register(&mut service, "alice", 5, "mixed", "replication");
        service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 0,
        });
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].infra_error);
        assert!(!verdicts[0].detected);
    }

    #[test]
    fn replicated_preset_runs_replication_end_to_end() {
        let mut service = Service::new(ServeConfig::default());
        register(&mut service, "alice", 17, "replicated", "replication");
        for journey in 0..6u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.iter().all(|v| !v.infra_error));
        assert!(verdicts.iter().any(|v| v.detected));
    }
}
