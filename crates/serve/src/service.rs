//! The resident owner service: multi-tenant state, admission control,
//! and the amortized verification tick — sharded per owner so
//! independent tenants never contend.
//!
//! A [`Service`] is the paper's *agent owner* turned into a long-lived
//! endpoint. Tenants register a scenario universe (seed + preset +
//! mechanism), stream journey ids in, and read verdicts back out. The
//! service re-derives every journey from the registration — generation is
//! a pure function of `(seed, id, preset)`, exactly as in the fleet
//! engine — so no agent state crosses the wire and a service run is
//! reproducible from its per-owner request sequence alone.
//!
//! # Concurrency model
//!
//! [`Service::handle`] takes `&self`: the service is internally locked
//! and every transport (or background driver) may call it concurrently.
//! The locking is layered so that the common operations touch only the
//! state they need:
//!
//! * **routing** — the owner table is an `RwLock<Vec<Arc<OwnerShard>>>`;
//!   request dispatch takes a read lock just long enough to clone one
//!   `Arc`. Only registration writes it.
//! * **per-owner shards** — each owner's mutable state lives in its own
//!   `OwnerShard` behind three fine-grained locks: `ingress` (the
//!   bounded submit queue), `outbox` (settled verdicts awaiting drain),
//!   and `exec` (the tick-execution lock). Submits for different owners
//!   never share a lock, and a submit for owner A proceeds while owner
//!   B's batch is mid-settle.
//! * **the exec lock pins verdict order** — a tick drains an owner's
//!   ingress, runs the batch, and appends to the outbox all under that
//!   owner's `exec` lock, so concurrent tickers (several connections, the
//!   background driver, the shutdown drain) serialize *per owner* and the
//!   outbox always receives verdicts in admission order.
//! * **control plane** — registration serializes on a separate control
//!   lock (the master key directory); stats are lock-free atomics plus
//!   two queue-length peeks.
//!
//! # Determinism contract
//!
//! For a fixed registration and a fixed per-owner submission order, each
//! owner's verdict stream (the concatenation of its drained
//! [`VerdictReply`]s) is **byte-identical** across: settle worker counts,
//! check worker counts, how many connections submit or tick, which engine
//! fires the tick (client `Tick`/`TickOwners`, server tick driver, or
//! shutdown drain), tick pacing, and telemetry levels. The stream is
//! *not* a function of how journeys interleave **across** owners — only
//! per-owner order is pinned, which is exactly what per-owner locking
//! preserves.
//!
//! Three further design rules keep the service cheap:
//!
//! * **cross-journey amortization** — every admitted journey runs its
//!   host-side part, and each owner's outstanding owner-side work (final
//!   re-execution checks, deferred signature verifications) settles in
//!   *one* `settle_owner_batch` per owner per tick: one bulk
//!   `check_sessions_with` pass and one batch signature flush, instead of
//!   one of each per journey.
//! * **bounded admission** — each owner has a bounded ingress queue;
//!   submissions past the bound are refused with
//!   [`RejectReason::QueueFull`] instead of queuing unboundedly, and a
//!   draining service refuses everything new while still settling every
//!   journey it already accepted.
//! * **bounded history** — the per-owner event log is cleared at the
//!   start of each tick (verdicts never read prior ticks' events), so a
//!   resident service does not accumulate timeline state forever.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::{ReplayCache, VerificationPipeline};
use refstate_crypto::{DsaKeyPair, DsaParams, KeyDirectory};
use refstate_fleet::scenario::{self, Preset};
use refstate_mechanisms::api::{
    settle_owner_batch, JourneyVerdict, MechanismConfig, MechanismRegistry, PendingOwnerJourney,
    ProtectionMechanism, SplitVerdict,
};
use refstate_mechanisms::JourneyCtx;
use refstate_platform::{EventLog, Host};
use refstate_store::{LogStore, StateStore};
use refstate_telemetry as telemetry;

use crate::proto::{
    OwnerStats, RegisterOwner, RejectReason, Request, Response, StreamCheckpoint, VerdictReply,
};

/// Service-wide configuration (tenant-independent).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed of the service's DSA key pool (tenant host keys are drawn
    /// from the pool deterministically by owner seed and host name).
    pub seed: u64,
    /// Size of the pre-generated key pool.
    pub key_pool: usize,
    /// Per-owner ingress bound; submissions past it are rejected.
    pub queue_capacity: usize,
    /// Worker threads for the owner-side bulk session-check pass inside
    /// a tick (`0` = one per core). Verdict streams are invariant in this.
    pub check_workers: usize,
    /// Worker threads settling *independent owners* in parallel within
    /// one tick (`1` = sequential, `0` = one per core). Per-owner verdict
    /// streams are invariant in this: each owner's whole batch runs on
    /// one worker under its exec lock.
    pub settle_workers: usize,
    /// Share one sharded [`ReplayCache`] across every tenant's pipeline.
    pub replay_cache: bool,
    /// Durable-state directory. When set, the service opens (or creates)
    /// an append-only [`LogStore`] there and persists its registrations,
    /// key directory, replay cache, compile table, and per-owner verdict
    /// streams — a restart on the same directory warm-starts with its
    /// caches hot and its streams checkpointed. `None` keeps everything
    /// in memory.
    pub state_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            key_pool: 32,
            queue_capacity: 64,
            check_workers: 1,
            settle_workers: 1,
            replay_cache: true,
            state_dir: None,
        }
    }
}

/// Store namespaces the service persists under (see [`StateStore`]).
/// `meta` pins the service seed, `compile` holds VM program images,
/// `keydir` the master key directory, `owners` the registration records
/// (keyed by big-endian registration index, so scan order is
/// registration order), `checkpoint` each owner's stream position, and
/// `replay` the replay-cache write-through log. Each owner's verdict
/// lines append under `stream/<owner>`.
const NS_META: &str = "meta";
const NS_COMPILE: &str = "compile";
const NS_KEYDIR: &str = "keydir";
const NS_OWNERS: &str = "owners";
const NS_CHECKPOINT: &str = "checkpoint";
const NS_REPLAY: &str = "replay";

fn stream_ns(owner: &str) -> String {
    format!("stream/{owner}")
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash — the same fold the soak
/// driver's `stream_digest` uses, so a server-side stream checkpoint is
/// directly comparable to a client-side stream artifact digest.
fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One owner's durable verdict-stream position: how many verdicts have
/// been appended and the running FNV-1a digest over their lines. Updated
/// under the owner's exec lock; checkpointed to the store per tick.
#[derive(Clone, Copy)]
struct StreamState {
    offset: u64,
    digest: u64,
}

impl Default for StreamState {
    fn default() -> Self {
        StreamState {
            offset: 0,
            digest: FNV_BASIS,
        }
    }
}

fn encode_checkpoint(state: StreamState) -> Vec<u8> {
    let mut w = refstate_wire::Writer::new();
    w.put_u64(state.offset);
    w.put_u64(state.digest);
    w.into_inner()
}

fn decode_checkpoint(bytes: &[u8]) -> Result<StreamState, refstate_wire::WireError> {
    let mut r = refstate_wire::Reader::new(bytes);
    let offset = r.take_u64()?;
    let digest = r.take_u64()?;
    r.finish()?;
    Ok(StreamState { offset, digest })
}

/// Every host name a generated scenario can mention: linear routes up to
/// 25 hops (`h0..h24`), the replicated middle stages' replicas
/// (`h1r1..h5r2`), and the cooperating presets' off-route witnesses
/// (`v0..v3`). Registered per owner at registration time so the owner's
/// namespaced directory view covers any journey it can submit.
fn host_universe() -> Vec<String> {
    let mut names: Vec<String> = (0..25).map(|i| format!("h{i}")).collect();
    for stage in 1..=5 {
        for replica in 1..=2 {
            names.push(format!("h{stage}r{replica}"));
        }
    }
    for witness in 0..4 {
        names.push(format!("v{witness}"));
    }
    names
}

/// Deterministic pool index for `name` under `owner_seed` (FNV-1a over
/// the name, finalized through the scenario seed mixer).
fn key_index(owner_seed: u64, name: &str, pool: usize) -> usize {
    let hash = fnv_fold(FNV_BASIS, name.as_bytes());
    (scenario::scenario_seed(owner_seed, hash) % pool as u64) as usize
}

/// One tenant's resident state: immutable registration-derived fields
/// plus three fine-grained locks and lock-free counters. See the module
/// docs for the locking discipline.
pub(crate) struct OwnerShard {
    pub(crate) name: String,
    /// Registration index, used for per-owner indexed telemetry.
    index: u32,
    seed: u64,
    preset: Preset,
    mechanism: Arc<dyn ProtectionMechanism>,
    /// The owner's namespaced view of the service key directory, warmed
    /// at registration; every journey of this owner shares it (no
    /// per-journey directory builds or clones).
    directory: KeyDirectory,
    /// The owner's verification pipeline (replay cache shared
    /// service-wide when enabled; hit/miss counters are per owner).
    pipeline: Arc<VerificationPipeline>,
    log: EventLog,
    config: MechanismConfig,
    /// Admitted journeys awaiting the next tick, in admission order.
    /// Locked only for brief push/drain/peek sections.
    pub(crate) ingress: Mutex<VecDeque<(u64, Instant)>>,
    /// The tick-execution lock: held across drain → run → settle →
    /// outbox-append, so concurrent tickers serialize per owner and the
    /// outbox receives verdicts in admission order.
    exec: Mutex<()>,
    /// Settled verdicts awaiting a drain, in admission order.
    outbox: Mutex<Vec<VerdictReply>>,
    /// The owner's durable stream position (offset + digest), restored
    /// from the store on a warm start. Only touched under `exec` (plus
    /// brief read locks from stats/stream-state queries).
    stream: Mutex<StreamState>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    verified: AtomicU64,
    detected: AtomicU64,
    final_checks: AtomicU64,
    flush_verifications: AtomicU64,
    flush_failures: AtomicU64,
}

impl OwnerShard {
    /// Queue length and age of the oldest queued journey, for the tick
    /// driver's batching policy. One brief ingress lock.
    pub(crate) fn queue_depth_and_age(&self) -> (usize, Option<std::time::Duration>) {
        let ingress = self.ingress.lock().expect("ingress lock");
        (
            ingress.len(),
            ingress.front().map(|(_, queued_at)| queued_at.elapsed()),
        )
    }
}

/// The resident multi-tenant verification service.
///
/// Internally locked: [`Service::handle`] takes `&self` and may be called
/// from any number of threads — transports share the service behind a
/// plain `Arc`. Verification runs wherever a tick fires (a client `Tick`
/// / `TickOwners`, the background tick driver, or the shutdown drain);
/// per-owner verdict order is pinned regardless (see the module docs).
///
/// # Examples
///
/// ```
/// use refstate_serve::{Request, Response, RegisterOwner, Service, ServeConfig};
///
/// let service = Service::new(ServeConfig::default());
/// let reply = service.handle(Request::Register(RegisterOwner {
///     owner: "alice".into(),
///     seed: 7,
///     preset: "single-tamperer".into(),
///     mechanism: "protocol".into(),
/// }));
/// assert_eq!(reply, Response::Registered { owner: "alice".into() });
/// service.handle(Request::Submit { owner: "alice".into(), journey: 0 });
/// service.handle(Request::Tick);
/// let Response::Verdicts(verdicts) = service.handle(Request::Drain { owner: "alice".into() })
/// else { panic!("drain returns verdicts") };
/// assert_eq!(verdicts.len(), 1);
/// ```
pub struct Service {
    config: ServeConfig,
    params_pool: Vec<DsaKeyPair>,
    /// Control lock: the master key directory, held across a whole
    /// registration (the only mutation path).
    master: Mutex<KeyDirectory>,
    cache: Option<Arc<ReplayCache>>,
    registry: MechanismRegistry,
    /// The routing layer: reads clone one `Arc`, only registration
    /// writes.
    owners: RwLock<Vec<Arc<OwnerShard>>>,
    shutting_down: AtomicBool,
    /// The durable backend, when `state_dir` is configured.
    store: Option<Arc<dyn StateStore>>,
}

impl Service {
    /// Builds a service: generates and pre-warms the key pool.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.key_pool > 0, "key pool must be non-empty");
        let _span = telemetry::span("serve.start", "serve");
        let params = DsaParams::test_group_256();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e12_ce00_0a11_ce5e);
        let params_pool: Vec<DsaKeyPair> = (0..config.key_pool)
            .map(|_| DsaKeyPair::generate(&params, &mut rng))
            .collect();
        for key in &params_pool {
            key.public().precompute();
        }
        let store: Option<Arc<dyn StateStore>> = config.state_dir.as_ref().map(|dir| {
            let store = LogStore::open(dir)
                .unwrap_or_else(|e| panic!("cannot open state dir {}: {e}", dir.display()));
            Arc::new(store) as Arc<dyn StateStore>
        });
        if let Some(store) = &store {
            // Pin the seed: every persisted record (keys, streams, replay
            // memos) is a function of it, so reopening under a different
            // seed would silently mix two incompatible histories.
            match store.get(NS_META, b"seed").expect("state dir meta read") {
                Some(bytes) => {
                    let persisted = bytes
                        .try_into()
                        .map(u64::from_le_bytes)
                        .unwrap_or_else(|_| panic!("state dir corrupt: malformed seed record"));
                    assert_eq!(
                        persisted, config.seed,
                        "state dir was created with seed {persisted}, not {}",
                        config.seed
                    );
                }
                None => store
                    .put(NS_META, b"seed", &config.seed.to_le_bytes())
                    .expect("state dir meta write"),
            }
            // Warm the VM compile table from the persisted program images.
            for (key, image) in store.scan(NS_COMPILE).expect("state dir compile scan") {
                let hash = refstate_vm::warm_compile_cache(&image)
                    .unwrap_or_else(|e| panic!("state dir corrupt: compile image: {e}"));
                assert_eq!(
                    key,
                    hash.to_le_bytes(),
                    "state dir corrupt: compile image keyed under the wrong hash"
                );
            }
        }
        let cache = if config.replay_cache {
            Some(Arc::new(match &store {
                Some(store) => ReplayCache::persistent(
                    ReplayCache::DEFAULT_CAPACITY,
                    Arc::clone(store),
                    NS_REPLAY,
                )
                .unwrap_or_else(|e| panic!("state dir corrupt: replay cache: {e}")),
                None => ReplayCache::new(),
            }))
        } else {
            None
        };
        let master = match &store {
            Some(store) => KeyDirectory::load_from(store.as_ref(), NS_KEYDIR)
                .unwrap_or_else(|e| panic!("state dir corrupt: key directory: {e}")),
            None => KeyDirectory::new(),
        };
        let service = Service {
            config,
            params_pool,
            master: Mutex::new(master),
            cache,
            registry: MechanismRegistry::builtin(),
            owners: RwLock::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            store,
        };
        // Re-install every persisted registration, in registration order
        // (the `owners` namespace is keyed by big-endian index).
        let restored: Vec<RegisterOwner> = match &service.store {
            Some(store) => store
                .scan(NS_OWNERS)
                .expect("state dir owners scan")
                .into_iter()
                .map(|(_, value)| {
                    refstate_wire::from_wire(&value)
                        .unwrap_or_else(|e| panic!("state dir corrupt: owner record: {e}"))
                })
                .collect(),
            None => Vec::new(),
        };
        for registration in restored {
            let owner = registration.owner.clone();
            let reply = service.install_owner(registration, true);
            assert!(
                matches!(reply, Response::Registered { .. }),
                "state dir corrupt: restoring owner {owner}: {reply:?}"
            );
        }
        service
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Registered owner names, in registration order.
    pub fn owner_names(&self) -> Vec<String> {
        self.owners
            .read()
            .expect("owner table lock")
            .iter()
            .map(|o| o.name.clone())
            .collect()
    }

    /// Snapshot of the owner shards (one `Arc` clone each), for tick
    /// drivers and the shutdown drain.
    pub(crate) fn shards(&self) -> Vec<Arc<OwnerShard>> {
        self.owners.read().expect("owner table lock").clone()
    }

    fn shard(&self, name: &str) -> Option<Arc<OwnerShard>> {
        self.owners
            .read()
            .expect("owner table lock")
            .iter()
            .find(|o| o.name == name)
            .cloned()
    }

    /// Handles one request; every transport funnels through here.
    /// Safe to call concurrently — see the module docs for what each
    /// request contends on.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Register(registration) => self.register(registration),
            Request::Submit { owner, journey } => self.submit(owner, journey),
            Request::Tick => Response::Ticked {
                settled: self.tick(),
            },
            Request::TickOwners(names) => self.tick_named(names),
            Request::Drain { owner } => self.drain(owner),
            Request::Stats { owner } => self.stats(owner),
            Request::Shutdown => self.shutdown(),
            Request::StreamState => self.stream_state(),
        }
    }

    fn register(&self, registration: RegisterOwner) -> Response {
        self.install_owner(registration, false)
    }

    /// Installs one owner shard. `restore = false` is a client
    /// registration: the host keys are registered into the master
    /// directory and (with a store) the registration, key-directory
    /// delta, and an empty stream position are persisted. `restore =
    /// true` replays a persisted registration on open: the master
    /// directory and stream position come from the store instead.
    fn install_owner(&self, registration: RegisterOwner, restore: bool) -> Response {
        let RegisterOwner {
            owner,
            seed,
            preset,
            mechanism,
        } = registration;
        let reject = |reason| Response::Rejected {
            owner: owner.clone(),
            journey: 0,
            reason,
        };
        if self.is_shutting_down() {
            return reject(RejectReason::ShuttingDown);
        }
        if owner.is_empty() || owner.contains('/') {
            return Response::Error {
                message: format!("invalid owner name {owner:?} (non-empty, no '/')"),
            };
        }
        let (preset_name, mechanism_name) = (preset, mechanism);
        let Some(preset) = Preset::parse(&preset_name) else {
            return reject(RejectReason::UnknownPreset);
        };
        let Some(mechanism) = self.registry.get(&mechanism_name) else {
            return reject(RejectReason::UnknownMechanism);
        };

        // The control lock serializes registrations end to end, so the
        // duplicate check and the table push are atomic with respect to
        // other registrations.
        let mut master = self.master.lock().expect("control lock");
        if self.shard(&owner).is_some() {
            return reject(RejectReason::DuplicateOwner);
        }

        // The owner's PKI: every host name its generator can produce,
        // keyed deterministically from the pool, registered under the
        // owner's namespace and handed back as a view. The view is built
        // once and shared by every journey — no per-journey clones — and
        // warmed here so no first verification pays a table build. On a
        // warm restart the master directory was already loaded from the
        // store, so a restored owner skips straight to the view.
        if !restore {
            for name in host_universe() {
                let key = &self.params_pool[key_index(seed, &name, self.params_pool.len())];
                master.register(format!("{owner}/{name}"), key.public().clone());
            }
            if let Some(store) = &self.store {
                master
                    .persist_to(store.as_ref(), NS_KEYDIR)
                    .expect("state dir keydir write");
            }
        }
        let directory = master.namespaced(&owner);
        directory.warm();

        // The owner's durable stream position: zero on a fresh
        // registration, replayed (and verified against the last
        // checkpoint) on restore.
        let stream = if restore {
            let store = self.store.as_ref().expect("restore implies a store");
            let lines = store
                .appended(&stream_ns(&owner))
                .expect("state dir stream read");
            let checkpoint = store
                .get(NS_CHECKPOINT, owner.as_bytes())
                .expect("state dir checkpoint read")
                .map(|bytes| {
                    decode_checkpoint(&bytes)
                        .unwrap_or_else(|e| panic!("state dir corrupt: {owner} checkpoint: {e}"))
                });
            let mut state = StreamState::default();
            let mut digest_at_checkpoint =
                matches!(checkpoint, Some(c) if c.offset == 0).then_some(state.digest);
            for line in &lines {
                state.digest = fnv_fold(state.digest, line);
                state.digest = fnv_fold(state.digest, b"\n");
                state.offset += 1;
                if matches!(checkpoint, Some(c) if c.offset == state.offset) {
                    digest_at_checkpoint = Some(state.digest);
                }
            }
            if let Some(checkpoint) = checkpoint {
                // The stream may run past the checkpoint (a crash between
                // an append and its checkpoint put), never short of it.
                let digest = digest_at_checkpoint.unwrap_or_else(|| {
                    panic!(
                        "state dir corrupt: {owner} checkpoint offset {} beyond the {} appended verdicts",
                        checkpoint.offset, state.offset
                    )
                });
                assert_eq!(
                    digest, checkpoint.digest,
                    "state dir corrupt: {owner} stream digest diverges from its checkpoint at offset {}",
                    checkpoint.offset
                );
            }
            state
        } else {
            StreamState::default()
        };

        let pipeline = Arc::new(match &self.cache {
            Some(cache) => VerificationPipeline::with_cache(Arc::clone(cache)),
            None => VerificationPipeline::uncached(),
        });
        let config = MechanismConfig {
            check_workers: self.config.check_workers,
            ..MechanismConfig::default()
        };
        telemetry::count("serve.owner.registered", 1);
        let mut owners = self.owners.write().expect("owner table lock");
        let index = owners.len() as u32;
        if !restore {
            if let Some(store) = &self.store {
                let record = RegisterOwner {
                    owner: owner.clone(),
                    seed,
                    preset: preset_name,
                    mechanism: mechanism_name,
                };
                store
                    .put(
                        NS_OWNERS,
                        &index.to_be_bytes(),
                        &refstate_wire::to_wire(&record),
                    )
                    .expect("state dir owner write");
            }
        }
        owners.push(Arc::new(OwnerShard {
            name: owner.clone(),
            index,
            seed,
            preset,
            mechanism,
            directory,
            pipeline,
            log: EventLog::new(),
            config,
            ingress: Mutex::new(VecDeque::new()),
            exec: Mutex::new(()),
            outbox: Mutex::new(Vec::new()),
            stream: Mutex::new(stream),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            final_checks: AtomicU64::new(0),
            flush_verifications: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
        }));
        Response::Registered { owner }
    }

    fn submit(&self, owner: String, journey: u64) -> Response {
        let Some(shard) = self.shard(&owner) else {
            return Response::Rejected {
                owner,
                journey,
                reason: RejectReason::UnknownOwner,
            };
        };
        let reason = {
            // One brief ingress lock covers the shutdown check, the bound
            // check, and the push. The shutdown check must sit *inside*
            // the lock: checked before it, a submit could read "not
            // shutting down", lose the race with a shutdown drain, and
            // push a journey nobody will ever settle. Inside the lock,
            // any push that beats the drain's first ingress peek is seen
            // and settled by it, and any push after the flag is visible
            // is refused — either way the drain invariant holds.
            let mut ingress = shard.ingress.lock().expect("ingress lock");
            if self.is_shutting_down() {
                Some(RejectReason::ShuttingDown)
            } else if ingress.len() >= self.config.queue_capacity {
                Some(RejectReason::QueueFull)
            } else {
                ingress.push_back((journey, Instant::now()));
                None
            }
        };
        if let Some(reason) = reason {
            shard.rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::count_indexed("serve.owner.rejected", shard.index, 1);
            return Response::Rejected {
                owner,
                journey,
                reason,
            };
        }
        shard.accepted.fetch_add(1, Ordering::Relaxed);
        telemetry::count_indexed("serve.owner.accepted", shard.index, 1);
        Response::Accepted { owner, journey }
    }

    /// Runs one service tick over every owner: each admitted journey
    /// executes its host-side part, then each owner's outstanding
    /// owner-side work settles in one amortized batch. Returns the number
    /// of verdicts produced. Independent owners settle in parallel when
    /// `settle_workers > 1`.
    pub fn tick(&self) -> u64 {
        let shards = self.shards();
        self.tick_shards(&shards)
    }

    fn tick_named(&self, names: Vec<String>) -> Response {
        let mut shards = Vec::with_capacity(names.len());
        for name in names {
            match self.shard(&name) {
                Some(shard) => shards.push(shard),
                None => {
                    return Response::Rejected {
                        owner: name,
                        journey: 0,
                        reason: RejectReason::UnknownOwner,
                    }
                }
            }
        }
        Response::Ticked {
            settled: self.tick_shards(&shards),
        }
    }

    /// Ticks the given shards, farming independent owners out to
    /// `settle_workers` threads. Per-owner verdict order is pinned by
    /// each shard's exec lock regardless of the worker count.
    pub(crate) fn tick_shards(&self, shards: &[Arc<OwnerShard>]) -> u64 {
        let _span = telemetry::span("serve.tick", "serve");
        let workers = match self.config.settle_workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(shards.len())
        .max(1);

        let settled_total = if workers <= 1 {
            shards.iter().map(|shard| self.tick_shard(shard)).sum()
        } else {
            let next = AtomicUsize::new(0);
            let settled = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(i) else { break };
                        settled.fetch_add(self.tick_shard(shard), Ordering::Relaxed);
                    });
                }
            });
            settled.into_inner()
        };
        telemetry::count("serve.tick.verdicts", settled_total);
        settled_total
    }

    fn tick_shard(&self, shard: &OwnerShard) -> u64 {
        // The exec lock is held across drain → run → settle → append:
        // concurrent tickers serialize here, per owner, which is what
        // pins the outbox to admission order.
        let _exec = shard.exec.lock().expect("exec lock");
        let jobs: Vec<(u64, Instant)> = {
            let mut ingress = shard.ingress.lock().expect("ingress lock");
            ingress.drain(..).collect()
        };
        if jobs.is_empty() {
            return 0;
        }
        // Verdicts never read prior ticks' events; clearing bounds the
        // resident log instead of letting it grow for the process
        // lifetime.
        shard.log.clear();

        // Verdict slots in admission order: settled-inline journeys fill
        // theirs immediately, deferred ones after the amortized batch, so
        // the outbox order never depends on which path a journey took.
        let mut slots: Vec<Option<VerdictReply>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let mut pendings: Vec<PendingOwnerJourney> = Vec::new();
        let mut pending_slots: Vec<usize> = Vec::new();

        for (slot, (journey, queued_at)) in jobs.iter().enumerate() {
            let (journey, queued_at) = (*journey, *queued_at);
            telemetry::observe(
                "serve.queue_wait_us",
                queued_at.elapsed().as_micros() as u64,
            );
            let generated = scenario::generate(shard.seed, journey, shard.preset);
            let has_spares = generated
                .specs
                .iter()
                .any(|spec| !generated.route.contains(&spec.id));
            let compatible = shard
                .mechanism
                .profile()
                .compatible_with(generated.stages.is_some(), has_spares);
            if !compatible {
                // A topology mismatch (e.g. `replication` on a linear
                // preset) is the owner's registration error, surfaced as
                // an infrastructure verdict rather than a dropped journey.
                slots[slot] = Some(verdict_reply(
                    shard.name.clone(),
                    journey,
                    shard.mechanism.name(),
                    &JourneyVerdict::clean(false),
                ));
                continue;
            }
            let mut hosts: Vec<Host> = generated
                .specs
                .iter()
                .enumerate()
                .map(|(pos, spec)| {
                    let key = self.params_pool
                        [key_index(shard.seed, spec.id.as_str(), self.params_pool.len())]
                    .clone();
                    let session_seed =
                        scenario::scenario_seed(shard.seed, journey ^ ((pos as u64 + 1) << 48));
                    Host::with_keys(spec.clone(), key, session_seed)
                })
                .collect();
            let ctx_seed = scenario::scenario_seed(shard.seed, journey ^ (1u64 << 63));
            let _scope = telemetry::scoped(shard.mechanism.name());
            let mut ctx = JourneyCtx::new(
                &mut hosts,
                generated.route.clone(),
                generated.agent.clone(),
                &shard.directory,
                &shard.config,
                &shard.log,
                ctx_seed,
            )
            .with_pipeline(shard.pipeline.clone());
            if let Some(stages) = &generated.stages {
                ctx = ctx.with_stages(stages.clone());
            }
            match shard.mechanism.run_split(&mut ctx) {
                SplitVerdict::Settled(verdict) => {
                    slots[slot] = Some(verdict_reply(
                        shard.name.clone(),
                        journey,
                        shard.mechanism.name(),
                        &verdict,
                    ));
                }
                SplitVerdict::Pending(pending) => {
                    pendings.push(*pending);
                    pending_slots.push(slot);
                }
            }
        }

        // The amortized owner-side pass: one bulk session-check plus one
        // signature flush for everything this owner deferred this tick.
        if !pendings.is_empty() {
            let journeys: Vec<u64> = pending_slots.iter().map(|&s| jobs[s].0).collect();
            let _scope = telemetry::scoped(shard.mechanism.name());
            let (verdicts, stats) = settle_owner_batch(
                pendings,
                &shard.config,
                &shard.pipeline,
                &shard.log,
                &shard.directory,
                self.config.check_workers,
            );
            for ((slot, journey), verdict) in pending_slots.into_iter().zip(journeys).zip(verdicts)
            {
                slots[slot] = Some(verdict_reply(
                    shard.name.clone(),
                    journey,
                    shard.mechanism.name(),
                    &verdict,
                ));
            }
            shard
                .final_checks
                .fetch_add(stats.final_checks as u64, Ordering::Relaxed);
            shard
                .flush_verifications
                .fetch_add(stats.flush_verifications as u64, Ordering::Relaxed);
            shard.flush_failures.fetch_add(
                (stats.flush_failures + stats.unattributed_failures) as u64,
                Ordering::Relaxed,
            );
        }

        let replies: Vec<VerdictReply> = slots
            .into_iter()
            .map(|slot| slot.expect("every admitted journey settles in its tick"))
            .collect();

        // Persist the batch to the owner's durable stream (still under
        // the exec lock, so the store's append order is the verdict
        // order) and advance the offset/digest checkpoint. Appends land
        // before the checkpoint put: a crash in between leaves the
        // stream ahead of its checkpoint, which replay-on-open accepts.
        {
            let mut stream = shard.stream.lock().expect("stream lock");
            let ns = self.store.as_ref().map(|_| stream_ns(&shard.name));
            for reply in &replies {
                let line = reply.stream_line();
                if let (Some(store), Some(ns)) = (&self.store, &ns) {
                    store
                        .append(ns, line.as_bytes())
                        .expect("state dir stream append");
                }
                stream.digest = fnv_fold(stream.digest, line.as_bytes());
                stream.digest = fnv_fold(stream.digest, b"\n");
                stream.offset += 1;
            }
            if let Some(store) = &self.store {
                store
                    .put(
                        NS_CHECKPOINT,
                        shard.name.as_bytes(),
                        &encode_checkpoint(*stream),
                    )
                    .expect("state dir checkpoint write");
            }
        }

        let settled = replies.len() as u64;
        let mut outbox = shard.outbox.lock().expect("outbox lock");
        for reply in replies {
            shard.verified.fetch_add(1, Ordering::Relaxed);
            if reply.detected {
                shard.detected.fetch_add(1, Ordering::Relaxed);
            }
            outbox.push(reply);
        }
        drop(outbox);
        telemetry::count_indexed("serve.owner.verified", shard.index, settled);
        settled
    }

    fn drain(&self, owner: String) -> Response {
        let Some(shard) = self.shard(&owner) else {
            return Response::Rejected {
                owner,
                journey: 0,
                reason: RejectReason::UnknownOwner,
            };
        };
        let verdicts = std::mem::take(&mut *shard.outbox.lock().expect("outbox lock"));
        Response::Verdicts(verdicts)
    }

    fn stats(&self, owner: String) -> Response {
        let Some(shard) = self.shard(&owner) else {
            return Response::Rejected {
                owner,
                journey: 0,
                reason: RejectReason::UnknownOwner,
            };
        };
        let replay = shard.pipeline.snapshot();
        let pending = shard.ingress.lock().expect("ingress lock").len() as u64;
        let undrained = shard.outbox.lock().expect("outbox lock").len() as u64;
        let stream_offset = shard.stream.lock().expect("stream lock").offset;
        Response::Stats(OwnerStats {
            owner,
            accepted: shard.accepted.load(Ordering::Relaxed),
            rejected: shard.rejected.load(Ordering::Relaxed),
            verified: shard.verified.load(Ordering::Relaxed),
            detected: shard.detected.load(Ordering::Relaxed),
            pending,
            undrained,
            queue_capacity: self.config.queue_capacity as u64,
            final_checks: shard.final_checks.load(Ordering::Relaxed),
            flush_verifications: shard.flush_verifications.load(Ordering::Relaxed),
            flush_failures: shard.flush_failures.load(Ordering::Relaxed),
            cache_hits: replay.hits,
            cache_misses: replay.misses,
            stream_offset,
        })
    }

    /// Every owner's durable stream position, in registration order,
    /// plus the store's open-generation stamp (0 without a state dir).
    fn stream_state(&self) -> Response {
        let generation = self.store.as_ref().map_or(0, |store| store.generation());
        let owners = self
            .shards()
            .iter()
            .map(|shard| {
                let stream = shard.stream.lock().expect("stream lock");
                StreamCheckpoint {
                    owner: shard.name.clone(),
                    offset: stream.offset,
                    digest: format!("{:016x}", stream.digest),
                }
            })
            .collect();
        Response::StreamState { generation, owners }
    }

    /// Stops admitting work and settles every accepted journey. The
    /// outboxes stay drainable afterwards, so no accepted journey's
    /// verdict is ever dropped. Safe to race with a running tick driver:
    /// whoever wins an owner's exec lock settles that owner's batch.
    fn shutdown(&self) -> Response {
        self.shutting_down.store(true, Ordering::SeqCst);
        let shards = self.shards();
        let mut settled = 0u64;
        loop {
            // Tick unconditionally — the shutdown drain ignores the tick
            // driver's batch-min/max-age eligibility, so a shard with one
            // young queued journey still settles instead of waiting for a
            // policy that will never fire again.
            settled += self.tick_shards(&shards);
            // A concurrent ticker (the background driver, another
            // connection) may have drained an ingress queue and still be
            // mid-settle, its verdicts not yet in any outbox. Taking each
            // exec lock once fences those in-flight ticks: afterwards,
            // every journey any ticker drained has reached its outbox.
            for shard in &shards {
                drop(shard.exec.lock().expect("exec lock"));
            }
            if shards
                .iter()
                .all(|s| s.ingress.lock().expect("ingress lock").is_empty())
            {
                break;
            }
        }
        // Settle the durable state: persist the VM compile table (so a
        // restart re-compiles nothing) and flush everything to disk.
        if let Some(store) = &self.store {
            for (hash, image) in refstate_vm::cached_program_images() {
                store
                    .put(NS_COMPILE, &hash.to_le_bytes(), &image)
                    .expect("state dir compile write");
            }
            store.sync().expect("state dir sync");
        }
        Response::ShuttingDown { settled }
    }
}

fn verdict_reply(
    owner: String,
    journey: u64,
    mechanism: &str,
    verdict: &JourneyVerdict,
) -> VerdictReply {
    VerdictReply {
        owner,
        journey,
        mechanism: mechanism.to_owned(),
        detected: verdict.detected,
        accused: verdict
            .accused
            .iter()
            .map(|h| h.as_str().to_owned())
            .collect(),
        completed: verdict.completed,
        infra_error: verdict.infra_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(service: &Service, owner: &str, seed: u64, preset: &str, mechanism: &str) {
        let reply = service.handle(Request::Register(RegisterOwner {
            owner: owner.into(),
            seed,
            preset: preset.into(),
            mechanism: mechanism.into(),
        }));
        assert_eq!(
            reply,
            Response::Registered {
                owner: owner.into()
            }
        );
    }

    #[test]
    fn register_validates_preset_mechanism_and_duplicates() {
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", 1, "mixed", "protocol");
        let duplicate = service.handle(Request::Register(RegisterOwner {
            owner: "alice".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(
            duplicate,
            Response::Rejected {
                reason: RejectReason::DuplicateOwner,
                ..
            }
        ));
        let bad_preset = service.handle(Request::Register(RegisterOwner {
            owner: "bob".into(),
            seed: 2,
            preset: "wat".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(
            bad_preset,
            Response::Rejected {
                reason: RejectReason::UnknownPreset,
                ..
            }
        ));
        let bad_mechanism = service.handle(Request::Register(RegisterOwner {
            owner: "bob".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "wat".into(),
        }));
        assert!(matches!(
            bad_mechanism,
            Response::Rejected {
                reason: RejectReason::UnknownMechanism,
                ..
            }
        ));
        let bad_name = service.handle(Request::Register(RegisterOwner {
            owner: "a/b".into(),
            seed: 2,
            preset: "mixed".into(),
            mechanism: "protocol".into(),
        }));
        assert!(matches!(bad_name, Response::Error { .. }));
    }

    #[test]
    fn submit_to_unknown_owner_is_rejected() {
        let service = Service::new(ServeConfig::default());
        let reply = service.handle(Request::Submit {
            owner: "ghost".into(),
            journey: 0,
        });
        assert!(matches!(
            reply,
            Response::Rejected {
                reason: RejectReason::UnknownOwner,
                ..
            }
        ));
    }

    #[test]
    fn tick_settles_submitted_journeys_in_admission_order() {
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", 7, "single-tamperer", "protocol");
        for journey in [3u64, 0, 5] {
            let reply = service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            assert!(matches!(reply, Response::Accepted { .. }));
        }
        assert_eq!(
            service.handle(Request::Tick),
            Response::Ticked { settled: 3 }
        );
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };
        assert_eq!(
            verdicts.iter().map(|v| v.journey).collect::<Vec<_>>(),
            vec![3, 0, 5],
            "outbox preserves admission order"
        );
        // Single-tamperer scenarios under the protocol mechanism detect.
        assert!(verdicts.iter().all(|v| v.mechanism == "protocol"));
        assert!(verdicts.iter().any(|v| v.detected));
        // A second drain is empty (the outbox moved out).
        let Response::Verdicts(rest) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };
        assert!(rest.is_empty());
    }

    #[test]
    fn tick_owners_ticks_only_the_named_owners() {
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", 7, "single-tamperer", "protocol");
        register(&service, "bob", 8, "single-tamperer", "protocol");
        for owner in ["alice", "bob"] {
            for journey in 0..3u64 {
                service.handle(Request::Submit {
                    owner: owner.into(),
                    journey,
                });
            }
        }
        // Tick alice alone: bob's queue is untouched.
        assert_eq!(
            service.handle(Request::TickOwners(vec!["alice".into()])),
            Response::Ticked { settled: 3 }
        );
        let Response::Stats(bob) = service.handle(Request::Stats {
            owner: "bob".into(),
        }) else {
            panic!("stats");
        };
        assert_eq!(bob.pending, 3);
        assert_eq!(bob.verified, 0);
        // An unknown name is rejected outright, before any tick runs.
        let reply = service.handle(Request::TickOwners(vec!["ghost".into()]));
        assert!(matches!(
            reply,
            Response::Rejected {
                reason: RejectReason::UnknownOwner,
                ..
            }
        ));
    }

    #[test]
    fn service_verdicts_match_fleet_engine_verdicts() {
        // The resident service and the batch fleet engine must agree on
        // what a journey's verdict is — the service is a re-packaging of
        // the same mechanism API, not a different checker. Fleet host
        // keys come from a different pool assignment, but verdicts do
        // not depend on which (registered) key a host signs with.
        let seed = 11u64;
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", seed, "single-tamperer", "protocol");
        for journey in 0..8u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain returns verdicts");
        };

        let fleet = refstate_fleet::run_fleet(&refstate_fleet::FleetConfig {
            scenarios: 8,
            workers: 2,
            seed,
            preset: Preset::SingleTamperer,
            mechanisms: vec![MechanismRegistry::builtin().get("protocol").unwrap()],
            key_pool: 8,
            ..refstate_fleet::FleetConfig::default()
        });
        for (verdict, result) in verdicts.iter().zip(&fleet.results) {
            assert_eq!(verdict.journey, result.id);
            let run = &result.runs[0];
            assert_eq!(
                verdict.detected, run.detected,
                "journey {}",
                verdict.journey
            );
            assert_eq!(
                verdict.completed, run.completed,
                "journey {}",
                verdict.journey
            );
        }
    }

    #[test]
    fn stats_track_admission_and_settlement() {
        let service = Service::new(ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        register(&service, "alice", 3, "all-honest", "protocol");
        for journey in 0..4u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        let overflow = service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 4,
        });
        assert!(matches!(
            overflow,
            Response::Rejected {
                reason: RejectReason::QueueFull,
                ..
            }
        ));
        let Response::Stats(before) = service.handle(Request::Stats {
            owner: "alice".into(),
        }) else {
            panic!("stats");
        };
        assert_eq!(before.accepted, 4);
        assert_eq!(before.rejected, 1);
        assert_eq!(before.pending, 4);
        assert_eq!(before.verified, 0);
        assert_eq!(before.queue_capacity, 4);

        service.handle(Request::Tick);
        let Response::Stats(after) = service.handle(Request::Stats {
            owner: "alice".into(),
        }) else {
            panic!("stats");
        };
        assert_eq!(after.verified, 4);
        assert_eq!(after.pending, 0);
        assert_eq!(after.undrained, 4);
        assert!(
            after.flush_verifications > 0,
            "protocol journeys defer signatures into the amortized flush"
        );
    }

    #[test]
    fn owners_are_isolated() {
        // Two owners with the same seed and preset produce identical
        // verdict streams — and neither sees the other's journeys.
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", 5, "mixed", "protocol");
        register(&service, "bob", 5, "mixed", "protocol");
        for journey in 0..6u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
            service.handle(Request::Submit {
                owner: "bob".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(alice) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        let Response::Verdicts(bob) = service.handle(Request::Drain {
            owner: "bob".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(alice.len(), 6);
        assert_eq!(bob.len(), 6);
        for (a, b) in alice.iter().zip(&bob) {
            assert_eq!(a.owner, "alice");
            assert_eq!(b.owner, "bob");
            assert_eq!(a.journey, b.journey);
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.accused, b.accused);
        }
    }

    #[test]
    fn parallel_settle_workers_preserve_per_owner_streams() {
        // The same four-owner workload, settled sequentially and with a
        // worker pool: per-owner verdict streams must be byte-identical.
        let run = |settle_workers: usize| -> Vec<Vec<String>> {
            let service = Service::new(ServeConfig {
                settle_workers,
                key_pool: 8,
                ..ServeConfig::default()
            });
            for (i, owner) in ["a", "b", "c", "d"].iter().enumerate() {
                register(&service, owner, 100 + i as u64, "mixed", "protocol");
            }
            for journey in 0..6u64 {
                for owner in ["a", "b", "c", "d"] {
                    service.handle(Request::Submit {
                        owner: owner.into(),
                        journey,
                    });
                }
            }
            service.handle(Request::Tick);
            ["a", "b", "c", "d"]
                .iter()
                .map(|owner| {
                    let Response::Verdicts(verdicts) = service.handle(Request::Drain {
                        owner: (*owner).into(),
                    }) else {
                        panic!("drain");
                    };
                    verdicts.iter().map(|v| v.stream_line()).collect()
                })
                .collect()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn incompatible_topology_is_an_infra_verdict_not_a_drop() {
        let service = Service::new(ServeConfig::default());
        // `replication` needs staged scenarios; `mixed` never stages.
        register(&service, "alice", 5, "mixed", "replication");
        service.handle(Request::Submit {
            owner: "alice".into(),
            journey: 0,
        });
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].infra_error);
        assert!(!verdicts[0].detected);
    }

    #[test]
    fn replicated_preset_runs_replication_end_to_end() {
        let service = Service::new(ServeConfig::default());
        register(&service, "alice", 17, "replicated", "replication");
        for journey in 0..6u64 {
            service.handle(Request::Submit {
                owner: "alice".into(),
                journey,
            });
        }
        service.handle(Request::Tick);
        let Response::Verdicts(verdicts) = service.handle(Request::Drain {
            owner: "alice".into(),
        }) else {
            panic!("drain");
        };
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.iter().all(|v| !v.infra_error));
        assert!(verdicts.iter().any(|v| v.detected));
    }
}
