//! Crash-path coverage for the on-disk backend: torn tails, CRC damage in
//! live and sealed segments, replay-on-open idempotence, rotation, and the
//! generation stamp.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use refstate_store::{LogStore, StateStore, StoreError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("refstate-store-{tag}-{}-{seq}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read state dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

fn populate(store: &LogStore) {
    for i in 0..20u32 {
        store
            .put("kv", &i.to_be_bytes(), format!("value-{i}").as_bytes())
            .unwrap();
        store
            .append("log", format!("record-{i}").as_bytes())
            .unwrap();
    }
    store.sync().unwrap();
}

#[test]
fn truncated_tail_record_recovers_the_prefix() {
    let dir = TempDir::new("torn");
    {
        let store = LogStore::open(dir.path()).unwrap();
        populate(&store);
    }
    // Chop mid-record: drop the last 3 bytes of the tail segment, leaving a
    // frame whose payload extends past end-of-file.
    let tail = segment_paths(dir.path()).pop().unwrap();
    let len = fs::metadata(&tail).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&tail)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let store = LogStore::open(dir.path()).unwrap();
    // The torn record was the last append ("record-19"); everything before
    // it must replay.
    let appended = store.appended("log").unwrap();
    assert_eq!(appended.len(), 19, "only the torn tail record may be lost");
    assert_eq!(appended[18], b"record-18".to_vec());
    assert_eq!(store.scan("kv").unwrap().len(), 20);
    // The truncated file must no longer hold the torn suffix.
    assert!(fs::metadata(&tail).unwrap().len() < len - 3 + 1);
}

#[test]
fn crc_mismatch_in_the_tail_segment_truncates_at_the_damage() {
    let dir = TempDir::new("crc-tail");
    {
        let store = LogStore::open(dir.path()).unwrap();
        populate(&store);
    }
    // Flip one payload byte 40 bytes before end-of-file: the record framing
    // still parses but its CRC no longer matches.
    let tail = segment_paths(dir.path()).pop().unwrap();
    let len = fs::metadata(&tail).unwrap().len();
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&tail)
        .unwrap();
    file.seek(SeekFrom::Start(len - 40)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0xff;
    file.seek(SeekFrom::Start(len - 40)).unwrap();
    file.write_all(&byte).unwrap();
    file.sync_all().unwrap();
    drop(file);

    let store = LogStore::open(dir.path()).unwrap();
    // Damage near the tail loses at most the damaged record and its
    // successors; the long prefix survives.
    let appended = store.appended("log").unwrap();
    assert!(
        appended.len() >= 17,
        "prefix lost: {} records",
        appended.len()
    );
    assert!(appended.len() < 20, "damaged record must not replay");
    for (i, record) in appended.iter().enumerate() {
        assert_eq!(record, format!("record-{i}").as_bytes());
    }
    // The file was truncated at the damage, so a further reopen is clean.
    drop(store);
    let reopened = LogStore::open(dir.path()).unwrap();
    assert_eq!(reopened.appended("log").unwrap(), appended);
}

#[test]
fn crc_mismatch_in_a_sealed_segment_is_a_hard_error() {
    let dir = TempDir::new("crc-sealed");
    {
        // Tiny rotation threshold: 20 puts + 20 appends span many segments.
        let store = LogStore::open_with_segment_bytes(dir.path(), 128).unwrap();
        populate(&store);
    }
    let segs = segment_paths(dir.path());
    assert!(segs.len() >= 3, "rotation produced {} segments", segs.len());
    // Corrupt a payload byte in the middle of the FIRST (sealed) segment.
    let sealed = &segs[0];
    let len = fs::metadata(sealed).unwrap().len();
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(sealed)
        .unwrap();
    file.seek(SeekFrom::Start(len / 2)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0xff;
    file.seek(SeekFrom::Start(len / 2)).unwrap();
    file.write_all(&byte).unwrap();
    file.sync_all().unwrap();
    drop(file);

    match LogStore::open(dir.path()) {
        Err(StoreError::Corrupt { segment, .. }) => {
            assert_eq!(segment, sealed.file_name().unwrap().to_string_lossy());
        }
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("open must refuse a corrupt sealed segment"),
    }
}

#[test]
fn replay_on_open_is_idempotent() {
    let dir = TempDir::new("idem");
    {
        let store = LogStore::open(dir.path()).unwrap();
        populate(&store);
    }
    let (scan1, log1) = {
        let store = LogStore::open(dir.path()).unwrap();
        store.append("log", b"extra").unwrap();
        store.sync().unwrap();
        (store.scan("kv").unwrap(), store.appended("log").unwrap())
    };
    // open → append → reopen → identical scan (plus the one new record).
    let store = LogStore::open(dir.path()).unwrap();
    assert_eq!(store.scan("kv").unwrap(), scan1);
    assert_eq!(store.appended("log").unwrap(), log1);
    assert_eq!(log1.last().unwrap(), b"extra");
    drop(store);
    // A third open with no writes in between changes nothing but generation.
    let store = LogStore::open(dir.path()).unwrap();
    assert_eq!(store.scan("kv").unwrap(), scan1);
    assert_eq!(store.appended("log").unwrap(), log1);
}

#[test]
fn generation_counts_durable_opens() {
    let dir = TempDir::new("gen");
    for expected in 1..=4u64 {
        let store = LogStore::open(dir.path()).unwrap();
        assert_eq!(store.generation(), expected);
    }
}

#[test]
fn rotation_spreads_records_over_segments_and_replays_them_all() {
    let dir = TempDir::new("rotate");
    {
        let store = LogStore::open_with_segment_bytes(dir.path(), 256).unwrap();
        for i in 0..100u32 {
            store.append("log", format!("r{i}").as_bytes()).unwrap();
        }
        store.put("kv", b"k", b"v").unwrap();
        store.sync().unwrap();
    }
    assert!(segment_paths(dir.path()).len() > 1, "expected rotation");
    let store = LogStore::open(dir.path()).unwrap();
    let appended = store.appended("log").unwrap();
    assert_eq!(appended.len(), 100);
    assert_eq!(appended[99], b"r99");
    assert_eq!(store.get("kv", b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn oversized_records_are_rejected_up_front() {
    let dir = TempDir::new("huge");
    let store = LogStore::open(dir.path()).unwrap();
    let huge = vec![0u8; refstate_store::MAX_RECORD + 1];
    match store.append("log", &huge) {
        Err(StoreError::RecordTooLarge { .. }) => {}
        other => panic!("expected RecordTooLarge, got {other:?}"),
    }
    // The store stays usable after the rejection.
    store.append("log", b"small").unwrap();
    assert_eq!(store.appended("log").unwrap(), vec![b"small".to_vec()]);
}
