//! Append-only on-disk log backend with CRC-framed records.
//!
//! Layout: a state directory holding numbered segment files
//! (`seg-000001.log`, `seg-000002.log`, ...). Every mutation — `put`,
//! `append`, and the per-open generation bump — is one framed record in the
//! active segment:
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! The payload is a wire-encoded op (put / append / generation bump).
//! Opening the store replays every segment in order to rebuild the live
//! tables. A record that fails to frame or checksum in the *tail* segment is
//! treated as a torn crash-time write: the file is truncated at the last
//! good offset and the open succeeds. The same failure in a sealed
//! (non-tail) segment means history is missing, so the open refuses with
//! [`StoreError::Corrupt`].

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use refstate_wire::{Reader, Writer};

use crate::crc::crc32;
use crate::{ScanEntries, StateStore, StoreError};

/// Records larger than this are rejected at write time and treated as frame
/// corruption at replay time.
pub const MAX_RECORD: usize = 16 * 1024 * 1024;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

const FRAME_HEADER: usize = 8;

const OP_PUT: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_GEN_BUMP: u8 = 3;

#[derive(Default)]
struct Tables {
    kv: BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>,
    logs: BTreeMap<String, Vec<Vec<u8>>>,
}

struct Inner {
    tables: Tables,
    active: File,
    active_len: u64,
    next_seg: u64,
}

/// Durable [`StateStore`] over an append-only segmented log.
pub struct LogStore {
    dir: PathBuf,
    segment_bytes: u64,
    generation: u64,
    inner: Mutex<Inner>,
}

fn segment_name(index: u64) -> String {
    format!("seg-{index:06}.log")
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn encode_put(ns: &str, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_PUT);
    w.put_str(ns);
    w.put_bytes(key);
    w.put_bytes(value);
    w.into_inner()
}

fn encode_append(ns: &str, record: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_APPEND);
    w.put_str(ns);
    w.put_bytes(record);
    w.into_inner()
}

fn encode_gen_bump() -> Vec<u8> {
    vec![OP_GEN_BUMP]
}

fn apply(tables: &mut Tables, payload: &[u8], bumps: &mut u64) -> Result<(), String> {
    let mut r = Reader::new(payload);
    match r.take_u8().map_err(|e| e.to_string())? {
        OP_PUT => {
            let ns = r.take_str().map_err(|e| e.to_string())?.to_owned();
            let key = r.take_bytes().map_err(|e| e.to_string())?.to_vec();
            let value = r.take_bytes().map_err(|e| e.to_string())?.to_vec();
            r.finish().map_err(|e| e.to_string())?;
            tables.kv.entry(ns).or_default().insert(key, value);
            Ok(())
        }
        OP_APPEND => {
            let ns = r.take_str().map_err(|e| e.to_string())?.to_owned();
            let record = r.take_bytes().map_err(|e| e.to_string())?.to_vec();
            r.finish().map_err(|e| e.to_string())?;
            tables.logs.entry(ns).or_default().push(record);
            Ok(())
        }
        OP_GEN_BUMP => {
            r.finish().map_err(|e| e.to_string())?;
            *bumps += 1;
            Ok(())
        }
        op => Err(format!("unknown op tag {op}")),
    }
}

/// Why replay of one segment stopped early.
enum TailFault {
    /// Frame header or payload extends past end-of-file (torn write).
    Torn { offset: u64 },
    /// Frame is complete but fails its CRC or advertises an absurd length.
    Bad { offset: u64, detail: String },
}

/// Replays one segment into `tables`. Returns `Ok(None)` if every byte was a
/// valid record, `Ok(Some(fault))` if replay stopped at a bad tail.
fn replay_segment(
    path: &Path,
    tables: &mut Tables,
    bumps: &mut u64,
) -> Result<Option<TailFault>, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut offset = 0usize;
    while offset < bytes.len() {
        if bytes.len() - offset < FRAME_HEADER {
            return Ok(Some(TailFault::Torn {
                offset: offset as u64,
            }));
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            return Ok(Some(TailFault::Bad {
                offset: offset as u64,
                detail: format!("frame length {len} exceeds {MAX_RECORD}"),
            }));
        }
        if bytes.len() - offset - FRAME_HEADER < len {
            return Ok(Some(TailFault::Torn {
                offset: offset as u64,
            }));
        }
        let payload = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
        let got = crc32(payload);
        if got != want {
            return Ok(Some(TailFault::Bad {
                offset: offset as u64,
                detail: format!("crc mismatch: stored {want:#010x}, computed {got:#010x}"),
            }));
        }
        if let Err(detail) = apply(tables, payload, bumps) {
            return Ok(Some(TailFault::Bad {
                offset: offset as u64,
                detail,
            }));
        }
        offset += FRAME_HEADER + len;
    }
    Ok(None)
}

impl LogStore {
    /// Opens (or creates) the store in `dir` with the default segment size.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        LogStore::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens with an explicit rotation threshold (small values force
    /// rotation in tests).
    pub fn open_with_segment_bytes(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(index) = stem.parse::<u64>() {
                    segments.push((index, entry.path()));
                }
            }
        }
        segments.sort();

        let mut tables = Tables::default();
        let mut bumps = 0u64;
        let last = segments.len().checked_sub(1);
        for (pos, (_, path)) in segments.iter().enumerate() {
            let fault = replay_segment(path, &mut tables, &mut bumps)?;
            let segment = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let segment = segment.unwrap_or_else(|| path.display().to_string());
            match fault {
                None => {}
                Some(fault) if Some(pos) == last => {
                    // Crash-time tail: drop the bad suffix and keep going.
                    let offset = match fault {
                        TailFault::Torn { offset } | TailFault::Bad { offset, .. } => offset,
                    };
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(offset)?;
                    file.sync_all()?;
                }
                Some(TailFault::Torn { offset }) => {
                    return Err(StoreError::Corrupt {
                        segment,
                        offset,
                        detail: "torn record in sealed segment".to_owned(),
                    });
                }
                Some(TailFault::Bad { offset, detail }) => {
                    return Err(StoreError::Corrupt {
                        segment,
                        offset,
                        detail,
                    });
                }
            }
        }

        let next_seg = segments.last().map(|(i, _)| i + 1).unwrap_or(1);
        let active = match segments.last() {
            Some((_, path)) => OpenOptions::new().append(true).open(path)?,
            None => {
                let path = dir.join(segment_name(next_seg));
                OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?
            }
        };
        let next_seg = if segments.is_empty() {
            next_seg + 1
        } else {
            next_seg
        };
        let active_len = active.metadata()?.len();

        let store = LogStore {
            dir,
            segment_bytes,
            generation: bumps + 1,
            inner: Mutex::new(Inner {
                tables,
                active,
                active_len,
                next_seg,
            }),
        };
        // Stamp this open so the next one observes a higher generation.
        store.write_record(&encode_gen_bump())?;
        store.sync()?;
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_record(&self, payload: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("log store lock");
        self.write_record_locked(&mut inner, payload)
    }

    /// Writes one framed record to the active segment, rotating first if the
    /// segment has reached the threshold. Callers hold the inner lock, so a
    /// record's disk position always matches its table-apply order.
    fn write_record_locked(&self, inner: &mut Inner, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge {
                len: payload.len(),
                max: MAX_RECORD,
            });
        }
        if inner.active_len >= self.segment_bytes {
            inner.active.sync_all()?;
            let index = inner.next_seg;
            let path = self.dir.join(segment_name(index));
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            inner.active = file;
            inner.active_len = 0;
            inner.next_seg = index + 1;
        }
        let framed = frame(payload);
        inner.active.write_all(&framed)?;
        inner.active_len += framed.len() as u64;
        Ok(())
    }
}

impl StateStore for LogStore {
    fn put(&self, ns: &str, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("log store lock");
        self.write_record_locked(&mut inner, &encode_put(ns, key, value))?;
        inner
            .tables
            .kv
            .entry(ns.to_owned())
            .or_default()
            .insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, ns: &str, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let inner = self.inner.lock().expect("log store lock");
        Ok(inner.tables.kv.get(ns).and_then(|m| m.get(key)).cloned())
    }

    fn scan(&self, ns: &str) -> Result<ScanEntries, StoreError> {
        let inner = self.inner.lock().expect("log store lock");
        Ok(inner
            .tables
            .kv
            .get(ns)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default())
    }

    fn append(&self, ns: &str, record: &[u8]) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().expect("log store lock");
        self.write_record_locked(&mut inner, &encode_append(ns, record))?;
        let log = inner.tables.logs.entry(ns.to_owned()).or_default();
        log.push(record.to_vec());
        Ok(log.len() as u64 - 1)
    }

    fn appended(&self, ns: &str) -> Result<Vec<Vec<u8>>, StoreError> {
        let inner = self.inner.lock().expect("log store lock");
        Ok(inner.tables.logs.get(ns).cloned().unwrap_or_default())
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn sync(&self) -> Result<(), StoreError> {
        let inner = self.inner.lock().expect("log store lock");
        inner.active.sync_all()?;
        Ok(())
    }
}
