//! Persistence backends for owner-side verification state.
//!
//! The paper's owner keeps reference-state artifacts — replay verdicts,
//! registered host keys, verdict streams — that today live only in process
//! memory. [`StateStore`] is the small storage contract those tables sit
//! behind: namespaced key/value records plus namespaced append-only record
//! logs, with a generation stamp that counts how many times the store has
//! been opened.
//!
//! Two backends ship with the crate:
//!
//! - [`MemoryStore`]: the current in-memory maps, for tests and for callers
//!   that want the trait without durability.
//! - [`LogStore`]: an append-only on-disk log with CRC-framed records,
//!   segment rotation, and crash-safe replay-on-open (a torn or corrupt tail
//!   record is truncated away; corruption in a sealed segment is an error).

mod crc;
mod log;
mod memory;

pub use crc::crc32;
pub use log::{LogStore, DEFAULT_SEGMENT_BYTES, MAX_RECORD};
pub use memory::MemoryStore;

use std::fmt;

/// Errors surfaced by a [`StateStore`] backend.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A sealed (non-tail) segment holds a record that fails its CRC or
    /// cannot be decoded; replay refuses to guess at the missing history.
    Corrupt {
        segment: String,
        offset: u64,
        detail: String,
    },
    /// A record exceeded the maximum frame size.
    RecordTooLarge { len: usize, max: usize },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store io error: {err}"),
            StoreError::Corrupt {
                segment,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "corrupt record in sealed segment {segment} at offset {offset}: {detail}"
                )
            }
            StoreError::RecordTooLarge { len, max } => {
                write!(
                    f,
                    "record of {len} bytes exceeds the {max}-byte frame limit"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// A namespace's live key/value pairs, as returned by [`StateStore::scan`].
pub type ScanEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Namespaced storage over byte records.
///
/// Each namespace holds two independent collections: a key/value map
/// (`put`/`get`/`scan`) and an append-only record log (`append`/`appended`).
/// `scan` returns entries in ascending key order; `appended` returns records
/// in append order. Both orderings are part of the contract — callers replay
/// them to rebuild deterministic in-memory state.
pub trait StateStore: Send + Sync {
    /// Insert or overwrite `key` in `ns`.
    fn put(&self, ns: &str, key: &[u8], value: &[u8]) -> Result<(), StoreError>;

    /// Fetch the current value of `key` in `ns`, if any.
    fn get(&self, ns: &str, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;

    /// All live key/value pairs in `ns`, in ascending key order.
    fn scan(&self, ns: &str) -> Result<ScanEntries, StoreError>;

    /// Append `record` to the `ns` log; returns the record's index within
    /// the namespace log (0-based append order).
    fn append(&self, ns: &str, record: &[u8]) -> Result<u64, StoreError>;

    /// All records appended to `ns`, in append order.
    fn appended(&self, ns: &str) -> Result<Vec<Vec<u8>>, StoreError>;

    /// Monotonic open-generation stamp: 1 for a fresh store, incremented on
    /// each durable reopen. A warm restart observes `generation() > 1`.
    fn generation(&self) -> u64;

    /// Flush buffered writes to stable storage (no-op for memory backends).
    fn sync(&self) -> Result<(), StoreError>;
}
