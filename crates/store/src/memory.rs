//! The in-memory backend: the maps the service used before durability.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::{ScanEntries, StateStore, StoreError};

#[derive(Default)]
struct Tables {
    kv: BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>,
    logs: BTreeMap<String, Vec<Vec<u8>>>,
}

/// Volatile [`StateStore`] backend over `BTreeMap`s. Generation is always 1:
/// a memory store never survives the process, so it is never "warm".
#[derive(Default)]
pub struct MemoryStore {
    tables: Mutex<Tables>,
}

impl MemoryStore {
    pub fn new() -> Self {
        MemoryStore::default()
    }
}

impl StateStore for MemoryStore {
    fn put(&self, ns: &str, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut tables = self.tables.lock().expect("memory store lock");
        tables
            .kv
            .entry(ns.to_owned())
            .or_default()
            .insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, ns: &str, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let tables = self.tables.lock().expect("memory store lock");
        Ok(tables.kv.get(ns).and_then(|m| m.get(key)).cloned())
    }

    fn scan(&self, ns: &str) -> Result<ScanEntries, StoreError> {
        let tables = self.tables.lock().expect("memory store lock");
        Ok(tables
            .kv
            .get(ns)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default())
    }

    fn append(&self, ns: &str, record: &[u8]) -> Result<u64, StoreError> {
        let mut tables = self.tables.lock().expect("memory store lock");
        let log = tables.logs.entry(ns.to_owned()).or_default();
        log.push(record.to_vec());
        Ok(log.len() as u64 - 1)
    }

    fn appended(&self, ns: &str) -> Result<Vec<Vec<u8>>, StoreError> {
        let tables = self.tables.lock().expect("memory store lock");
        Ok(tables.logs.get(ns).cloned().unwrap_or_default())
    }

    fn generation(&self) -> u64 {
        1
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_round_trip_and_scan_order() {
        let store = MemoryStore::new();
        store.put("ns", b"b", b"2").unwrap();
        store.put("ns", b"a", b"1").unwrap();
        store.put("ns", b"a", b"3").unwrap(); // overwrite
        assert_eq!(store.get("ns", b"a").unwrap(), Some(b"3".to_vec()));
        assert_eq!(store.get("other", b"a").unwrap(), None);
        let scan = store.scan("ns").unwrap();
        assert_eq!(
            scan,
            vec![
                (b"a".to_vec(), b"3".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
    }

    #[test]
    fn appends_preserve_order_per_namespace() {
        let store = MemoryStore::new();
        assert_eq!(store.append("log", b"first").unwrap(), 0);
        assert_eq!(store.append("log", b"second").unwrap(), 1);
        assert_eq!(store.append("other", b"x").unwrap(), 0);
        assert_eq!(
            store.appended("log").unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()]
        );
        assert_eq!(store.generation(), 1);
    }
}
