//! CRC-32 (IEEE 802.3 polynomial) for record framing.
//!
//! Table-driven, reflected form — the same function `cksum`-family tools and
//! zlib use, so frames written here are checkable with standard tooling.

const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"reference state");
        let mut flipped = b"reference state".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
