//! Vigna's execution traces end to end: a journey with trace recording, a
//! suspicious owner, and the audit that pins down the cheater.
//!
//! ```text
//! cargo run --example trace_audit
//! ```

use rand::SeedableRng;
use refstate::crypto::{DsaParams, KeyDirectory};
use refstate::mechanisms::{audit_journey, run_traced_journey};
use refstate::platform::{AgentImage, Attack, EventLog, Host, HostSpec};
use refstate::vm::{assemble, DataState, ExecConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DsaParams::test_group_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);

    // A bookkeeping agent summing per-branch revenue; the second branch
    // under-reports by tampering the running total.
    let mut hosts = vec![
        Host::new(
            HostSpec::new("branch-1")
                .trusted()
                .with_input("revenue", Value::Int(1000)),
            &params,
            &mut rng,
        ),
        Host::new(
            HostSpec::new("branch-2")
                .with_input("revenue", Value::Int(2500))
                .malicious(Attack::TamperVariable {
                    name: "total".into(),
                    value: Value::Int(1500),
                }),
            &params,
            &mut rng,
        ),
        Host::new(
            HostSpec::new("hq")
                .trusted()
                .with_input("revenue", Value::Int(800)),
            &params,
            &mut rng,
        ),
    ];
    let mut directory = KeyDirectory::new();
    for h in &hosts {
        directory.register(h.id().as_str(), h.public_key().clone());
    }

    let program = assemble(
        r#"
        input "revenue"
        load "total"
        add
        store "total"
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        push 1
        eq
        jnz to_2
        load "hop"
        push 2
        eq
        jnz to_hq
        halt
    to_2:
        push "branch-2"
        migrate
    to_hq:
        push "hq"
        migrate
    "#,
    )?;
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hop", Value::Int(0));
    let agent = AgentImage::new("auditor", program.clone(), state);

    let log = EventLog::new();
    let journey = run_traced_journey(
        &mut hosts,
        "branch-1",
        agent,
        &ExecConfig::default(),
        &log,
        10,
    )?;

    println!(
        "journey complete: visited {:?}",
        journey.path.iter().map(|h| h.as_str()).collect::<Vec<_>>()
    );
    println!(
        "reported grand total: {:?}",
        journey.final_state.get_int("total")
    );
    println!("(expected 1000 + 2500 + 800 = 4300 — something is off)\n");

    println!("per-session commitments received by the owner:");
    for signed in &journey.commitments {
        let c = signed.payload();
        println!(
            "  session {} by {:<10} trace#{} result#{}",
            c.seq,
            c.executor.as_str(),
            c.trace_digest.short(),
            c.resulting_digest.short(),
        );
    }

    println!("\nowner is suspicious -> requesting traces and re-executing...\n");
    let report = audit_journey(&journey, &program, &directory, &ExecConfig::default(), &log);
    for v in &report.verdicts {
        println!("  {v}");
    }
    match &report.culprit {
        Some(culprit) => {
            println!("\nculprit identified: {culprit}");
            if let Some((claimed, reference)) = &report.digest_evidence {
                println!("  claimed resulting state hash:   {claimed}");
                println!("  re-executed reference hash:     {reference}");
                println!("  (hashes only — Vigna's protocol never ships full states)");
            }
        }
        None => println!("\naudit clean — no fraud found"),
    }
    Ok(())
}
