//! Quickstart: protect a mobile agent with the paper's session-checking
//! protocol and watch a tampering host get caught.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use refstate::core::protocol::{run_protected_journey, ProtocolConfig};
use refstate::crypto::DsaParams;
use refstate::platform::{AgentImage, Attack, EventLog, Host, HostSpec};
use refstate::vm::{assemble, DataState, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let params = DsaParams::test_group_256();

    // Three hosts: home and notary are trusted; the shop is not — and it
    // will tamper with the agent's collected price.
    let mut hosts = vec![
        Host::new(
            HostSpec::new("home")
                .trusted()
                .with_input("offer", Value::Int(400)),
            &params,
            &mut rng,
        ),
        Host::new(
            HostSpec::new("shop")
                .with_input("offer", Value::Int(120))
                .malicious(Attack::TamperVariable {
                    name: "best".into(),
                    value: Value::Int(999),
                }),
            &params,
            &mut rng,
        ),
        Host::new(
            HostSpec::new("notary")
                .trusted()
                .with_input("offer", Value::Int(250)),
            &params,
            &mut rng,
        ),
    ];

    // The agent: collect one offer per host, keep the minimum, come home.
    let program = assemble(
        r#"
        input "offer"
        dup
        load "best"
        lt
        jz keep_old
        store "best"
        jump route
    keep_old:
        pop
    route:
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        push 1
        eq
        jnz to_shop
        load "hop"
        push 2
        eq
        jnz to_notary
        halt
    to_shop:
        push "shop"
        migrate
    to_notary:
        push "notary"
        migrate
    "#,
    )?;
    let mut state = DataState::new();
    state.set("best", Value::Int(9_999));
    state.set("hop", Value::Int(0));
    let agent = AgentImage::new("bargain-hunter", program, state);

    let log = EventLog::new();
    let outcome =
        run_protected_journey(&mut hosts, "home", agent, &ProtocolConfig::default(), &log)?;

    println!("=== event timeline ===");
    print!("{}", log.render());

    match &outcome.fraud {
        Some(fraud) => {
            println!("\n=== fraud evidence ===");
            println!("{fraud}");
        }
        None => {
            println!(
                "\njourney completed clean; best offer: {:?}",
                outcome.final_state.get_int("best")
            );
        }
    }

    println!(
        "\nprotocol stats: {} signatures, {} verifications, {} re-executions",
        outcome.stats.signatures, outcome.stats.verifications, outcome.stats.reexecutions
    );
    Ok(())
}
