//! Server replication (Minsky et al.): a market-data pipeline where every
//! stage runs on three independent replicas and the resulting states are
//! voted on — one corrupt replica per stage is simply outvoted.
//!
//! ```text
//! cargo run --example replicated_market
//! ```

use rand::SeedableRng;
use refstate::crypto::DsaParams;
use refstate::mechanisms::{run_replicated_pipeline, StageSpec};
use refstate::platform::{AgentImage, Attack, EventLog, Host, HostSpec};
use refstate::vm::{assemble, DataState, ExecConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DsaParams::test_group_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // The agent aggregates a reference price across three market stages.
    let program = assemble(
        r#"
        input "price"
        load "sum"
        add
        store "sum"
        load "n"
        push 1
        add
        store "n"
        push "next"
        migrate
    "#,
    )?;
    let mut state = DataState::new();
    state.set("sum", Value::Int(0));
    state.set("n", Value::Int(0));
    let agent = AgentImage::new("market-sampler", program, state);

    // Three stages × three replicas. Stage prices: 100, 102, 98.
    // One replica of stage 1 forges the running sum.
    let stage_prices = [100i64, 102, 98];
    let mut hosts = Vec::new();
    let mut stages = Vec::new();
    for (s, price) in stage_prices.iter().enumerate() {
        let mut ids = Vec::new();
        for r in 0..3 {
            let id = format!("exchange-{s}{}", (b'a' + r) as char);
            let mut spec = HostSpec::new(id.as_str()).with_input("price", Value::Int(*price));
            if s == 1 && r == 2 {
                spec = spec.malicious(Attack::TamperVariable {
                    name: "sum".into(),
                    value: Value::Int(1_000_000),
                });
            }
            hosts.push(Host::new(spec, &params, &mut rng));
            ids.push(id);
        }
        stages.push(StageSpec::new(ids));
    }

    let log = EventLog::new();
    let outcome =
        run_replicated_pipeline(&mut hosts, &stages, agent, &ExecConfig::default(), &log)?;

    println!("per-stage votes:");
    for vote in &outcome.votes {
        println!("  stage {}:", vote.stage);
        for (digest, voters) in &vote.tally {
            let names: Vec<&str> = voters.iter().map(|h| h.as_str()).collect();
            let marker = if Some(*digest) == vote.winner {
                "WINNER"
            } else {
                "minority"
            };
            println!("    state#{} <- {:?} [{marker}]", digest.short(), names);
        }
    }

    match outcome.final_state {
        Some(state) => {
            println!(
                "\nvoted final state: sum = {:?} over {:?} stages",
                state.get_int("sum"),
                state.get_int("n")
            );
            println!("expected 100 + 102 + 98 = 300 — the forgery never made it through");
        }
        None => println!("\nno majority — too many corrupt replicas"),
    }
    if !outcome.suspects.is_empty() {
        println!(
            "replicas flagged for diverging from the majority: {:?}",
            outcome
                .suspects
                .iter()
                .map(|h| h.as_str())
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
