//! The attack gallery: the paper's Fig. 2 taxonomy, the blackbox-set
//! reduction, and the live detection matrix of every mechanism against
//! every attack scenario.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use refstate::core::AttackArea;
use refstate::mechanisms::matrix::{detection_matrix, render_matrix, standard_scenarios};

fn main() {
    println!("=== Fig. 2: the twelve attack areas ===\n");
    for area in AttackArea::ALL {
        let mut notes = Vec::new();
        if area.in_blackbox_set() {
            notes.push("blackbox set");
        }
        if area.unpreventable() {
            notes.push("not preventable");
        }
        if area.detectable_by_reference_states() {
            notes.push("reference-state detectable");
        }
        if area.is_read_attack() {
            notes.push("read attack");
        }
        println!("  {area}");
        if !notes.is_empty() {
            println!("      [{}]", notes.join(", "));
        }
    }

    println!("\n=== live detection matrix ===\n");
    let cells = detection_matrix();
    println!("{}", render_matrix(&cells));

    println!("paper-predicted bandwidth per scenario:");
    for s in standard_scenarios() {
        println!(
            "  {:<20} {}",
            s.label,
            if s.expected_detectable {
                "detectable (state-visible manipulation)"
            } else {
                "not detectable by reference states (§4.2)"
            }
        );
    }

    println!("\nreading guide:");
    println!("  * every mechanism catches state-visible manipulation — that is the");
    println!("    reference-state guarantee (§2.3);");
    println!("  * nobody catches read attacks or input lying — the stated limits (§4.2);");
    println!("  * replication alone survives input forgery (replicated resources) and");
    println!("    consecutive-host collusion (colluders sit in different voting stages);");
    println!("  * weak appraisal rules miss whatever they fail to express (§3.1).");
}
