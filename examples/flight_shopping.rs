//! The paper's motivating scenario: comparing flight prices across airline
//! hosts one does not want to depend on ("although an airline as a big
//! company is trustworthy, one does not want to depend on the goodwill of
//! the company's host when comparing different flight prizes").
//!
//! The example runs the same shopping trip three times:
//!
//! 1. **unprotected** — the corrupt airline silently deletes the cheaper
//!    competitor quote and the owner never learns;
//! 2. **protected, state tampering** — the session-checking protocol
//!    catches the manipulation with full evidence;
//! 3. **protected, input lying** — the airline forges its *own* quote
//!    (the price it reports to the agent), which reference states cannot
//!    detect (§4.2) — but the signed-input extension (§4.3) can, shown via
//!    provenance checking.
//!
//! ```text
//! cargo run --example flight_shopping
//! ```

use rand::SeedableRng;
use refstate::core::protocol::{run_protected_journey, ProtocolConfig};
use refstate::crypto::{DsaKeyPair, DsaParams, KeyDirectory, Signed};
use refstate::platform::{run_plain_journey, AgentImage, Attack, EventLog, Host, HostSpec};
use refstate::vm::{assemble, DataState, ExecConfig, Value};

/// The shopping agent: collect a quote per airline into a list, then pick
/// the cheapest at the end.
fn shopping_agent() -> Result<AgentImage, Box<dyn std::error::Error>> {
    let program = assemble(
        r#"
        ; collect this airline's quote
        input "fare"
        load "quotes"
        swap
        listpush
        store "quotes"
        ; route: home -> airline-a -> airline-b -> home'
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        push 1
        eq
        jnz to_a
        load "hop"
        push 2
        eq
        jnz to_b
        ; back home: find the cheapest quote
        load "quotes"
        push 0
        listget
        store "best"
        push 1
        store "i"
    scan:
        load "i"
        load "quotes"
        listlen
        ge
        jnz done
        load "quotes"
        load "i"
        listget
        dup
        load "best"
        lt
        jz skip
        store "best"
        jump next
    skip:
        pop
    next:
        load "i"
        push 1
        add
        store "i"
        jump scan
    done:
        halt
    to_a:
        push "airline-a"
        migrate
    to_b:
        push "airline-b"
        migrate
    "#,
    )?;
    let mut state = DataState::new();
    state.set("quotes", Value::List(vec![]));
    state.set("hop", Value::Int(0));
    Ok(AgentImage::new("flight-shopper", program, state))
}

fn build_hosts(
    airline_b_attack: Option<Attack>,
    params: &DsaParams,
    rng: &mut rand::rngs::StdRng,
) -> Vec<Host> {
    let mut b = HostSpec::new("airline-b").with_input("fare", Value::Int(240));
    if let Some(attack) = airline_b_attack {
        b = b.malicious(attack);
    }
    vec![
        Host::new(
            HostSpec::new("home")
                .trusted()
                .with_input("fare", Value::Int(410)),
            params,
            rng,
        ),
        Host::new(
            HostSpec::new("airline-a").with_input("fare", Value::Int(180)),
            params,
            rng,
        ),
        Host::new(b, params, rng),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DsaParams::test_group_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(777);

    // ------------------------------------------------------------------
    println!("scenario 1: UNPROTECTED — airline-b wipes the competitor's cheaper quote");
    let attack = Attack::TamperVariable {
        name: "quotes".into(),
        // The list as airline-b wishes it looked: its own fare cheapest.
        value: Value::List(vec![Value::Int(410), Value::Int(500), Value::Int(240)]),
    };
    let mut hosts = build_hosts(Some(attack.clone()), &params, &mut rng);
    let log = EventLog::new();
    let outcome = run_plain_journey(
        &mut hosts,
        "home",
        shopping_agent()?,
        &ExecConfig::default(),
        &log,
        10,
    )?;
    println!(
        "  owner believes the best fare is {:?} — airline-a's 180 vanished, nobody noticed\n",
        outcome.final_image.state.get_int("best")
    );

    // ------------------------------------------------------------------
    println!("scenario 2: PROTECTED — same attack under the session-checking protocol");
    let mut hosts = build_hosts(Some(attack), &params, &mut rng);
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        shopping_agent()?,
        &ProtocolConfig::default(),
        &log,
    )?;
    match &outcome.fraud {
        Some(fraud) => {
            println!("  fraud detected!");
            println!("    culprit:  {}", fraud.culprit);
            println!("    detector: {}", fraud.detector);
            println!(
                "    claimed quotes:   {}",
                fraud.claimed_state.get("quotes").unwrap()
            );
            println!(
                "    reference quotes: {}",
                fraud
                    .reference_state
                    .as_ref()
                    .unwrap()
                    .get("quotes")
                    .unwrap()
            );
            println!("    the culprit's signed certificate is attached as court evidence\n");
        }
        None => println!("  (unexpected: attack not detected)\n"),
    }

    // ------------------------------------------------------------------
    println!("scenario 3: PROTECTED — airline-b lies about its own fare instead");
    let mut hosts = build_hosts(
        Some(Attack::ForgeInput {
            tag: "fare".into(),
            value: Value::Int(90),
        }),
        &params,
        &mut rng,
    );
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        shopping_agent()?,
        &ProtocolConfig::default(),
        &log,
    )?;
    println!(
        "  no fraud detected (fraud = {:?}); owner books the forged fare {:?}",
        outcome.fraud.is_some(),
        outcome.final_state.get_int("best"),
    );
    println!("  -> input lying is outside the reference-state bandwidth (§4.2)\n");

    // ------------------------------------------------------------------
    println!("scenario 4: the §4.3 extension — fares signed by the fare producer");
    // A notarized fare feed: the airline's published price list is signed
    // by the airline *company* (not the host), so the host cannot forge it.
    let company_keys = DsaKeyPair::generate(&params, &mut rng);
    let mut directory = KeyDirectory::new();
    directory.register("airline-b-company", company_keys.public().clone());
    let published_fare = Signed::seal(
        Value::Int(240),
        "airline-b-company",
        &company_keys,
        &mut rng,
    );

    // The host serves a forged fare (90) but cannot produce a company
    // signature for it; the agent-side provenance check exposes the lie.
    let forged = Value::Int(90);
    let provenance: Option<Signed<Value>> = None; // the host has none for 90
    let claimed_ok = match &provenance {
        Some(envelope) => envelope.verify(&directory).is_ok() && envelope.payload() == &forged,
        None => false,
    };
    println!(
        "  host offers fare {forged} with{} provenance -> accepted: {claimed_ok}",
        if provenance.is_some() { "" } else { "out" }
    );
    let genuine_ok = published_fare.verify(&directory).is_ok();
    println!(
        "  the genuine signed fare {} verifies: {genuine_ok}",
        published_fare.payload()
    );
    println!("  -> signed inputs close the input-forgery gap the paper describes in §4.3");
    Ok(())
}
