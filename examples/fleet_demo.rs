//! Fleet demo: run a small mixed scenario population under every
//! mechanism and print the detection table, timing, and JSON metrics.
//!
//! ```text
//! cargo run --release --example fleet_demo
//! ```
//!
//! For serious populations use the dedicated CLI:
//!
//! ```text
//! cargo run --release -p refstate-fleet --bin fleet -- \
//!     --scenarios 10000 --workers 8 --seed 42 --preset mixed
//! ```

use refstate::fleet::{run_fleet, FleetConfig, Preset};

fn main() {
    let config = FleetConfig {
        scenarios: 500,
        preset: Preset::Mixed,
        seed: 42,
        ..FleetConfig::default()
    };
    let run = run_fleet(&config);

    print!("{}", run.report.render_table());
    println!();
    print!("{}", run.timing.render());
    println!();
    println!("report json: {}", run.report.to_json());
    println!("timing json: {}", run.timing.to_json());

    // The paper's bandwidth claims, visible at population scale: strong
    // mechanisms catch every state/control-flow attack, nobody catches
    // input-level attacks, and honest journeys are never flagged.
    let honest_flags: u64 = run
        .report
        .mechanisms
        .iter()
        .filter_map(|m| m.per_attack.get("honest"))
        .map(|cell| cell.detected)
        .sum();
    assert_eq!(honest_flags, 0, "no false positives on honest journeys");
}
