//! Proof verification (§3.4), hands on: a host proves it executed an agent
//! session correctly, and a verifier checks the proof by auditing a handful
//! of random steps — without re-running the session.
//!
//! ```text
//! cargo run --release --example proof_spotcheck
//! ```

use std::time::Instant;

use refstate::mechanisms::{Prover, Verifier};
use refstate::platform::AgentId;
use refstate::vm::{assemble, DataState, ExecConfig, NullIo, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compute-heavy session: 50k loop iterations.
    let program = assemble(
        r#"
        push 0
        store "x"
    loop:
        load "x"
        push 50000
        ge
        jnz done
        load "x"
        push 1
        add
        store "x"
        jump loop
    done:
        halt
    "#,
    )?;
    let exec = ExecConfig::default();

    println!("proving: executing the session with per-step commitments...");
    let t = Instant::now();
    let prover = Prover::execute(
        AgentId::new("prover-demo"),
        &program,
        DataState::new(),
        &mut NullIo,
        &exec,
    )?;
    let prove_time = t.elapsed();
    let proof = prover.proof().clone();
    println!(
        "  proof: {} steps, root {}, claimed x = {:?}   [{:.0} ms]",
        proof.steps,
        proof.root.short(),
        proof.final_state.get_int("x"),
        prove_time.as_secs_f64() * 1e3
    );

    println!("\nverifying with 16 Fiat–Shamir spot checks...");
    let verifier = Verifier::new(16);
    let challenges = verifier.challenges_for(&proof);
    println!("  audited steps: {challenges:?}");
    let t = Instant::now();
    verifier.verify(&program, &proof, &prover, &exec)?;
    let verify_time = t.elapsed();
    println!(
        "  proof ACCEPTED in {:.2} ms ({}x faster than proving)",
        verify_time.as_secs_f64() * 1e3,
        (prove_time.as_secs_f64() / verify_time.as_secs_f64()) as u64
    );

    println!("\nnow the host lies about the result...");
    let mut forged = proof.clone();
    forged.final_state.set("x", Value::Int(999_999));
    match verifier.verify(&program, &forged, &prover, &exec) {
        Err(e) => println!("  proof REJECTED: {e}"),
        Ok(()) => println!("  (unexpected: forged proof accepted)"),
    }

    println!(
        "\nnote: real holographic proofs (Biehl/Meyer/Wetzel) are NP-hard to\n\
         construct — the paper sets them aside for exactly that reason. This\n\
         Merkle-transcript substitute keeps the interface (self-contained proof,\n\
         sublinear verification) at the cost of weaker soundness; see DESIGN.md §4."
    );
    Ok(())
}
