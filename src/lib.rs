//! # refstate — protecting mobile agents with reference states
//!
//! A complete Rust reproduction of Fritz Hohl, *"A Framework to Protect
//! Mobile Agents by Using Reference States"* (University of Stuttgart TR
//! 2000/03 / ICDCS 2000): the checking framework itself, the four surveyed
//! baseline mechanisms, the agent platform and VM they run on, and the
//! from-scratch cryptography underneath — plus the benchmark harness that
//! regenerates the paper's evaluation tables.
//!
//! This facade crate re-exports the workspace so applications can depend on
//! one name:
//!
//! * [`vm`] — the deterministic agent VM (bytecode, assembler, tracing,
//!   replay),
//! * [`platform`] — hosts, behaviours/attacks, input feeds, event log,
//!   sim and threaded transports,
//! * [`core`] — the reference-state framework: attack taxonomy, check
//!   moments, reference data, checking algorithms, the §5.1 protocol,
//! * [`mechanisms`] — state appraisal, server replication, execution
//!   traces, and (simulated) proof verification,
//! * [`fleet`] — the fleet-scale scenario engine: seeded generation of
//!   thousands of host topologies and attack mixes, a multi-threaded
//!   journey scheduler, and detection/throughput reporting,
//! * [`crypto`] — SHA-1/SHA-256/HMAC/DSA and signed envelopes,
//! * [`wire`] — the canonical binary encoding everything is hashed and
//!   signed through,
//! * [`bigint`] — the arbitrary-precision arithmetic under DSA.
//!
//! # Quickstart
//!
//! Protect an agent with the paper's example mechanism and catch a
//! tampering host red-handed:
//!
//! ```
//! use rand::SeedableRng;
//! use refstate::core::protocol::{run_protected_journey, ProtocolConfig};
//! use refstate::crypto::DsaParams;
//! use refstate::platform::{AgentImage, Attack, EventLog, Host, HostSpec};
//! use refstate::vm::{assemble, DataState, Value};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = DsaParams::test_group_256();
//! let mut hosts = vec![
//!     Host::new(HostSpec::new("home").trusted().with_input("offer", Value::Int(400)), &params, &mut rng),
//!     Host::new(
//!         HostSpec::new("shop")
//!             .with_input("offer", Value::Int(120))
//!             .malicious(Attack::TamperVariable { name: "best".into(), value: Value::Int(999) }),
//!         &params,
//!         &mut rng,
//!     ),
//!     Host::new(HostSpec::new("notary").trusted().with_input("offer", Value::Int(250)), &params, &mut rng),
//! ];
//!
//! // Collect an offer on each host, keeping the minimum in `best`.
//! let program = assemble(r#"
//!     input "offer"
//!     dup
//!     load "best"
//!     lt
//!     jz keep_old
//!     store "best"
//!     jump route
//! keep_old:
//!     pop
//! route:
//!     load "hop"
//!     push 1
//!     add
//!     store "hop"
//!     load "hop"
//!     push 1
//!     eq
//!     jnz to_shop
//!     load "hop"
//!     push 2
//!     eq
//!     jnz to_notary
//!     halt
//! to_shop:
//!     push "shop"
//!     migrate
//! to_notary:
//!     push "notary"
//!     migrate
//! "#)?;
//! let mut state = DataState::new();
//! state.set("best", Value::Int(9_999));
//! state.set("hop", Value::Int(0));
//!
//! let log = EventLog::new();
//! let outcome = run_protected_journey(
//!     &mut hosts,
//!     "home",
//!     AgentImage::new("bargain-hunter", program, state),
//!     &ProtocolConfig::default(),
//!     &log,
//! )?;
//!
//! let fraud = outcome.fraud.expect("the shop's tampering is detected");
//! assert_eq!(fraud.culprit.as_str(), "shop");
//! assert_eq!(fraud.claimed_state.get_int("best"), Some(999));
//! assert_eq!(fraud.reference_state.unwrap().get_int("best"), Some(120));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use refstate_bigint as bigint;
pub use refstate_core as core;
pub use refstate_crypto as crypto;
pub use refstate_fleet as fleet;
pub use refstate_mechanisms as mechanisms;
pub use refstate_platform as platform;
pub use refstate_telemetry as telemetry;
pub use refstate_vm as vm;
pub use refstate_wire as wire;
