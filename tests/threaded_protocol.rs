//! The session-checking protocol on real threads: each host runs as a
//! [`HostNode`] on its own OS thread, migration messages flow through
//! crossbeam channels, and the result matches the single-threaded driver.
//!
//! The paper measured everything in one address space; this test shows the
//! protocol logic is transport-agnostic.

use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate::core::protocol::SessionCertificate;
use refstate::crypto::{sha256, DsaParams, KeyDirectory, Signed};
use refstate::platform::{
    AgentImage, Attack, EventLog, Host, HostId, HostNode, HostSpec, NetError, SimNetwork, Step,
    ThreadedNetwork,
};
use refstate::vm::{assemble, DataState, ExecConfig, ReplayIo, SessionEnd, Value};
use refstate::wire::to_wire;

/// The message that travels between protocol nodes: the agent image plus
/// the previous session's signed certificate.
struct Baggage {
    image: AgentImage,
    cert: Signed<SessionCertificate>,
}

/// What a node reports to the test harness when the journey ends on it.
#[derive(Debug)]
enum Verdict {
    Clean { final_state: DataState },
    Fraud { culprit: HostId },
}

/// One protocol participant running on its own thread.
struct ProtocolNode {
    host: Host,
    directory: KeyDirectory,
    exec: ExecConfig,
    log: EventLog,
    report: mpsc::Sender<Verdict>,
}

impl ProtocolNode {
    fn check_incoming(&self, image: &AgentImage, cert: &Signed<SessionCertificate>) -> bool {
        if cert.verify(&self.directory).is_err() {
            return false;
        }
        let payload = cert.payload();
        // Trusted-host optimization is deliberately off here: every thread
        // checks, exercising the full path.
        let mut replay = ReplayIo::new(&payload.input);
        match refstate::vm::run_session(
            &image.program,
            payload.initial_state.clone(),
            &mut replay,
            &self.exec,
        ) {
            Ok(outcome) => {
                let next = match &outcome.end {
                    SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
                    SessionEnd::Halt => None,
                };
                outcome.state == payload.resulting_state
                    && replay.fully_consumed()
                    && next == payload.next
            }
            Err(_) => false,
        }
    }

    fn execute_and_forward(&mut self, mut image: AgentImage, seq: u64) -> Step<Baggage> {
        let record = self
            .host
            .execute_session(&image, &self.exec, &self.log)
            .expect("session runs");
        image.state = record.outcome.state.clone();
        let next = match &record.outcome.end {
            SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
            SessionEnd::Halt => None,
        };
        let cert = SessionCertificate {
            agent: image.id.clone(),
            seq,
            executor: self.host.id().clone(),
            initial_state: record.initial_state.clone(),
            resulting_state: record.outcome.state.clone(),
            input: record.outcome.input_log.clone(),
            next: next.clone(),
        };
        let signed = self.host.sign(cert);
        match next {
            Some(dest) => Step::Send(vec![(
                dest,
                Baggage {
                    image,
                    cert: signed,
                },
            )]),
            None => {
                let _ = self.report.send(Verdict::Clean {
                    final_state: image.state,
                });
                Step::Finished
            }
        }
    }
}

impl HostNode<Baggage> for ProtocolNode {
    fn id(&self) -> HostId {
        self.host.id().clone()
    }

    fn on_message(&mut self, _from: &HostId, msg: Baggage) -> Result<Step<Baggage>, NetError> {
        let seq = msg.cert.payload().seq + 1;
        if !self.check_incoming(&msg.image, &msg.cert) {
            let culprit = msg.cert.payload().executor.clone();
            let _ = self.report.send(Verdict::Fraud { culprit });
            return Ok(Step::Finished);
        }
        Ok(self.execute_and_forward(msg.image, seq))
    }
}

fn tour_agent() -> AgentImage {
    let program = assemble(
        r#"
        input "n"
        load "total"
        add
        store "total"
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        push 1
        eq
        jnz to_b
        load "hop"
        push 2
        eq
        jnz to_c
        halt
    to_b:
        push "b"
        migrate
    to_c:
        push "c"
        migrate
    "#,
    )
    .unwrap();
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hop", Value::Int(0));
    AgentImage::new("threaded", program, state)
}

/// Builds nodes plus the "launch" certificate for the agent leaving home.
fn build(
    attack: Option<Attack>,
    report: mpsc::Sender<Verdict>,
    seed: u64,
) -> (Vec<ProtocolNode>, Baggage) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DsaParams::test_group_256();
    let mut b_spec = HostSpec::new("b").with_input("n", Value::Int(20));
    if let Some(a) = attack {
        b_spec = b_spec.malicious(a);
    }
    let mut hosts = vec![
        Host::new(
            HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
            &params,
            &mut rng,
        ),
        Host::new(b_spec, &params, &mut rng),
        Host::new(
            HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
            &params,
            &mut rng,
        ),
    ];
    let mut directory = KeyDirectory::new();
    for h in &hosts {
        directory.register(h.id().as_str(), h.public_key().clone());
    }

    // Session 0 runs at home before the network exists (the owner's own
    // machine); its certificate seeds the network run.
    let exec = ExecConfig::default();
    let log = EventLog::new();
    let mut image = tour_agent();
    let record = hosts[0]
        .execute_session(&image, &exec, &log)
        .expect("home session");
    image.state = record.outcome.state.clone();
    let next = match &record.outcome.end {
        SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
        SessionEnd::Halt => None,
    };
    let cert = SessionCertificate {
        agent: image.id.clone(),
        seq: 0,
        executor: HostId::new("a"),
        initial_state: record.initial_state.clone(),
        resulting_state: record.outcome.state.clone(),
        input: record.outcome.input_log.clone(),
        next,
    };
    let signed = hosts[0].sign(cert);

    let nodes = hosts
        .into_iter()
        .map(|host| ProtocolNode {
            host,
            directory: directory.clone(),
            exec: exec.clone(),
            log: log.clone(),
            report: report.clone(),
        })
        .collect();
    (
        nodes,
        Baggage {
            image,
            cert: signed,
        },
    )
}

#[test]
fn threaded_honest_journey_matches_sim() {
    // Threaded run.
    let (tx, rx) = mpsc::channel();
    let (nodes, baggage) = build(None, tx, 42);
    let boxed: Vec<Box<dyn HostNode<Baggage> + Send>> = nodes
        .into_iter()
        .map(|n| Box::new(n) as Box<dyn HostNode<Baggage> + Send>)
        .collect();
    let net = ThreadedNetwork::start(boxed);
    net.inject(HostId::new("a"), HostId::new("b"), baggage)
        .unwrap();
    net.join(Duration::from_secs(30)).unwrap();
    let threaded = match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Verdict::Clean { final_state } => final_state,
        Verdict::Fraud { culprit } => panic!("unexpected fraud by {culprit}"),
    };
    assert_eq!(threaded.get_int("total"), Some(60));

    // Deterministic sim run of the identical nodes.
    let (tx, rx) = mpsc::channel();
    let (nodes, baggage) = build(None, tx, 42);
    let mut sim = SimNetwork::new();
    for node in nodes {
        sim.add_node(node);
    }
    sim.inject(HostId::new("a"), HostId::new("b"), baggage);
    sim.run(100).unwrap();
    let simulated = match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
        Verdict::Clean { final_state } => final_state,
        Verdict::Fraud { culprit } => panic!("unexpected fraud by {culprit}"),
    };

    // Same protocol, same hosts, different transport, same bytes.
    assert_eq!(to_wire(&threaded), to_wire(&simulated));
    assert_eq!(sha256(&to_wire(&threaded)), sha256(&to_wire(&simulated)));
}

#[test]
fn threaded_network_catches_tampering() {
    let (tx, rx) = mpsc::channel();
    let attack = Attack::TamperVariable {
        name: "total".into(),
        value: Value::Int(0),
    };
    let (nodes, baggage) = build(Some(attack), tx, 43);
    let boxed: Vec<Box<dyn HostNode<Baggage> + Send>> = nodes
        .into_iter()
        .map(|n| Box::new(n) as Box<dyn HostNode<Baggage> + Send>)
        .collect();
    let net = ThreadedNetwork::start(boxed);
    net.inject(HostId::new("a"), HostId::new("b"), baggage)
        .unwrap();
    net.join(Duration::from_secs(30)).unwrap();
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Verdict::Fraud { culprit } => assert_eq!(culprit.as_str(), "b"),
        Verdict::Clean { .. } => panic!("tampering must be detected across threads"),
    }
}
