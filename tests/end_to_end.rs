//! End-to-end integration tests spanning every crate: agents assembled from
//! text, executed across hosts with real DSA signatures, protected by each
//! mechanism, attacked in every class the taxonomy names.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate::core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate::core::protocol::{run_protected_journey, ProtocolConfig};
use refstate::core::rules::{Pred, RuleSet};
use refstate::core::{CheckMoment, FailureReason, ReExecutionChecker, RuleChecker, UnorderedLists};
use refstate::crypto::{DsaParams, KeyDirectory};
use refstate::mechanisms::{audit_journey, run_traced_journey};
use refstate::platform::{AgentImage, Attack, Event, EventLog, Host, HostId, HostSpec};
use refstate::vm::{assemble, DataState, ExecConfig, Value};

/// A five-host shopping tour: home → 3 shops → home. Shops are untrusted.
fn tour_agent() -> AgentImage {
    let program = assemble(
        r#"
        input "quote"
        load "quotes"
        swap
        listpush
        store "quotes"
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        load "route"
        listlen
        gt
        jnz finish
        load "route"
        load "hop"
        push 1
        sub
        listget
        migrate
    finish:
        halt
    "#,
    )
    .unwrap();
    let mut state = DataState::new();
    state.set(
        "route",
        Value::List(vec![
            Value::Str("shop-1".into()),
            Value::Str("shop-2".into()),
            Value::Str("shop-3".into()),
        ]),
    );
    state.set("quotes", Value::List(vec![]));
    state.set("hop", Value::Int(0));
    AgentImage::new("tour", program, state)
}

fn tour_hosts(attacks: &[(&str, Attack)], seed: u64) -> Vec<Host> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DsaParams::test_group_256();
    ["home", "shop-1", "shop-2", "shop-3"]
        .into_iter()
        .enumerate()
        .map(|(i, id)| {
            let mut spec = HostSpec::new(id).with_input("quote", Value::Int(100 + i as i64 * 10));
            if id == "home" {
                spec = spec.trusted();
            }
            if let Some((_, attack)) = attacks.iter().find(|(h, _)| *h == id) {
                spec = spec.clone().malicious(attack.clone());
            }
            Host::new(spec, &params, &mut rng)
        })
        .collect()
}

#[test]
fn five_hop_honest_tour_under_protocol() {
    let mut hosts = tour_hosts(&[], 1);
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    assert!(outcome.clean());
    assert_eq!(outcome.path.len(), 4);
    let quotes = outcome
        .final_state
        .get("quotes")
        .unwrap()
        .as_list()
        .unwrap();
    assert_eq!(quotes.len(), 4);
    // Three untrusted shops each get their previous session checked; the
    // final shop session is checked by the owner.
    assert_eq!(outcome.stats.reexecutions, 3);
}

#[test]
fn protocol_catches_middle_shop_anywhere() {
    for culprit in ["shop-1", "shop-2", "shop-3"] {
        let attack = Attack::TamperVariable {
            name: "quotes".into(),
            value: Value::List(vec![Value::Int(1)]),
        };
        let mut hosts = tour_hosts(&[(culprit, attack)], 2);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hosts,
            "home",
            tour_agent(),
            &ProtocolConfig::default(),
            &log,
        )
        .unwrap();
        let fraud = outcome
            .fraud
            .unwrap_or_else(|| panic!("{culprit} not caught"));
        assert_eq!(fraud.culprit.as_str(), culprit);
    }
}

#[test]
fn protocol_fraud_evidence_is_third_party_verifiable() {
    let attack = Attack::ScaleIntVariable {
        name: "hop".into(),
        factor: 2,
    };
    let mut hosts = tour_hosts(&[("shop-2", attack)], 3);
    let mut dir = KeyDirectory::new();
    for h in &hosts {
        dir.register(h.id().as_str(), h.public_key().clone());
    }
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    let fraud = outcome.fraud.expect("scaling detected");
    // A judge who only has the directory can re-verify the culprit's
    // signature over its false claim.
    let claim = fraud.signed_claim.expect("claim attached");
    assert_eq!(claim.signer(), "shop-2");
    assert!(claim.verify(&dir).is_ok());
}

#[test]
fn framework_unordered_list_comparator_tolerates_permutations() {
    // An agent whose quote list order is scheduling-dependent (the paper's
    // two-thread example): the shop reorders the list — harmless, and the
    // UnorderedLists comparator accepts it, while exact comparison flags it.
    let attack = Attack::TamperVariable {
        name: "quotes".into(),
        // Same multiset the honest shop-1 session produces, different order:
        // home pushed 100, shop-1 pushed 110 -> honest is [100, 110].
        value: Value::List(vec![Value::Int(110), Value::Int(100)]),
    };
    // Exact comparison: detected.
    let mut hosts = tour_hosts(&[("shop-1", attack.clone())], 4);
    let log = EventLog::new();
    let config = ProtectionConfig::new(Arc::new(ReExecutionChecker::new()));
    let outcome = run_framework_journey(
        &mut hosts,
        "home",
        ProtectedAgent::new(tour_agent(), config),
        &log,
    )
    .unwrap();
    assert!(
        outcome.fraud.is_some(),
        "exact compare flags the permutation"
    );

    // Unordered comparison on "quotes": tolerated.
    let mut hosts = tour_hosts(&[("shop-1", attack)], 4);
    let log = EventLog::new();
    let comparator = Arc::new(UnorderedLists::new(["quotes"]));
    let config = ProtectionConfig::new(Arc::new(ReExecutionChecker::with_compare(comparator)));
    let outcome = run_framework_journey(
        &mut hosts,
        "home",
        ProtectedAgent::new(tour_agent(), config),
        &log,
    )
    .unwrap();
    assert!(
        outcome.fraud.is_none(),
        "programmer-specified comparison accepts order-only differences"
    );
}

#[test]
fn after_task_rules_are_cheap_but_late() {
    let attack = Attack::DeleteVariable {
        name: "quotes".into(),
    };
    let mut hosts = tour_hosts(&[("shop-1", attack)], 5);
    let log = EventLog::new();
    let rules = RuleSet::new().rule("quotes-exist", Pred::Defined("quotes".into()));
    let config =
        ProtectionConfig::new(Arc::new(RuleChecker::new(rules))).moment(CheckMoment::AfterTask);
    let err_or_outcome = run_framework_journey(
        &mut hosts,
        "home",
        ProtectedAgent::new(tour_agent(), config),
        &log,
    );
    // The deleted variable crashes the *next* session (load "quotes")
    // before the task-end check can even run: late checking lets a
    // compromised agent keep running — the §4.1 trade-off, surfacing here
    // as a VM error instead of a verdict.
    assert!(err_or_outcome.is_err());
}

#[test]
fn provenance_extension_exposes_forged_inputs() {
    // §4.3: inputs signed by their producer. The host forges the value but
    // cannot forge the producer's signature.
    let mut rng = StdRng::seed_from_u64(6);
    let params = DsaParams::test_group_256();
    let producer = refstate::crypto::DsaKeyPair::generate(&params, &mut rng);
    let mut dir = KeyDirectory::new();
    dir.register("quote-notary", producer.public().clone());

    let mut spec = HostSpec::new("shop");
    let genuine =
        refstate::crypto::Signed::seal(Value::Int(240), "quote-notary", &producer, &mut rng);
    spec.feed.push_signed("quote", genuine);
    let mut shop = Host::new(
        spec.malicious(Attack::ForgeInput {
            tag: "quote".into(),
            value: Value::Int(90),
        }),
        &params,
        &mut rng,
    );

    let program = assemble("input \"quote\"\nstore \"q\"\nhalt").unwrap();
    let agent = AgentImage::new("buyer", program, DataState::new());
    let log = EventLog::new();
    let record = shop
        .execute_session(&agent, &ExecConfig::default(), &log)
        .unwrap();

    // The re-execution check is blind: log and state agree.
    assert_eq!(record.outcome.state.get_int("q"), Some(90));
    // But the provenance channel is empty for the forged value — the
    // checking party rejects inputs lacking a verifiable producer
    // signature.
    let all_proven = record
        .provenance
        .iter()
        .all(|p| p.as_ref().is_some_and(|env| env.verify(&dir).is_ok()));
    assert!(!all_proven, "forged input carries no valid provenance");
}

#[test]
fn traces_and_protocol_agree_on_the_culprit() {
    let attack = Attack::TamperVariable {
        name: "quotes".into(),
        value: Value::List(vec![Value::Int(5)]),
    };

    // Protocol: detected en route by shop-3.
    let mut hosts = tour_hosts(&[("shop-2", attack.clone())], 7);
    let log = EventLog::new();
    let protocol_outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    let protocol_culprit = protocol_outcome.fraud.unwrap().culprit;

    // Traces: detected after the fact by the owner audit.
    let mut hosts = tour_hosts(&[("shop-2", attack)], 7);
    let mut dir = KeyDirectory::new();
    for h in &hosts {
        dir.register(h.id().as_str(), h.public_key().clone());
    }
    let log = EventLog::new();
    let agent = tour_agent();
    let program = agent.program.clone();
    let journey =
        run_traced_journey(&mut hosts, "home", agent, &ExecConfig::default(), &log, 10).unwrap();
    let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
    assert_eq!(report.culprit.as_ref(), Some(&protocol_culprit));
}

#[test]
fn event_log_tells_the_whole_story() {
    let attack = Attack::TamperVariable {
        name: "quotes".into(),
        value: Value::List(vec![Value::Int(5)]),
    };
    let mut hosts = tour_hosts(&[("shop-1", attack)], 8);
    let log = EventLog::new();
    let _ = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    assert!(log.count_matching(|e| matches!(e, Event::AgentCreated { .. })) == 1);
    assert!(log.count_matching(|e| matches!(e, Event::SessionStarted { .. })) >= 2);
    assert!(log.count_matching(|e| matches!(e, Event::AttackApplied { .. })) == 1);
    assert!(log.count_matching(|e| matches!(e, Event::FraudDetected { .. })) == 1);
    let rendered = log.render();
    assert!(rendered.contains("ATTACK"));
    assert!(rendered.contains("fraud by shop-1"));
}

#[test]
fn skip_trusted_false_checks_every_session() {
    let mut hosts = tour_hosts(&[], 9);
    let log = EventLog::new();
    let config = ProtocolConfig {
        skip_trusted: false,
        ..Default::default()
    };
    let outcome = run_protected_journey(&mut hosts, "home", tour_agent(), &config, &log).unwrap();
    assert!(outcome.clean());
    // All four sessions re-executed.
    assert_eq!(outcome.stats.reexecutions, 4);
}

#[test]
fn migration_message_carries_the_extra_state_and_input() {
    // §4.1: the protocol transports "one more agent state plus the input".
    let mut hosts = tour_hosts(&[], 10);
    let log = EventLog::new();
    let _ = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    let plain_sizes: Vec<usize> = {
        let mut hosts = tour_hosts(&[], 10);
        let log = EventLog::new();
        let _ = refstate::platform::run_plain_journey(
            &mut hosts,
            "home",
            tour_agent(),
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        log.snapshot()
            .iter()
            .filter_map(|e| match e {
                Event::Migrated { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect()
    };
    let protected_sizes: Vec<usize> = log
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            Event::Migrated { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .collect();
    assert_eq!(plain_sizes.len(), protected_sizes.len());
    for (plain, protected) in plain_sizes.iter().zip(&protected_sizes) {
        assert!(
            protected > plain,
            "protected migration ({protected} B) must exceed plain ({plain} B)"
        );
    }
}

#[test]
fn collusion_detected_only_when_checker_is_honest() {
    // shop-1 tampers with shop-2 as accomplice: undetected.
    let collude = Attack::CollaborateTamper {
        name: "quotes".into(),
        value: Value::List(vec![Value::Int(5)]),
        accomplice: HostId::new("shop-2"),
    };
    let mut hosts = tour_hosts(&[("shop-1", collude)], 11);
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    assert!(
        outcome.fraud.is_none(),
        "consecutive-host collusion wins (§5.1)"
    );

    // Same tampering, accomplice elsewhere: shop-2 checks honestly.
    let lone = Attack::CollaborateTamper {
        name: "quotes".into(),
        value: Value::List(vec![Value::Int(5)]),
        accomplice: HostId::new("nobody"),
    };
    let mut hosts = tour_hosts(&[("shop-1", lone)], 12);
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    assert!(outcome.fraud.is_some());
}

#[test]
fn replay_failure_reason_names_the_problem() {
    // A host that forges its input log inconsistently (drops the record but
    // keeps the state) produces a ReplayFailed, not a StateMismatch.
    let attack = Attack::SkipExecution;
    let mut hosts = tour_hosts(&[("shop-1", attack)], 13);
    let log = EventLog::new();
    let outcome = run_protected_journey(
        &mut hosts,
        "home",
        tour_agent(),
        &ProtocolConfig::default(),
        &log,
    )
    .unwrap();
    let fraud = outcome.fraud.expect("skip caught");
    match fraud.reason {
        FailureReason::ReplayFailed { .. }
        | FailureReason::StateMismatch { .. }
        | FailureReason::EndMismatch { .. } => {}
        other => panic!("unexpected failure reason {other:?}"),
    }
}
