//! Property-based tests over whole journeys: the detection guarantee holds
//! for arbitrary workload parameters and tamper values, honest journeys are
//! never flagged, and re-execution is deterministic end to end.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate::core::protocol::{run_protected_journey, ProtocolConfig};
use refstate::crypto::DsaParams;
use refstate::platform::{AgentImage, Attack, EventLog, Host, HostSpec};
use refstate::vm::{assemble, DataState, Value};

/// Builds the three-host summing agent with configurable per-host inputs.
fn sum_agent() -> AgentImage {
    let program = assemble(
        r#"
        input "n"
        load "total"
        add
        store "total"
        load "hop"
        push 1
        add
        store "hop"
        load "hop"
        push 1
        eq
        jnz to_b
        load "hop"
        push 2
        eq
        jnz to_c
        halt
    to_b:
        push "b"
        migrate
    to_c:
        push "c"
        migrate
    "#,
    )
    .unwrap();
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hop", Value::Int(0));
    AgentImage::new("prop", program, state)
}

fn hosts(inputs: [i64; 3], b_attack: Option<Attack>, seed: u64) -> Vec<Host> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DsaParams::test_group_256();
    let mut b = HostSpec::new("b").with_input("n", Value::Int(inputs[1]));
    if let Some(a) = b_attack {
        b = b.malicious(a);
    }
    vec![
        Host::new(
            HostSpec::new("a")
                .trusted()
                .with_input("n", Value::Int(inputs[0])),
            &params,
            &mut rng,
        ),
        Host::new(b, &params, &mut rng),
        Host::new(
            HostSpec::new("c")
                .trusted()
                .with_input("n", Value::Int(inputs[2])),
            &params,
            &mut rng,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest journeys are never flagged, for any inputs.
    #[test]
    fn honest_journeys_never_flagged(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in -1000i64..1000,
        seed in 0u64..1000,
    ) {
        let mut hs = hosts([a, b, c], None, seed);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hs, "a", sum_agent(), &ProtocolConfig::default(), &log,
        ).unwrap();
        prop_assert!(outcome.clean(), "false positive on honest journey");
        prop_assert_eq!(outcome.final_state.get_int("total"), Some(a + b + c));
    }

    /// Any tampering that actually changes the resulting state is caught,
    /// and the evidence names the right host and the right values.
    #[test]
    fn effective_tampering_always_caught(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in -1000i64..1000,
        forged in -10_000i64..10_000,
        seed in 0u64..1000,
    ) {
        // Skip the degenerate case where the forged value coincides with
        // the honest one (then there is no attack to see).
        prop_assume!(forged != a + b);
        let attack = Attack::TamperVariable { name: "total".into(), value: Value::Int(forged) };
        let mut hs = hosts([a, b, c], Some(attack), seed);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hs, "a", sum_agent(), &ProtocolConfig::default(), &log,
        ).unwrap();
        let fraud = outcome.fraud.expect("state-visible tampering must be detected");
        prop_assert_eq!(fraud.culprit.as_str(), "b");
        prop_assert_eq!(fraud.claimed_state.get_int("total"), Some(forged));
        prop_assert_eq!(
            fraud.reference_state.as_ref().and_then(|s| s.get_int("total")),
            Some(a + b)
        );
    }

    /// Tampering that reproduces the honest value exactly is, by the
    /// paper's definition, not an attack ("only those who indeed result in
    /// an incorrect state") — and indeed nothing fires.
    #[test]
    fn noop_tampering_is_not_an_attack(
        a in -100i64..100,
        b in -100i64..100,
        c in -100i64..100,
        seed in 0u64..100,
    ) {
        let attack = Attack::TamperVariable { name: "total".into(), value: Value::Int(a + b) };
        let mut hs = hosts([a, b, c], Some(attack), seed);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hs, "a", sum_agent(), &ProtocolConfig::default(), &log,
        ).unwrap();
        prop_assert!(outcome.clean());
    }

    /// Forged input is never detected (the §4.2 limit), for any forgery.
    #[test]
    fn input_forgery_never_caught(
        a in -100i64..100,
        b in -100i64..100,
        c in -100i64..100,
        forged in -100i64..100,
        seed in 0u64..100,
    ) {
        let attack = Attack::ForgeInput { tag: "n".into(), value: Value::Int(forged) };
        let mut hs = hosts([a, b, c], Some(attack), seed);
        let log = EventLog::new();
        let outcome = run_protected_journey(
            &mut hs, "a", sum_agent(), &ProtocolConfig::default(), &log,
        ).unwrap();
        prop_assert!(outcome.fraud.is_none());
        prop_assert_eq!(outcome.final_state.get_int("total"), Some(a + forged + c));
    }

    /// The journey result is a pure function of inputs — independent of
    /// the key-generation seed.
    #[test]
    fn result_independent_of_crypto_seed(
        a in -100i64..100,
        b in -100i64..100,
        c in -100i64..100,
        seed1 in 0u64..1000,
        seed2 in 0u64..1000,
    ) {
        let log = EventLog::new();
        let mut h1 = hosts([a, b, c], None, seed1);
        let o1 = run_protected_journey(&mut h1, "a", sum_agent(), &ProtocolConfig::default(), &log).unwrap();
        let mut h2 = hosts([a, b, c], None, seed2);
        let o2 = run_protected_journey(&mut h2, "a", sum_agent(), &ProtocolConfig::default(), &log).unwrap();
        prop_assert_eq!(o1.final_state, o2.final_state);
    }
}
